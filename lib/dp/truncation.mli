(** The TSens truncation operator (paper Definition 6.4).

    T_TSens(Q, D, i) keeps a primary-private tuple only if its tuple
    sensitivity is at most i; the resulting query has global sensitivity
    i. Because the query has no self-joins, every output tuple uses
    exactly one private tuple, so the truncated answer is the sum of
    cnt(t)·δ(t) over the kept tuples — a prefix sum over the sensitivity
    profile, evaluated in O(log n) per threshold. *)

open Tsens_relational
open Tsens_sensitivity

type profile
(** Per-tuple sensitivities of one private relation, preprocessed for
    fast thresholding. *)

val profile : Tsens.analysis -> string -> profile
(** Raises {!Errors.Schema_error} if the relation is not in the query.
    Memoized by (analysis identity, relation) when the cache layer is
    on: the analysis's {!Tsens.analysis_id} keys the store, so repeated
    mechanism runs over one analysis sort the profile once. *)

val last_kept : profile -> int -> int
(** Index of the last profiled entry whose tuple sensitivity is at most
    the threshold, or [-1] when every entry exceeds it (and on the empty
    profile). Entries are sorted ascending with duplicate-sensitivity
    runs; the returned index is always the {e last} entry of its run, so
    [cumulative.(last_kept p i)] is a complete prefix sum. *)

val truncated_answer : profile -> int -> Count.t
(** [truncated_answer p i] = |Q(T_TSens(Q, D, i))|. Monotone in [i];
    at [i >= max_tuple_sensitivity p] it equals |Q(D)|. *)

val max_tuple_sensitivity : profile -> Count.t
(** The largest δ(t) over tuples present in the relation (not over the
    whole domain — insertions do not matter for truncation). *)

val tuples_dropped : profile -> int -> Count.t
(** Bag count of private tuples removed at threshold [i]. *)

val truncate_database :
  Tsens.analysis -> string -> int -> Database.t -> Database.t
(** Materializes T_TSens(Q, D, i): the same database with the private
    relation filtered. The filtered relation keeps the stored column
    order of the input database (sensitivities are probed in atom order
    internally). For tests and inspection — the mechanisms use
    {!truncated_answer} instead. *)
