(** Outcome of one differentially private query release.

    Carries the released value together with evaluation-only ground truth
    (the paper's Table 2 columns: relative error, relative bias, global
    sensitivity, time). The ground-truth fields obviously must not be
    published in a real deployment. *)

type t = {
  noisy_answer : float;  (** the ε-DP release, before clipping *)
  truncated_answer : float;
      (** exact answer on the truncated database (bias source) *)
  true_answer : float;  (** exact |Q(D)| — evaluation only *)
  global_sensitivity : float;
      (** sensitivity used for the final Laplace release *)
  threshold : int;  (** the learned truncation threshold τ *)
  epsilon : float;  (** total privacy budget consumed *)
  epsilon_threshold : float;  (** share spent learning the threshold *)
  saturated : bool;
      (** some ground-truth or sensitivity quantity behind this report
          saturated ({!Tsens_relational.Count.max_count}): the affected
          fields are upper bounds, not exact values. Rendering must not
          print them as plain numbers — see {!pp_value}. *)
}

val released : t -> float
(** The published value: the noisy answer clipped below at 0 (counting
    queries are non-negative; the paper does the same). *)

val relative_error : t -> float
(** |released − true| / true; falls back to the absolute error when the
    true answer is 0. *)

val relative_bias : t -> float
(** |truncated − true| / true — the deterministic part of the error. *)

val value_to_string : float -> string
(** Render an answer/sensitivity value, as ["overflow"] when it reaches
    the {!Tsens_relational.Count.max_count} saturation point — the
    float-side counterpart of {!Tsens_relational.Count.to_string}, for
    JSON and table emission paths that would otherwise leak the raw
    saturated integer. *)

val pp_value : Format.formatter -> float -> unit
(** [pp_value] prints {!value_to_string}. *)

val pp : Format.formatter -> t -> unit
(** Renders saturated values as ["overflow"] and appends a [[saturated]]
    marker when {!type-t.saturated} is set. *)
