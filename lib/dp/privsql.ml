open Tsens_relational
open Tsens_query
open Tsens_sensitivity

type config = {
  epsilon : float;
  threshold_fraction : float;
  ell : int;
  private_relation : string;
  cascade : (string * Attr.t) list;
}

let default_config ~ell ~private_relation ~cascade =
  { epsilon = 1.0; threshold_fraction = 0.5; ell; private_relation; cascade }

(* Same pre-flight as {!Mechanism.validate}, with the Privsql prefix.
   Private-relation membership stays a Schema_error (checked in [run]). *)
let validate config =
  let dp =
    {
      Tsens_analysis.Analyzer.epsilon = config.epsilon;
      threshold_fraction = config.threshold_fraction;
      ell = config.ell;
      private_relation = None;
    }
  in
  match Tsens_analysis.Analyzer.check_dp_config dp with
  | [] -> ()
  | d :: _ -> invalid_arg ("Privsql: " ^ d.Tsens_analysis.Diagnostic.message)

(* Privately learn a cap on the key-group frequency of one relation: the
   smallest i such that (noisily) no key has frequency above i. The count
   of over-full keys changes by at most 1 when one tuple changes. *)
let learn_frequency_cap rng ~epsilon ~ell rel key =
  let groups =
    Relation.project (Schema.of_list [ key ]) rel |> Relation.rows
  in
  let frequencies =
    Array.map snd groups |> Array.to_list |> List.sort Count.compare
    |> Array.of_list
  in
  let keys_above i =
    (* frequencies is ascending: count the suffix > i. *)
    let n = Array.length frequencies in
    let lo = ref 0 and hi = ref (n - 1) and first = ref n in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if frequencies.(mid) > i then begin
        first := mid;
        hi := mid - 1
      end
      else lo := mid + 1
    done;
    n - !first
  in
  match
    Svt.above_threshold rng ~epsilon ~sensitivity:1.0 ~threshold:(-0.5)
      ~queries:(fun j -> -.float_of_int (keys_above (j + 1)))
      ~count:ell
  with
  | Some j -> j + 1
  | None -> ell

let truncate_by_frequency rel key cap =
  let key_schema = Schema.of_list [ key ] in
  (* Version-keyed: repeated runs over an unchanged relation (bench
     sweeps re-learn caps per trial) reuse the frequency index. *)
  let groups = Cache.index ~key:key_schema rel in
  let positions = Schema.positions ~sub:key_schema (Relation.schema rel) in
  Relation.filter
    (fun _schema tuple ->
      Index.group_count groups (Tuple.project positions tuple) <= cap)
    rel

let run rng config ?plans cq db =
  validate config;
  if not (Cq.mem_relation cq config.private_relation) then
    Errors.schema_errorf "Privsql: %s is not in query %s"
      config.private_relation (Cq.name cq);
  let db = Database.of_list (Cq.instance cq db) in
  let true_answer = Yannakakis.count ?plans cq db in
  let epsilon_threshold = config.epsilon *. config.threshold_fraction in
  let epsilon_answer = config.epsilon -. epsilon_threshold in
  (* Learn one frequency cap per cascaded relation and truncate. *)
  let caps, truncated_db =
    match config.cascade with
    | [] -> ([], db)
    | cascade ->
        let per_relation_budget =
          epsilon_threshold /. float_of_int (List.length cascade)
        in
        List.fold_left
          (fun (caps, db) (relation, key) ->
            if not (Schema.mem key (Cq.schema_of cq relation)) then
              Errors.schema_errorf "Privsql: %s has no attribute %a" relation
                Attr.pp key;
            let rel = Database.find relation db in
            let cap =
              learn_frequency_cap rng ~epsilon:per_relation_budget
                ~ell:config.ell rel key
            in
            let db =
              Database.add ~name:relation (truncate_by_frequency rel key cap)
                db
            in
            (cap :: caps, db))
          ([], db) cascade
  in
  (* Global sensitivity from frequency bounds: the elastic recurrence on
     the truncated instance, with the private relation sensitive. *)
  let plan = Elastic.plan_of_cq ?plans cq in
  let global_sensitivity =
    Elastic.relation_sensitivity cq truncated_db plan config.private_relation
  in
  let truncated_count = Yannakakis.count ?plans cq truncated_db in
  let truncated_answer = float_of_int truncated_count in
  let noisy_answer =
    Laplace.mechanism rng ~epsilon:epsilon_answer
      ~sensitivity:(float_of_int global_sensitivity) truncated_answer
  in
  {
    Report.noisy_answer;
    truncated_answer;
    true_answer = float_of_int true_answer;
    global_sensitivity = float_of_int global_sensitivity;
    threshold = List.fold_left max 0 caps;
    epsilon = config.epsilon;
    epsilon_threshold;
    (* The elastic bound saturates routinely on large instances; without
       the flag the report would print the raw max_int as its GS. *)
    saturated =
      Count.is_saturated global_sensitivity
      || Count.is_saturated true_answer
      || Count.is_saturated truncated_count;
  }
