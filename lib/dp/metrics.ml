type trial = { report : Report.t; seconds : float }

type summary = {
  runs : int;
  median_error : float;
  median_bias : float;
  median_global_sensitivity : float;
  median_threshold : float;
  mean_seconds : float;
  saturated_runs : int;
}

let median = function
  | [] -> invalid_arg "Metrics.median: empty list"
  | xs ->
      let sorted = List.sort Float.compare xs in
      List.nth sorted ((List.length sorted - 1) / 2)

let mean = function
  | [] -> invalid_arg "Metrics.mean: empty list"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let summarize = function
  | [] -> invalid_arg "Metrics.summarize: no trials"
  | trials ->
      let map f = List.map f trials in
      {
        runs = List.length trials;
        median_error = median (map (fun t -> Report.relative_error t.report));
        median_bias = median (map (fun t -> Report.relative_bias t.report));
        median_global_sensitivity =
          median (map (fun t -> t.report.Report.global_sensitivity));
        median_threshold =
          median (map (fun t -> float_of_int t.report.Report.threshold));
        mean_seconds = mean (map (fun t -> t.seconds));
        saturated_runs =
          List.length
            (List.filter (fun t -> t.report.Report.saturated) trials);
      }

let pp_summary ppf s =
  Format.fprintf ppf
    "error %.2f%%  bias %.2f%%  GS %a  tau %.0f  time %.3fs (%d runs)%s"
    (100.0 *. s.median_error) (100.0 *. s.median_bias)
    Report.pp_value s.median_global_sensitivity s.median_threshold
    s.mean_seconds s.runs
    (if s.saturated_runs > 0 then
       Printf.sprintf "  [%d saturated]" s.saturated_runs
     else "")
