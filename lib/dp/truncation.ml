open Tsens_relational
open Tsens_sensitivity

type profile = {
  deltas : Count.t array; (* ascending tuple sensitivities, one per distinct tuple *)
  cumulative : Count.t array; (* cumulative Σ cnt·δ aligned with deltas *)
  dropped_mass : Count.t array; (* suffix Σ cnt: tuples dropped above each delta *)
}

let c_entries = Obs.counter "truncation.entries_profiled"

(* Profiles are pure functions of (analysis, relation): keyed by the
   analysis id, so a cached Tsens.analyze hit (same id) also reuses the
   profile, while a re-run DP (fresh id) rebuilds it. The mechanism's
   SVT probes one profile up to ell times, and bench sweeps re-run the
   mechanism per trial — this store turns those into one sort. *)
let profile_store : profile Cache.Store.t =
  Cache.Store.create ~name:"truncation.profile" ~capacity:64
    ~weight:(fun p -> 3 * Array.length p.deltas * 8)
    ()

let profile analysis relation =
  Cache.Store.find_or_add profile_store
    (Cache.Key.of_parts
       [ string_of_int (Tsens.analysis_id analysis); relation ])
  @@ fun () ->
  Obs.span "truncation.profile" @@ fun () ->
  let rel = Tsens.instance_relation analysis relation in
  let entries =
    Relation.fold
      (fun tuple cnt acc ->
        let delta = Tsens.tuple_sensitivity analysis relation tuple in
        (delta, cnt) :: acc)
      rel []
  in
  let entries = Array.of_list entries in
  Obs.add c_entries (Array.length entries);
  Array.sort (fun (d1, _) (d2, _) -> Count.compare d1 d2) entries;
  let n = Array.length entries in
  let deltas = Array.map fst entries in
  let cumulative = Array.make n Count.zero in
  let running = ref Count.zero in
  Array.iteri
    (fun i (d, cnt) ->
      running := Count.add !running (Count.mul cnt d);
      cumulative.(i) <- !running)
    entries;
  let dropped_mass = Array.make n Count.zero in
  let mass = ref Count.zero in
  for i = n - 1 downto 0 do
    mass := Count.add !mass (snd entries.(i));
    dropped_mass.(i) <- !mass
  done;
  { deltas; cumulative; dropped_mass }

(* Index of the last entry with delta <= threshold, or -1. The deltas
   array is ascending but full of duplicate runs (many tuples share a
   sensitivity); the search must land on the *last* entry of the run at
   the boundary, because [cumulative] is only a complete prefix sum at
   run ends. Pinned against a linear-scan oracle in test_dp. *)
let last_kept p threshold =
  let lo = ref 0 and hi = ref (Array.length p.deltas - 1) and res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if p.deltas.(mid) <= threshold then begin
      res := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !res

let truncated_answer p threshold =
  match last_kept p threshold with -1 -> Count.zero | i -> p.cumulative.(i)

let max_tuple_sensitivity p =
  let n = Array.length p.deltas in
  if n = 0 then Count.zero else p.deltas.(n - 1)

let tuples_dropped p threshold =
  let i = last_kept p threshold + 1 in
  if i >= Array.length p.dropped_mass then Count.zero else p.dropped_mass.(i)

let truncate_database analysis relation threshold db =
  Obs.span "truncation.truncate" @@ fun () ->
  let atom_order = Relation.schema (Tsens.instance_relation analysis relation) in
  Database.update ~name:relation
    (fun rel ->
      (* Probe sensitivities in atom-column order, but hand the result
         back in the caller's stored column order: replacing the
         relation with atom-ordered columns would silently change the
         database's schema (and break joins outside this query). *)
      let original = Relation.schema rel in
      Relation.reorder original
        (Relation.filter
           (fun _schema tuple ->
             Tsens.tuple_sensitivity analysis relation tuple <= threshold)
           (Relation.reorder atom_order rel)))
    db
