open Tsens_sensitivity

type config = {
  epsilon : float;
  threshold_fraction : float;
  ell : int;
  private_relation : string;
}

let default_config ~ell ~private_relation =
  { epsilon = 1.0; threshold_fraction = 0.5; ell; private_relation }

(* Pre-flight: run the static analyzer's DP checks (TS012–TS015) before
   spending any privacy budget. The analyzer reports every problem; we
   fail on the first, keeping the historical error strings. *)
let validate ?query config =
  let dp =
    {
      Tsens_analysis.Analyzer.epsilon = config.epsilon;
      threshold_fraction = config.threshold_fraction;
      ell = config.ell;
      private_relation = Some config.private_relation;
    }
  in
  match Tsens_analysis.Analyzer.check_dp_config ?query dp with
  | [] -> ()
  | d :: _ -> invalid_arg ("TsensDp: " ^ d.Tsens_analysis.Diagnostic.message)

let run_with_analysis rng config analysis =
  validate config;
  Obs.span "dp.mechanism" @@ fun () ->
  let profile = Truncation.profile analysis config.private_relation in
  let epsilon_threshold = config.epsilon *. config.threshold_fraction in
  let epsilon_answer = config.epsilon -. epsilon_threshold in
  (* Half the threshold budget releases Q̂, half drives the SVT. *)
  let epsilon_qhat = epsilon_threshold /. 2.0 in
  let epsilon_svt = epsilon_threshold /. 2.0 in
  let answer_at i = float_of_int (Truncation.truncated_answer profile i) in
  let qhat =
    Laplace.mechanism rng ~epsilon:epsilon_qhat
      ~sensitivity:(float_of_int config.ell)
      (answer_at config.ell)
  in
  (* q_i = (Q(T(D,i)) − Q̂)/i has global sensitivity 1: stop as soon as the
     truncated answer noisily reaches Q̂. *)
  let threshold =
    match
      Svt.above_threshold rng ~epsilon:epsilon_svt ~sensitivity:1.0
        ~threshold:0.0
        ~queries:(fun j ->
          let i = j + 1 in
          (answer_at i -. qhat) /. float_of_int i)
        ~count:(config.ell - 1)
    with
    | Some j -> j + 1
    | None -> config.ell
  in
  let truncated_count = Truncation.truncated_answer profile threshold in
  let truncated_answer = float_of_int truncated_count in
  let noisy_answer =
    Laplace.mechanism rng ~epsilon:epsilon_answer
      ~sensitivity:(float_of_int threshold) truncated_answer
  in
  let out_size = Tsens.output_size analysis in
  {
    Report.noisy_answer;
    truncated_answer;
    true_answer = float_of_int out_size;
    global_sensitivity = float_of_int threshold;
    threshold;
    epsilon = config.epsilon;
    epsilon_threshold;
    (* A saturated |Q(D)| or truncated answer would otherwise leak here
       as a raw max_int float; flag it so renderers print "overflow". *)
    saturated =
      Tsens_relational.Count.is_saturated out_size
      || Tsens_relational.Count.is_saturated truncated_count;
  }

let run rng config ?plans cq db =
  validate ~query:cq config;
  let analysis = Tsens.analyze ?plans cq db in
  run_with_analysis rng config analysis
