open Tsens_relational

type t = {
  noisy_answer : float;
  truncated_answer : float;
  true_answer : float;
  global_sensitivity : float;
  threshold : int;
  epsilon : float;
  epsilon_threshold : float;
  saturated : bool;
}

let released r = Float.max 0.0 r.noisy_answer

let relative_to truth x =
  if truth = 0.0 then Float.abs x else Float.abs (x -. truth) /. truth

let relative_error r = relative_to r.true_answer (released r)
let relative_bias r = relative_to r.true_answer r.truncated_answer

(* Count.max_count rounds up when converted to float, so >= catches the
   exact saturated value and anything derived from it by float ops. *)
let saturation_point = float_of_int Count.max_count

let value_to_string x =
  if x >= saturation_point then "overflow" else Printf.sprintf "%.1f" x

let pp_value ppf x = Format.pp_print_string ppf (value_to_string x)

let pp ppf r =
  Format.fprintf ppf
    "@[<v>released: %a (true %a, truncated %a)@,\
     error: %.2f%%  bias: %.2f%%@,\
     GS: %a  tau: %d  epsilon: %.3f (%.3f on threshold)%s@]"
    pp_value (released r) pp_value r.true_answer pp_value r.truncated_answer
    (100.0 *. relative_error r)
    (100.0 *. relative_bias r)
    pp_value r.global_sensitivity r.threshold r.epsilon r.epsilon_threshold
    (if r.saturated then "  [saturated]" else "")
