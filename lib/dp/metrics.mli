(** Aggregation of repeated DP trials into the paper's Table 2 rows
    (medians of relative error / bias / global sensitivity over 20 runs,
    mean wall-clock time). *)

type trial = { report : Report.t; seconds : float }

type summary = {
  runs : int;
  median_error : float;
  median_bias : float;
  median_global_sensitivity : float;
  median_threshold : float;
  mean_seconds : float;
  saturated_runs : int;
      (** trials whose report carried the {!Report.type-t.saturated} flag;
          when positive the medians involving saturated quantities are
          upper bounds, and {!pp_summary} flags them *)
}

val median : float list -> float
(** Lower median of a non-empty list. Raises [Invalid_argument] on []. *)

val mean : float list -> float
(** Raises [Invalid_argument] on []. *)

val time : (unit -> 'a) -> 'a * float
(** Wall-clock seconds of a thunk. *)

val summarize : trial list -> summary
(** Raises [Invalid_argument] on []. *)

val pp_summary : Format.formatter -> summary -> unit
