(** TSensDP — the truncation-based DP mechanism of Section 6.2.

    Given a public upper bound ℓ on tuple sensitivity and a primary
    private relation PR, the mechanism (i) releases a Laplace-noised
    answer Q̂ of the ℓ-truncated query, (ii) runs the sparse vector
    technique over the queries q_i = (Q(T_TSens(D,i)) − Q̂)/i, each of
    global sensitivity 1, to learn a truncation threshold τ close to the
    local sensitivity, and (iii) releases Q(T_TSens(D,τ)) + Lap(τ/ε₂)
    with the remaining budget. The whole mechanism is ε-DP
    (Theorem 6.1). *)

open Tsens_relational
open Tsens_query
open Tsens_sensitivity

type config = {
  epsilon : float;  (** total privacy budget, > 0 *)
  threshold_fraction : float;
      (** share of ε spent on Q̂ + SVT (the paper's ε_tsens); the paper's
          experiments use 0.5. Must be in (0, 1). *)
  ell : int;  (** public upper bound ℓ on tuple sensitivity, ≥ 1 *)
  private_relation : string;
}

val default_config : ell:int -> private_relation:string -> config
(** ε = 1.0, threshold_fraction = 0.5 — the paper's setup. *)

val run :
  Prng.t -> config -> ?plans:Ghd.t list -> Cq.t -> Database.t -> Report.t
(** Raises [Invalid_argument] on out-of-range configuration or when the
    private relation is not an atom of the query — both detected by the
    static analyzer ({!Tsens_analysis.Analyzer.check_dp_config}) before
    any privacy budget is spent. *)

val run_with_analysis : Prng.t -> config -> Tsens.analysis -> Report.t
(** Like {!run} on a precomputed analysis — lets repeated trials (the
    paper reports medians over 20 runs) share the sensitivity DP. *)
