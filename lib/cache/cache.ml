open Tsens_relational

(* Toggle. Reading TSENS_CACHE once at load mirrors how lib/exec reads
   TSENS_JOBS; the CLI flips the ref afterwards for --cache/--no-cache. *)

let env_default =
  match Sys.getenv_opt "TSENS_CACHE" with
  | None -> false
  | Some v -> (
      match String.lowercase_ascii (String.trim v) with
      | "" | "0" | "false" | "off" -> false
      | _ -> true)

let toggle = ref env_default
let enabled () = !toggle
let set_enabled b = toggle := b

module Key = struct
  (* \x1f (unit separator) never appears in relation names, printed
     queries, plans or decimal stamps, so joined parts cannot collide
     across component boundaries. *)
  let sep = "\x1f"
  let of_parts parts = String.concat sep parts

  let versions vs =
    String.concat ";"
      (List.map (fun (name, v) -> Printf.sprintf "%s=%d" name v) vs)

  let db d = versions (Database.versions d)
end

type stats = {
  store : string;
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  approx_bytes : int;
}

(* Registry of every store ever created, so `Cache.stats ()` and
   `Cache.reset ()` see stores they were not told about. Stores are
   created at module initialisation time, but a mutex keeps the list
   coherent if a test creates one mid-run. *)
let registry : (string * (unit -> stats) * (unit -> unit)) list ref = ref []
let registry_lock = Mutex.create ()

let register name stats_fn reset_fn =
  Mutex.lock registry_lock;
  registry := (name, stats_fn, reset_fn) :: !registry;
  Mutex.unlock registry_lock

module Store = struct
  type 'a t = {
    name : string;
    lru : 'a Lru.t;
    c_hits : Obs.counter;
    c_misses : Obs.counter;
    c_evictions : Obs.counter;
    g_bytes : Obs.gauge;
  }

  let stats t =
    let s = Lru.stats t.lru in
    {
      store = t.name;
      hits = s.Lru.hits;
      misses = s.Lru.misses;
      evictions = s.Lru.evictions;
      entries = s.Lru.entries;
      approx_bytes = s.Lru.approx_bytes;
    }

  let create ~name ~capacity ?weight () =
    let t =
      {
        name;
        lru = Lru.create ?weight ~capacity ();
        c_hits = Obs.counter (Printf.sprintf "cache.%s.hits" name);
        c_misses = Obs.counter (Printf.sprintf "cache.%s.misses" name);
        c_evictions = Obs.counter (Printf.sprintf "cache.%s.evictions" name);
        g_bytes = Obs.gauge (Printf.sprintf "cache.%s.bytes" name);
      }
    in
    register name
      (fun () -> stats t)
      (fun () ->
        Lru.clear t.lru;
        Lru.reset_stats t.lru);
    t

  let record_add t evicted =
    if evicted > 0 then Obs.add t.c_evictions evicted;
    Obs.observe t.g_bytes (Lru.stats t.lru).Lru.approx_bytes

  let find t key =
    if not (enabled ()) then None
    else
      match Lru.find t.lru key with
      | Some _ as hit ->
          Obs.tick t.c_hits;
          hit
      | None ->
          Obs.tick t.c_misses;
          None

  let add t key value =
    if enabled () then record_add t (Lru.add t.lru key value)

  let find_or_add t key compute =
    if not (enabled ()) then compute ()
    else
      match find t key with
      | Some v -> v
      | None ->
          let v = compute () in
          record_add t (Lru.add t.lru key v);
          v

  let remove t key = Lru.remove t.lru key
  let clear t = Lru.clear t.lru
end

let stats () =
  Mutex.lock registry_lock;
  let entries = !registry in
  Mutex.unlock registry_lock;
  List.map (fun (_, stats_fn, _) -> stats_fn ()) entries
  |> List.sort (fun a b -> String.compare a.store b.store)

let reset () =
  Mutex.lock registry_lock;
  let entries = !registry in
  Mutex.unlock registry_lock;
  List.iter (fun (_, _, reset_fn) -> reset_fn ()) entries

let pp_stats ppf stats_list =
  Format.fprintf ppf "@[<v>%-24s %8s %8s %9s %8s %12s@,"
    "store" "hits" "misses" "evictions" "entries" "approx_bytes";
  List.iter
    (fun s ->
      Format.fprintf ppf "%-24s %8d %8d %9d %8d %12d@," s.store s.hits
        s.misses s.evictions s.entries s.approx_bytes)
    stats_list;
  Format.fprintf ppf "@]"

(* Cached index construction. The weight is ~3 words per (tuple, count)
   row plus per-group overhead, in bytes — rough, but enough for
   eviction pressure to track reality. [Index.approx_words] computes it
   without decoding a columnar index. *)

let index_weight idx = Index.approx_words idx * 8

let index_store : Index.t Store.t =
  Store.create ~name:"relational.index" ~capacity:128 ~weight:index_weight ()

(* The key carries the storage mode (a row-built and a columnar-built
   index answer identically, but tests and benchmarks that flip the mode
   mid-process must not observe the other mode's artifact) and the
   dictionary generation (a columnar index decodes through the
   dictionary; a [Dict.reset] makes it undecodable, so its entries must
   miss from then on). *)
let index ~key rel =
  let k =
    Key.of_parts
      [
        string_of_int (Relation.version rel);
        Schema.to_string key;
        Storage.to_string (Storage.mode ());
        string_of_int (Dict.generation ());
      ]
  in
  Store.find_or_add index_store k (fun () -> Index.build ~key rel)
