(* Hash table + doubly-linked recency list; the list's front is the
   most-recently-used entry, its back the eviction candidate. All
   operations hold [lock], so the structure is safe to share across the
   exec pool's worker domains. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable weight : int;
  mutable prev : 'a node option; (* towards the front (MRU) *)
  mutable next : 'a node option; (* towards the back (LRU) *)
}

type 'a t = {
  capacity : int;
  weigh : 'a -> int;
  table : (string, 'a node) Hashtbl.t;
  lock : Mutex.t;
  mutable front : 'a node option;
  mutable back : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable bytes : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  approx_bytes : int;
}

let create ?(weight = fun _ -> 0) ~capacity () =
  if capacity < 1 then invalid_arg "Lru.create: capacity < 1";
  {
    capacity;
    weigh = weight;
    table = Hashtbl.create (min capacity 64);
    lock = Mutex.create ();
    front = None;
    back = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    bytes = 0;
  }

let capacity t = t.capacity

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let unlink t node =
  (match node.prev with None -> t.front <- node.next | Some p -> p.next <- node.next);
  (match node.next with None -> t.back <- node.prev | Some n -> n.prev <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.front;
  node.prev <- None;
  (match t.front with None -> t.back <- Some node | Some f -> f.prev <- Some node);
  t.front <- Some node

let find t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some node ->
      t.hits <- t.hits + 1;
      unlink t node;
      push_front t node;
      Some node.value

let mem t key = locked t @@ fun () -> Hashtbl.mem t.table key

let evict_back t =
  match t.back with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      t.bytes <- t.bytes - node.weight;
      t.evictions <- t.evictions + 1

let add t key value =
  locked t @@ fun () ->
  let weight = t.weigh value in
  (match Hashtbl.find_opt t.table key with
  | Some node ->
      t.bytes <- t.bytes - node.weight + weight;
      node.value <- value;
      node.weight <- weight;
      unlink t node;
      push_front t node
  | None ->
      let node = { key; value; weight; prev = None; next = None } in
      Hashtbl.replace t.table key node;
      t.bytes <- t.bytes + weight;
      push_front t node);
  let before = t.evictions in
  while Hashtbl.length t.table > t.capacity do
    evict_back t
  done;
  t.evictions - before

let remove t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table key;
      t.bytes <- t.bytes - node.weight

let clear t =
  locked t @@ fun () ->
  Hashtbl.reset t.table;
  t.front <- None;
  t.back <- None;
  t.bytes <- 0

let stats t =
  locked t @@ fun () ->
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    entries = Hashtbl.length t.table;
    approx_bytes = t.bytes;
  }

let reset_stats t =
  locked t @@ fun () ->
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0
