(** Versioned memoization of sensitivity work.

    The TSens dynamic program, built indexes, elastic [mf] statistics
    and truncation profiles are all pure functions of (query, database).
    Relations carry unique version stamps ({!Tsens_relational.Relation.version}),
    so "the database this was computed from" compresses to a short key:
    a query fingerprint plus the per-relation stamps. This module keeps
    one bounded {!Lru} store per artifact kind behind a process-global
    toggle, with per-store Obs counters
    ([cache.<store>.hits/misses/evictions] and a [cache.<store>.bytes]
    gauge) so cache behavior shows up in [--stats] reports.

    Correctness does not depend on invalidation: stamps are unique per
    constructed relation, so a mutated database can never collide with a
    cached key — stale entries are unreachable, not wrong, and age out
    of the LRU. Explicit invalidation ({!Store.clear}, {!reset}) exists
    to bound memory and to make tests deterministic.

    Cached values are the exact values the uncached computation would
    produce (the stores memoize whole results, not approximations), and
    every cacheable computation is deterministic across [--jobs] levels
    (PR 3's contract), so cached results are bit-identical to uncached
    ones at any job count — the test suite enforces this.

    The toggle defaults to the [TSENS_CACHE] environment variable:
    unset, empty, ["0"], ["false"] or ["off"] leave caching off, any
    other value turns it on. [tsens_cli]'s [--cache]/[--no-cache]
    override it per invocation. While the toggle is off every
    {!Store.find_or_add} just runs its compute function — no lookups, no
    stats. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** Cache-key construction. Keys are flat strings: cheap to hash, easy
    to log, and they keep the LRU monomorphic. *)
module Key : sig
  val of_parts : string list -> string
  (** Join components with a separator that cannot collide with the
      output of {!versions} or with printed query/plan fingerprints. *)

  val versions : (string * int) list -> string
  (** Render [Database.versions] output (name, stamp) pairs. *)

  val db : Tsens_relational.Database.t -> string
  (** [versions (Database.versions db)]. *)
end

type stats = {
  store : string;
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  approx_bytes : int;
}

module Store : sig
  type 'a t
  (** A named, bounded, registered LRU of ['a] values. Create stores
      once at module initialisation; each creation interns Obs handles
      and registers the store with {!stats}/{!reset}. *)

  val create : name:string -> capacity:int -> ?weight:('a -> int) -> unit -> 'a t

  val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
  (** [find_or_add store key compute] returns the cached value for
      [key], or runs [compute ()] and caches the result. When the global
      toggle is off this is exactly [compute ()]. The compute function
      runs outside the store's lock: concurrent misses on one key may
      compute the value more than once, which is harmless because every
      cached computation is deterministic. *)

  val find : 'a t -> string -> 'a option
  (** [None] when disabled or absent. *)

  val add : 'a t -> string -> 'a -> unit
  (** No-op when disabled. *)

  val remove : 'a t -> string -> unit
  val clear : 'a t -> unit
  val stats : 'a t -> stats
end

val stats : unit -> stats list
(** Every registered store's stats, sorted by store name. *)

val reset : unit -> unit
(** Clear every registered store and zero its hit/miss/eviction totals. *)

val pp_stats : Format.formatter -> stats list -> unit
(** Aligned table, one row per store. *)

val index :
  key:Tsens_relational.Schema.t ->
  Tsens_relational.Relation.t ->
  Tsens_relational.Index.t
(** Version-keyed {!Tsens_relational.Index.build}: hits reuse the frozen
    index built for the same (relation version, key schema); any update
    to the relation yields a new stamp and therefore a rebuilt index —
    a cached index can never serve stale groups. The returned index's
    lookup arrays are shared across all callers of the same key, so the
    no-mutation contract of [Index.lookup] is load-bearing here. *)
