(** Bounded least-recently-used map with string keys.

    The building block of the cache layer: a hash table paired with a
    recency list, capped at a fixed number of entries. [find] promotes
    its entry to most-recently-used; [add] evicts from the cold end once
    the capacity is exceeded. Every operation takes an internal mutex,
    so one store may be probed from several pool domains (lib/exec) at
    once; values are computed {e outside} the lock by callers, so a
    race's worst case is computing the same deterministic value twice.

    Byte accounting is approximate and caller-defined: the optional
    [weight] function is sampled once per inserted value and summed into
    {!stats}' [approx_bytes]. With no [weight] the field stays 0. *)

type 'a t

type stats = {
  hits : int;  (** [find] calls that returned a value *)
  misses : int;  (** [find] calls that returned [None] *)
  evictions : int;  (** entries dropped by capacity pressure *)
  entries : int;  (** current live entries *)
  approx_bytes : int;  (** sum of [weight] over live entries *)
}

val create : ?weight:('a -> int) -> capacity:int -> unit -> 'a t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val capacity : _ t -> int

val find : 'a t -> string -> 'a option
(** Probe, recording a hit or a miss and promoting on hit. *)

val mem : _ t -> string -> bool
(** Pure peek: no stats, no promotion. *)

val add : 'a t -> string -> 'a -> int
(** Insert or replace, promoting to most-recently-used, then evict
    least-recently-used entries until the capacity holds. Returns how
    many entries were evicted by this call. *)

val remove : _ t -> string -> unit
(** Explicit invalidation of one key; absent keys are ignored. *)

val clear : _ t -> unit
(** Drop every entry. Hit/miss/eviction totals are preserved (cleared
    entries do not count as evictions); use {!reset_stats} to zero
    them. *)

val stats : _ t -> stats
val reset_stats : _ t -> unit
