open Tsens_relational
open Tsens_query

type plan = Leaf of string | Join of plan * plan

let rec plan_atoms = function
  | Leaf r -> [ r ]
  | Join (l, r) -> plan_atoms l @ plan_atoms r

(* Structural fingerprint: unlike the flat atom list, this distinguishes
   differently-shaped plans over the same atoms — ((a*b)*c) vs (a*(b*c))
   give different mf bounds, so a cache shared across plans must not
   collapse them into one key. *)
let rec plan_fingerprint = function
  | Leaf r -> r
  | Join (l, r) ->
      "(" ^ plan_fingerprint l ^ "*" ^ plan_fingerprint r ^ ")"

let left_deep = function
  | [] -> invalid_arg "Elastic: empty plan"
  | first :: rest -> List.fold_left (fun acc r -> Join (acc, r)) first rest

let plan_of_ghd ghd =
  let tree = Ghd.bag_tree ghd in
  let atoms =
    List.concat_map (Ghd.members ghd) (Join_tree.post_order tree)
  in
  left_deep (List.map (fun a -> Leaf a) atoms)

let plan_of_cq ?(plans = []) cq =
  let component_plan component =
    match Yannakakis.find_plan plans component with
    | Some g -> plan_of_ghd g
    | None -> (
        match Join_tree.of_cq component with
        | Some jt -> plan_of_ghd (Ghd.of_join_tree jt)
        | None -> plan_of_ghd (Ghd.auto component))
  in
  left_deep (List.map component_plan (Cq.components cq))

let rec plan_schema cq = function
  | Leaf r -> Cq.schema_of cq r
  | Join (l, r) -> Schema.union (plan_schema cq l) (plan_schema cq r)

(* mf(plan, A): static bound on the multiplicity of any valuation of A in
   the plan's output. For a join, fixing A on one side bounds the side's
   matches; each match pins the join attributes, bounding the other
   side's fan-out; the two orientations give two bounds and we keep the
   smaller. The recursion branches four ways per join node, so results
   are memoized on (sub-plan, attribute set) — sub-plans are identified
   by their atom list, which is unique in a self-join-free query. *)
let c_mf_evals = Obs.counter "elastic.mf_evals"
let c_memo_hits = Obs.counter "elastic.memo_hits"

(* Cross-call mf store. Bounds are pure functions of (plan structure,
   attribute set, relation contents); contents compress to version
   stamps, so entries for a mutated database can never be hit — the
   mutated relation carries a fresh stamp. The per-call Hashtbl below
   remains as a lock-free L1 in front of this store. *)
let mf_store : Count.t Cache.Store.t =
  Cache.Store.create ~name:"elastic.mf" ~capacity:4096
    ~weight:(fun _ -> 3 * 8)
    ()

let max_frequency_memo ?versions cq db =
  (* The version stamps identifying the relation contents behind the
     bounds. Callers that probe a reordered instance (local_sensitivity)
     pass the original relations' stamps explicitly — mf is invariant
     under column order, and the original stamps are the stable ones.
     Derivation is best-effort: a database missing query relations
     simply bypasses the shared store so the Leaf lookup still raises
     the uncached error. *)
  let versions_key =
    match versions with
    | Some v -> Some (Cache.Key.versions v)
    | None ->
        if not (Cache.enabled ()) then None
        else begin
          match
            List.map
              (fun r ->
                match Database.find_opt r db with
                | Some rel -> (r, Relation.version rel)
                | None -> raise Exit)
              (Cq.relation_names cq)
          with
          | v -> Some (Cache.Key.versions v)
          | exception Exit -> None
        end
  in
  let memo = Hashtbl.create 64 in
  let rec mf plan attrs =
    let fingerprint = plan_fingerprint plan in
    let key = (fingerprint, Schema.attrs attrs) in
    match Hashtbl.find_opt memo key with
    | Some c ->
        Obs.tick c_memo_hits;
        c
    | None ->
        let compute () =
          Obs.tick c_mf_evals;
          match plan with
          | Leaf r ->
              let rel = Database.find r db in
              let over = Schema.inter attrs (Relation.schema rel) in
              Relation.max_frequency ~over rel
          | Join (l, r) ->
              let sl = plan_schema cq l and sr = plan_schema cq r in
              let join_attrs = Schema.inter sl sr in
              let pinned = Schema.union join_attrs attrs in
              let bound_left =
                Count.mul
                  (mf l (Schema.inter attrs sl))
                  (mf r (Schema.inter pinned sr))
              in
              let bound_right =
                Count.mul
                  (mf r (Schema.inter attrs sr))
                  (mf l (Schema.inter pinned sl))
              in
              min bound_left bound_right
        in
        let result =
          match versions_key with
          | None -> compute ()
          | Some vk ->
              Cache.Store.find_or_add mf_store
                (Cache.Key.of_parts
                   [ fingerprint; Schema.to_string attrs; vk ])
                compute
        in
        Hashtbl.replace memo key result;
        result
  in
  mf

let max_frequency cq db plan attrs = max_frequency_memo cq db plan attrs

let relation_sensitivity_with mf cq plan target =
  let rec sens plan =
    match plan with
    | Leaf r ->
        if String.equal r target then Count.one
        else
          Errors.schema_errorf "Elastic: relation %s is not in this sub-plan"
            target
    | Join (l, r) ->
        let sl = plan_schema cq l and sr = plan_schema cq r in
        let join_attrs = Schema.inter sl sr in
        if List.exists (String.equal target) (plan_atoms l) then
          Count.mul (sens l) (mf r (Schema.inter join_attrs sr))
        else Count.mul (sens r) (mf l (Schema.inter join_attrs sl))
  in
  sens plan

let relation_sensitivity cq db plan target =
  relation_sensitivity_with (max_frequency_memo cq db) cq plan target

let local_sensitivity ?plans cq db =
  Obs.span "elastic.analyze" @@ fun () ->
  (* Stamp the key off the caller's relations before [Cq.instance]
     reorders columns: a reorder mints a fresh relation (fresh stamp)
     per call, but mf is column-order invariant, so the original stamps
     are the ones under which repeated calls hit the shared store. *)
  let versions =
    List.map
      (fun r -> (r, Relation.version (Database.find r db)))
      (Cq.relation_names cq)
  in
  let db = Database.of_list (Cq.instance cq db) in
  let plan = plan_of_cq ?plans cq in
  (* The memo table is a plain Hashtbl, so it cannot be shared across
     domains: above one job each relation gets its own memo (re-deriving
     some mf bounds, which are cheap); at one job the sequential path
     keeps the shared table. Either way the bounds are exact functions
     of (plan, attrs), so the results are identical. *)
  let per_relation =
    if Exec.jobs () > 1 then
      Exec.parallel_map_list
        (fun r ->
          ( r,
            relation_sensitivity_with
              (max_frequency_memo ~versions cq db)
              cq plan r ))
        (Cq.relation_names cq)
    else
      let mf = max_frequency_memo ~versions cq db in
      List.map
        (fun r -> (r, relation_sensitivity_with mf cq plan r))
        (Cq.relation_names cq)
  in
  let local_sensitivity =
    List.fold_left (fun acc (_, c) -> Count.max acc c) Count.zero per_relation
  in
  { Sens_types.local_sensitivity; witness = None; per_relation }
