open Tsens_relational
open Tsens_query

type plan = Leaf of string | Join of plan * plan

let rec plan_atoms = function
  | Leaf r -> [ r ]
  | Join (l, r) -> plan_atoms l @ plan_atoms r

let left_deep = function
  | [] -> invalid_arg "Elastic: empty plan"
  | first :: rest -> List.fold_left (fun acc r -> Join (acc, r)) first rest

let plan_of_ghd ghd =
  let tree = Ghd.bag_tree ghd in
  let atoms =
    List.concat_map (Ghd.members ghd) (Join_tree.post_order tree)
  in
  left_deep (List.map (fun a -> Leaf a) atoms)

let plan_of_cq ?(plans = []) cq =
  let component_plan component =
    match Yannakakis.find_plan plans component with
    | Some g -> plan_of_ghd g
    | None -> (
        match Join_tree.of_cq component with
        | Some jt -> plan_of_ghd (Ghd.of_join_tree jt)
        | None -> plan_of_ghd (Ghd.auto component))
  in
  left_deep (List.map component_plan (Cq.components cq))

let rec plan_schema cq = function
  | Leaf r -> Cq.schema_of cq r
  | Join (l, r) -> Schema.union (plan_schema cq l) (plan_schema cq r)

(* mf(plan, A): static bound on the multiplicity of any valuation of A in
   the plan's output. For a join, fixing A on one side bounds the side's
   matches; each match pins the join attributes, bounding the other
   side's fan-out; the two orientations give two bounds and we keep the
   smaller. The recursion branches four ways per join node, so results
   are memoized on (sub-plan, attribute set) — sub-plans are identified
   by their atom list, which is unique in a self-join-free query. *)
let c_mf_evals = Obs.counter "elastic.mf_evals"
let c_memo_hits = Obs.counter "elastic.memo_hits"

let max_frequency_memo cq db =
  let memo = Hashtbl.create 64 in
  let rec mf plan attrs =
    let key =
      (String.concat "," (plan_atoms plan), Schema.attrs attrs)
    in
    match Hashtbl.find_opt memo key with
    | Some c ->
        Obs.tick c_memo_hits;
        c
    | None ->
        Obs.tick c_mf_evals;
        let result =
          match plan with
          | Leaf r ->
              let rel = Database.find r db in
              let over = Schema.inter attrs (Relation.schema rel) in
              Relation.max_frequency ~over rel
          | Join (l, r) ->
              let sl = plan_schema cq l and sr = plan_schema cq r in
              let join_attrs = Schema.inter sl sr in
              let pinned = Schema.union join_attrs attrs in
              let bound_left =
                Count.mul
                  (mf l (Schema.inter attrs sl))
                  (mf r (Schema.inter pinned sr))
              in
              let bound_right =
                Count.mul
                  (mf r (Schema.inter attrs sr))
                  (mf l (Schema.inter pinned sl))
              in
              min bound_left bound_right
        in
        Hashtbl.replace memo key result;
        result
  in
  mf

let max_frequency cq db plan attrs = max_frequency_memo cq db plan attrs

let relation_sensitivity_with mf cq plan target =
  let rec sens plan =
    match plan with
    | Leaf r ->
        if String.equal r target then Count.one
        else
          Errors.schema_errorf "Elastic: relation %s is not in this sub-plan"
            target
    | Join (l, r) ->
        let sl = plan_schema cq l and sr = plan_schema cq r in
        let join_attrs = Schema.inter sl sr in
        if List.exists (String.equal target) (plan_atoms l) then
          Count.mul (sens l) (mf r (Schema.inter join_attrs sr))
        else Count.mul (sens r) (mf l (Schema.inter join_attrs sl))
  in
  sens plan

let relation_sensitivity cq db plan target =
  relation_sensitivity_with (max_frequency_memo cq db) cq plan target

let local_sensitivity ?plans cq db =
  Obs.span "elastic.analyze" @@ fun () ->
  let db = Database.of_list (Cq.instance cq db) in
  let plan = plan_of_cq ?plans cq in
  (* The memo table is a plain Hashtbl, so it cannot be shared across
     domains: above one job each relation gets its own memo (re-deriving
     some mf bounds, which are cheap); at one job the sequential path
     keeps the shared table. Either way the bounds are exact functions
     of (plan, attrs), so the results are identical. *)
  let per_relation =
    if Exec.jobs () > 1 then
      Exec.parallel_map_list
        (fun r ->
          (r, relation_sensitivity_with (max_frequency_memo cq db) cq plan r))
        (Cq.relation_names cq)
    else
      let mf = max_frequency_memo cq db in
      List.map
        (fun r -> (r, relation_sensitivity_with mf cq plan r))
        (Cq.relation_names cq)
  in
  let local_sensitivity =
    List.fold_left (fun acc (_, c) -> Count.max acc c) Count.zero per_relation
  in
  { Sens_types.local_sensitivity; witness = None; per_relation }
