open Tsens_relational
open Tsens_query

(* The join of a bag's member relations, columns as stored in [db]. *)
let bag_relation ghd db bag =
  let members = Ghd.members ghd bag in
  let rels = List.map (fun r -> Database.find r db) members in
  Join.join_all rels

let count_ghd ghd db =
  Cq.check_database (Ghd.cq ghd) db;
  let tree = Ghd.bag_tree ghd in
  (* Bottom-up: botjoin(v) = γ_link(v) (B_v ⋈ botjoins of children). *)
  let botjoins = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let base = bag_relation ghd db v in
      let child_bots = List.map (Hashtbl.find botjoins) (Join_tree.children tree v) in
      let link = Join_tree.link_schema tree v in
      let bot = Join.join_project_all ~group:link (base :: child_bots) in
      Hashtbl.replace botjoins v bot)
    (Join_tree.post_order tree);
  let root_bot = Hashtbl.find botjoins (Join_tree.root tree) in
  (* The root's link schema is empty, so its botjoin is a nullary
     relation whose single count is |Q(D)| (or it is empty). *)
  Relation.cardinality root_bot

let find_plan plans component =
  (* Same atom names with the same attribute sets: queries over the same
     tables but different variable bindings (qw vs the 4-cycle) must not
     steal each other's plans. *)
  let matches g =
    let plan_cq = Ghd.cq g in
    let names l = List.sort String.compare (Cq.relation_names l) in
    names plan_cq = names component
    && List.for_all
         (fun r ->
           Schema.equal_as_sets (Cq.schema_of plan_cq r)
             (Cq.schema_of component r))
         (Cq.relation_names component)
  in
  List.find_opt matches plans

let plan_of_component component =
  match Join_tree.of_cq component with
  | Some jt -> Ghd.of_join_tree jt
  | None -> Ghd.auto component

let default_plans cq = List.map plan_of_component (Cq.components cq)

(* |Q(D)| is a pure function of (query, plans, relation contents) and
   the hottest repeated evaluation in the DP benches (Privsql counts the
   same instance once per trial). Version-keyed like Tsens.analyze; a
   database missing query relations bypasses the store so the error
   path stays uncached. *)
let count_store : Count.t Cache.Store.t =
  Cache.Store.create ~name:"yannakakis.count" ~capacity:256
    ~weight:(fun _ -> 3 * 8)
    ()

let count ?(plans = []) cq db =
  let compute () =
    List.fold_left
      (fun acc component ->
        let plan =
          match find_plan plans component with
          | Some g -> g
          | None -> plan_of_component component
        in
        Count.mul acc (count_ghd plan db))
      Count.one (Cq.components cq)
  in
  if not (Cache.enabled ()) then compute ()
  else
    match
      List.map
        (fun r ->
          match Database.find_opt r db with
          | Some rel -> (r, Relation.version rel)
          | None -> raise Exit)
        (Cq.relation_names cq)
    with
    | exception Exit -> compute ()
    | versions ->
        Cache.Store.find_or_add count_store
          (Cache.Key.of_parts
             [
               Cq.to_string cq;
               String.concat "&"
                 (List.map (fun g -> Format.asprintf "%a" Ghd.pp g) plans);
               Cache.Key.versions versions;
             ])
          compute

let output cq db =
  let rels = List.map snd (Cq.instance cq db) in
  Join.join_all rels
