(** TSens — the paper's core contribution (Algorithm 2 and its GHD
    extension, Sections 5.2–5.4).

    For a full CQ without self-joins and a database instance, TSens
    computes the *multiplicity table* of every relation R: for each
    combination of values of R's shared attributes, the number of output
    tuples one copy of a matching R-tuple produces — i.e. the tuple
    sensitivity of every tuple in R's representative domain, covering
    both insertions and deletions. The tables come out of two passes over
    a join tree (botjoins leaf→root, topjoins root→leaf); non-acyclic
    queries run over a generalized hypertree decomposition whose bags act
    as super-relations. The maximum entry over all tables is the local
    sensitivity and its row the most sensitive tuple.

    Extensions implemented from Section 5.4: selection predicates (failing
    tuples get sensitivity 0), disconnected queries (per-component DP with
    cross-component output-size scaling), attributes appearing in a single
    atom (dropped from the DP, witness values extrapolated). *)

open Tsens_relational
open Tsens_query

type selection = string -> Schema.t -> Tuple.t -> bool
(** [selection relation schema tuple] decides whether a tuple of
    [relation] satisfies the query's selection predicate. *)

type analysis
(** The full output of the DP, reusable by the DP-mechanism layer. An
    analysis is a first-class value: build it once ({!analyze}), then
    probe it many times ({!tuple_sensitivity}, {!top_sensitive},
    {!multiplicity_table}) without re-running the passes. *)

val analysis_id : analysis -> int
(** Unique identity of the DP run that built this analysis; a cached
    {!analyze} hit returns the original run's value, same id. Downstream
    memos (truncation profiles) key on it. *)

val analyze :
  ?selection:selection ->
  ?skip:string list ->
  ?plans:Ghd.t list ->
  Cq.t ->
  Database.t ->
  analysis
(** Runs the DP. [plans] optionally fixes the decomposition of each
    connected component (see {!Yannakakis.find_plan}); components without
    a matching plan use the GYO join tree, or {!Ghd.auto} when cyclic.

    [skip] names relations whose multiplicity table should not be
    computed — the paper's optimization for relations whose tuples have
    sensitivity at most 1 because their key is a superkey of the join
    (e.g. Lineitem in q3, whose table would otherwise dominate time and
    memory). Skipped relations are reported with sensitivity 1 and no
    witness; asking for their table or tuple sensitivities raises.

    Raises {!Errors.Schema_error} if the database does not match the
    query or a skipped relation is not in it.

    When the cache layer is on ({!Cache.enabled}) and no [selection] is
    given, the analysis is memoized by (query, skip, plans, relation
    version stamps): repeated calls on an unchanged database return the
    same analysis value without re-running the DP. Selections are
    arbitrary closures and always run uncached. *)

val local_sensitivity :
  ?selection:selection ->
  ?skip:string list ->
  ?plans:Ghd.t list ->
  Cq.t ->
  Database.t ->
  Sens_types.result
(** [result (analyze cq db)], as a convenience. *)

val result : analysis -> Sens_types.result

val output_size : analysis -> Count.t
(** |Q(D)| — a byproduct of the bottom-up pass. *)

val multiplicity_table : analysis -> string -> Relation.t
(** The multiplicity table T^R of a relation, over R's shared attributes,
    already scaled across components. Raises {!Errors.Schema_error} for
    relations not in the query or skipped in this analysis.

    Internally, tables whose constituent joins are pure cross products
    (e.g. the interior relations of a path query) are kept factored;
    {!local_sensitivity} and {!tuple_sensitivity} never expand them, but
    this accessor materializes the full cross product — as large as the
    relation's representative domain. *)

val shared_schema : Cq.t -> string -> Schema.t
(** The attributes of an atom that occur in at least one other atom — the
    schema of its multiplicity table. *)

val tuple_sensitivity : analysis -> string -> Tuple.t -> Count.t
(** Sensitivity of one tuple (given over the relation's full atom
    schema): its multiplicity-table entry, or 0 when the shared-attribute
    projection has no entry; 0 as well when the tuple fails the
    selection. *)

(** {1 Observability} *)

type node_stat = {
  bag : string;  (** decomposition bag (= atom name for acyclic plans) *)
  botjoin_rows : int;
  topjoin_rows : int;
  botjoin_seconds : float;  (** wall-clock spent computing ⊥(v) *)
  topjoin_seconds : float;  (** wall-clock spent computing ⊤(v) *)
}

type table_stat = {
  table_relation : string;
  factored : bool;  (** kept as a cross-product factorization *)
  table_rows : int;
      (** distinct entries stored: dense rows, or the sum of the factored
          parts' rows (the materialized size would be their product) *)
}

val statistics : analysis -> node_stat list * table_stat list
(** Intermediate sizes of the DP — the quantities behind the paper's
    observation that cyclic queries' multiplicity tables grow nearly
    quadratically. Node stats follow bag post-order per component; table
    stats follow atom order (skipped relations are absent). *)

val pp_statistics : Format.formatter -> analysis -> unit

val instance_relation : analysis -> string -> Relation.t
(** The post-selection contents of one relation as the DP saw them
    (columns in atom-schema order). Raises {!Errors.Data_error} for
    unknown relations. *)

val top_sensitive : analysis -> string -> int -> (Tuple.t * Count.t) list
(** The [n] most sensitive tuples of a relation's representative domain
    (full atom tuples, lonely attributes extrapolated), heaviest first,
    ties by tuple order — the abstract's outlier-detection view. Factored
    tables are enumerated best-first without materializing; tuples
    failing the analysis's selection are excluded. Raises like
    {!multiplicity_table} for unknown/skipped relations,
    [Invalid_argument] if [n < 0]. *)

val witness_tuple : analysis -> string -> Tuple.t -> Tuple.t
(** Extends a multiplicity-table row of the given relation to a full
    tuple over the atom schema, extrapolating lonely attributes (first
    active-domain value, or a fresh constant on empty relations). *)
