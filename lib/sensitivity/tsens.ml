open Tsens_relational
open Tsens_query

type selection = string -> Schema.t -> Tuple.t -> bool

(* A multiplicity table is either materialized, or — when its parts join
   as a pure cross product (path-query endpoints, star centres) — kept
   factored: the entry at τ is factor × ∏ part counts at τ's projections.
   Factoring is what keeps q1-style tables from materializing the whole
   representative domain (|Orders| × |Customer| rows). *)
type table =
  | Dense of Relation.t
  | Factored of { schema : Schema.t; parts : Relation.t list; factor : Count.t }

type node_stat = {
  bag : string;
  botjoin_rows : int;
  topjoin_rows : int;
  botjoin_seconds : float;
  topjoin_seconds : float;
}

let c_bot_rows = Obs.counter "tsens.botjoin_rows"
let c_top_rows = Obs.counter "tsens.topjoin_rows"
let c_table_rows = Obs.counter "tsens.table_rows_stored"
let c_factored = Obs.counter "tsens.tables_factored"
let c_dense = Obs.counter "tsens.tables_dense"

type table_stat = {
  table_relation : string;
  factored : bool;
  table_rows : int;
}

type analysis = {
  id : int; (* unique per DP run; cache hits share the id *)
  query : Cq.t;
  db : Database.t; (* post-selection instance, atom column order *)
  selection : selection option;
  tables : (string * table) list; (* atom order, scaled across components *)
  out_size : Count.t;
  res : Sens_types.result;
  node_stats : node_stat list;
}

(* Analysis identities let downstream layers (truncation profiles) key
   their own memos by "which DP run produced this" without hashing the
   whole value. Atomic: analyses can be built under Exec.with_jobs. *)
let analysis_counter = Atomic.make 0
let analysis_id a = a.id

(* The identity of r⋈: one nullary tuple with multiplicity 1. *)
let unit_relation =
  Relation.create ~schema:Schema.empty [ (Tuple.of_list [], Count.one) ]

let shared_schema cq relation =
  Schema.restrict
    ~keep:(fun a -> List.length (Cq.atoms_with cq a) >= 2)
    (Cq.schema_of cq relation)

(* ------------------------------------------------------------------ *)
(* Table representation operations *)

let table_schema = function
  | Dense r -> Relation.schema r
  | Factored f -> f.schema

(* Entry lookup from a tuple over the relation's full atom schema. *)
let table_entry atom_schema table tuple =
  match table with
  | Dense r ->
      let positions = Schema.positions ~sub:(Relation.schema r) atom_schema in
      Relation.count_of (Tuple.project positions tuple) r
  | Factored { parts; factor; _ } ->
      List.fold_left
        (fun acc part ->
          let positions =
            Schema.positions ~sub:(Relation.schema part) atom_schema
          in
          Count.mul acc (Relation.count_of (Tuple.project positions tuple) part))
        factor parts

(* Heaviest entry: for a factored table the maxima multiply, and the
   witness row stitches the per-part maxima together — Algorithm 1's
   "pair the heaviest topjoin entry with the heaviest botjoin entry". *)
let table_best table =
  match table with
  | Dense r -> Relation.max_row r
  | Factored { schema; parts; factor } -> (
      if Count.equal factor Count.zero then None
      else
        let maxima = List.map Relation.max_row parts in
        if List.exists Option.is_none maxima then None
        else
          let maxima =
            List.map2
              (fun part best -> (part, Option.get best))
              parts maxima
          in
          let count =
            List.fold_left
              (fun acc (_, (_, c)) -> Count.mul acc c)
              factor maxima
          in
          let value_for attr =
            let rec find = function
              | [] -> assert false (* the parts cover the schema *)
              | (part, (row, _)) :: rest -> (
                  match Schema.index_opt attr (Relation.schema part) with
                  | Some i -> Tuple.get row i
                  | None -> find rest)
            in
            find maxima
          in
          match Schema.attrs schema with
          | attrs -> Some (Tuple.of_list (List.map value_for attrs), count))

(* Entries of a table as a sequence, heaviest first (ties by tuple
   order). Dense tables sort once; factored tables enumerate index
   combinations best-first with a heap, never materializing the cross
   product. *)
let desc_rows rows =
  let rows = Array.copy rows in
  Array.sort
    (fun (t1, c1) (t2, c2) ->
      match Count.compare c2 c1 with 0 -> Tuple.compare t1 t2 | c -> c)
    rows;
  rows

let table_rows_desc table =
  match table with
  | Dense r -> Array.to_seq (desc_rows (Relation.rows r))
  | Factored { schema; parts; factor } ->
      if Count.equal factor Count.zero then Seq.empty
      else
        let part_rows = List.map (fun p -> desc_rows (Relation.rows p)) parts in
        if List.exists (fun a -> Array.length a = 0) part_rows then Seq.empty
        else begin
          let part_rows = Array.of_list part_rows in
          let part_schemas =
            Array.of_list (List.map Relation.schema parts)
          in
          let k = Array.length part_rows in
          let combo indices =
            let value_for attr =
              let rec find i =
                if i >= k then assert false
                else
                  match Schema.index_opt attr part_schemas.(i) with
                  | Some pos ->
                      Tuple.get (fst part_rows.(i).(indices.(i))) pos
                  | None -> find (i + 1)
              in
              find 0
            in
            let row =
              Tuple.of_list (List.map value_for (Schema.attrs schema))
            in
            let count =
              Array.to_list
                (Array.mapi (fun i j -> snd part_rows.(i).(j)) indices)
              |> List.fold_left Count.mul factor
            in
            (row, count)
          in
          let cmp (c1, t1, _) (c2, t2, _) =
            (* max-heap: heaviest first, then smallest tuple *)
            match Count.compare c1 c2 with
            | 0 -> Tuple.compare t2 t1
            | c -> c
          in
          let visited = Hashtbl.create 64 in
          let push indices heap =
            let key = Array.to_list indices in
            if Hashtbl.mem visited key then heap
            else begin
              Hashtbl.add visited key ();
              let row, count = combo indices in
              Heap.insert (count, row, indices) heap
            end
          in
          let initial = push (Array.make k 0) (Heap.empty ~cmp) in
          let rec next heap () =
            match Heap.pop heap with
            | None -> Seq.Nil
            | Some ((count, row, indices), heap) ->
                (* successors: advance one coordinate *)
                let heap = ref heap in
                for i = 0 to k - 1 do
                  if indices.(i) + 1 < Array.length part_rows.(i) then begin
                    let succ = Array.copy indices in
                    succ.(i) <- succ.(i) + 1;
                    heap := push succ !heap
                  end
                done;
                Seq.Cons ((row, count), next !heap)
          in
          next initial
        end

let materialize_table table =
  match table with
  | Dense r -> r
  | Factored { schema; parts; factor } ->
      if Count.equal factor Count.zero then Relation.empty schema
      else
        let joined =
          Join.join_project_all ~group:schema (unit_relation :: parts)
        in
        if Count.equal factor Count.one then joined
        else Relation.scale factor joined

let scale_table factor table =
  if Count.equal factor Count.one then table
  else
    match table with
    | Dense r ->
        if Count.equal factor Count.zero then
          Dense (Relation.empty (Relation.schema r))
        else Dense (Relation.scale factor r)
    | Factored f -> Factored { f with factor = Count.mul f.factor factor }

(* ------------------------------------------------------------------ *)
(* The two-pass DP over one connected component's decomposition.
   Returns the per-relation multiplicity tables and |Q_c(D)|. *)

let run_component ?(skip = []) ghd db =
  let cq = Ghd.cq ghd in
  let tree = Ghd.bag_tree ghd in
  let bag_rel =
    let cache = Hashtbl.create 16 in
    fun v ->
      match Hashtbl.find_opt cache v with
      | Some r -> r
      | None ->
          let r =
            Join.join_all
              (List.map (fun m -> Database.find m db) (Ghd.members ghd v))
          in
          Hashtbl.replace cache v r;
          r
  in
  (* Bottom-up botjoins: ⊥(v) = γ_link(v) (B_v ⋈ {⊥(c)}). *)
  let botjoins = Hashtbl.create 16 in
  let bot_seconds = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let t0 = Obs.now_seconds () in
      let bot =
        Obs.span "tsens.botjoin" @@ fun () ->
        let children = Join_tree.children tree v in
        Join.join_project_all
          ~group:(Join_tree.link_schema tree v)
          (bag_rel v :: List.map (Hashtbl.find botjoins) children)
      in
      Hashtbl.replace botjoins v bot;
      Hashtbl.replace bot_seconds v (Obs.now_seconds () -. t0);
      Obs.add c_bot_rows (Relation.distinct_count bot))
    (Join_tree.post_order tree);
  let out_size =
    Relation.cardinality (Hashtbl.find botjoins (Join_tree.root tree))
  in
  (* Top-down topjoins: ⊤(root) = unit;
     ⊤(v) = γ_link(v) (B_p ⋈ ⊤(p) ⋈ {⊥(s) : s sibling of v}). *)
  let topjoins = Hashtbl.create 16 in
  let top_seconds = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let t0 = Obs.now_seconds () in
      (match Join_tree.parent tree v with
      | None -> Hashtbl.replace topjoins v unit_relation
      | Some p ->
          let top =
            Obs.span "tsens.topjoin" @@ fun () ->
            let siblings = Join_tree.siblings tree v in
            Join.join_project_all
              ~group:(Join_tree.link_schema tree v)
              (bag_rel p :: Hashtbl.find topjoins p
              :: List.map (Hashtbl.find botjoins) siblings)
          in
          Hashtbl.replace topjoins v top);
      Hashtbl.replace top_seconds v (Obs.now_seconds () -. t0);
      Obs.add c_top_rows (Relation.distinct_count (Hashtbl.find topjoins v)))
    (Join_tree.pre_order tree);
  (* Multiplicity tables: T^R = γ_shared(R) (⊤(v) ⋈ {⊥(c)} ⋈ co-members),
     kept factored when the parts are a disjoint cover of shared(R). *)
  let wanted =
    List.filter
      (fun r -> not (List.exists (String.equal r) skip))
      (Cq.relation_names cq)
  in
  (* Each relation's table depends only on the finished botjoin/topjoin
     tables and the (persistent) database, so the per-relation work fans
     out across the pool. The Hashtbls are only read here, which is safe
     concurrently; result order follows [wanted] regardless of which
     domain ran which relation. *)
  let tables =
    Obs.span "tsens.tables" @@ fun () ->
    Exec.parallel_map_list
      (fun relation ->
        let v = Ghd.bag_of ghd relation in
        let co_members =
          List.filter_map
            (fun m ->
              if String.equal m relation then None
              else Some (Database.find m db))
            (Ghd.members ghd v)
        in
        let child_bots =
          List.map (Hashtbl.find botjoins) (Join_tree.children tree v)
        in
        let parts = Hashtbl.find topjoins v :: (child_bots @ co_members) in
        let group = shared_schema cq relation in
        let disjoint_cover =
          let rec check seen = function
            | [] -> Schema.equal_as_sets seen group
            | p :: rest ->
                let s = Relation.schema p in
                Schema.subset s group
                && Schema.disjoint s seen
                && check (Schema.union seen s) rest
          in
          check Schema.empty parts
        in
        let table =
          if disjoint_cover && List.length parts >= 2 then
            Factored { schema = group; parts; factor = Count.one }
          else Dense (Join.join_project_all ~group parts)
        in
        if Obs.enabled () then begin
          match table with
          | Factored { parts; _ } ->
              Obs.tick c_factored;
              Obs.add c_table_rows
                (List.fold_left
                   (fun acc p -> acc + Relation.distinct_count p)
                   0 parts)
          | Dense r ->
              Obs.tick c_dense;
              Obs.add c_table_rows (Relation.distinct_count r)
        end;
        (relation, table))
      wanted
  in
  let node_stats =
    List.map
      (fun v ->
        {
          bag = v;
          botjoin_rows = Relation.distinct_count (Hashtbl.find botjoins v);
          topjoin_rows = Relation.distinct_count (Hashtbl.find topjoins v);
          botjoin_seconds = Hashtbl.find bot_seconds v;
          topjoin_seconds = Hashtbl.find top_seconds v;
        })
      (Join_tree.post_order tree)
  in
  (tables, out_size, node_stats)

(* ------------------------------------------------------------------ *)
(* Witness extrapolation for attributes outside the multiplicity table:
   lonely attributes take any value (paper Section 5.4). *)

let extrapolate db cq relation row_schema row =
  let atom_schema = Cq.schema_of cq relation in
  let base = Database.find relation db in
  let value_for attr =
    match Schema.index_opt attr row_schema with
    | Some i -> Tuple.get row i
    | None -> (
        match Relation.active_domain attr base with
        | v :: _ -> v
        | [] -> Value.str "any")
  in
  Tuple.of_list (List.map value_for (Schema.attrs atom_schema))

(* Best admissible entry of a multiplicity table: the heaviest one whose
   extended tuple passes the selection (rows that fail have true
   sensitivity 0). Without a selection the factored fast path applies;
   with one we must scan entries in weight order, which requires a
   materialized table. *)
let best_of_table selection db cq relation table =
  let atom_schema = Cq.schema_of cq relation in
  match selection with
  | None ->
      Option.map
        (fun (row, count) ->
          (extrapolate db cq relation (table_schema table) row,
           atom_schema, count))
        (table_best table)
  | Some pred ->
      let materialized = materialize_table table in
      let rows = Array.copy (Relation.rows materialized) in
      Array.sort
        (fun (t1, c1) (t2, c2) ->
          match Count.compare c2 c1 with 0 -> Tuple.compare t1 t2 | c -> c)
        rows;
      let admissible (row, _) =
        let full =
          extrapolate db cq relation (Relation.schema materialized) row
        in
        pred relation atom_schema full
      in
      Option.map
        (fun (row, count) ->
          ( extrapolate db cq relation (Relation.schema materialized) row,
            atom_schema, count ))
        (Array.find_opt admissible rows)

(* ------------------------------------------------------------------ *)

let apply_selection selection cq db =
  let instance = Cq.instance cq db in
  let filtered =
    match selection with
    | None -> instance
    | Some pred ->
        List.map
          (fun (name, rel) ->
            (name, Relation.filter (fun schema t -> pred name schema t) rel))
          instance
  in
  Database.of_list filtered

let analyze_uncached ?selection ~skip ~plans cq db =
  Obs.span "tsens.analyze" @@ fun () ->
  let db = apply_selection selection cq db in
  let components = Cq.components cq in
  let runs =
    List.map
      (fun component ->
        let plan =
          match Yannakakis.find_plan plans component with
          | Some g -> g
          | None -> (
              match Join_tree.of_cq component with
              | Some jt -> Ghd.of_join_tree jt
              | None -> Ghd.auto component)
        in
        (component, run_component ~skip plan db))
      components
  in
  let out_size =
    List.fold_left
      (fun acc (_, (_, size, _)) -> Count.mul acc size)
      Count.one runs
  in
  let node_stats = List.concat_map (fun (_, (_, _, stats)) -> stats) runs in
  (* A tuple of component i multiplies with every full output of the other
     components (the query is their cross product). *)
  let tables =
    List.concat_map
      (fun (component, (tables, _, _)) ->
        let others =
          List.fold_left
            (fun acc (c, (_, size, _)) ->
              if Cq.equal c component then acc else Count.mul acc size)
            Count.one runs
        in
        List.map (fun (r, t) -> (r, scale_table others t)) tables)
      runs
  in
  (* Restore atom order (skipped relations carry no table). *)
  let tables =
    List.filter_map
      (fun r -> Option.map (fun t -> (r, t)) (List.assoc_opt r tables))
      (Cq.relation_names cq)
  in
  (* Independent per relation (selection scans can materialize a table
     each); fan out and keep atom order. *)
  let bests =
    Exec.parallel_map_list
      (fun (relation, table) ->
        (relation, best_of_table selection db cq relation table))
      tables
  in
  let res = Sens_types.result_of_per_relation bests in
  (* Skipped relations are reported with the paper's FK-superkey bound of
     1, without a witness, in atom order. *)
  let res =
    if skip = [] then res
    else
      let per_relation =
        List.map
          (fun r ->
            match List.assoc_opt r res.Sens_types.per_relation with
            | Some c -> (r, c)
            | None -> (r, Count.one))
          (Cq.relation_names cq)
      in
      {
        res with
        Sens_types.per_relation;
        local_sensitivity =
          Count.max res.Sens_types.local_sensitivity Count.one;
      }
  in
  {
    id = Atomic.fetch_and_add analysis_counter 1;
    query = cq;
    db;
    selection;
    tables;
    out_size;
    res;
    node_stats;
  }

(* Cached entry point. A whole analysis is a pure function of (query,
   skip set, plans, relation contents); relation contents compress to
   version stamps, so repeated analyses of an unchanged database hit
   here and skip the DP entirely. Selections are arbitrary closures —
   unfingerprintable — so selection queries always run uncached. When a
   relation the query needs is missing we also fall through, keeping
   the uncached path's error behavior (and never caching failures). *)
let analysis_store : analysis Cache.Store.t =
  Cache.Store.create ~name:"tsens.analysis" ~capacity:32
    ~weight:(fun a ->
      let table_rows =
        List.fold_left
          (fun acc (_, t) ->
            acc
            +
            match t with
            | Dense r -> Relation.distinct_count r
            | Factored { parts; _ } ->
                List.fold_left
                  (fun acc p -> acc + Relation.distinct_count p)
                  0 parts)
          0 a.tables
      in
      let db_rows =
        Database.fold (fun _ r acc -> acc + Relation.distinct_count r) a.db 0
      in
      (table_rows + db_rows) * 4 * 8)
    ()

let analysis_key ~skip ~plans cq db =
  match
    List.map
      (fun name ->
        match Database.find_opt name db with
        | Some r -> (name, Relation.version r)
        | None -> raise Exit)
      (Cq.relation_names cq)
  with
  | exception Exit -> None
  | versions ->
      Some
        (Cache.Key.of_parts
           [
             Cq.to_string cq;
             String.concat "," (List.sort String.compare skip);
             String.concat "&"
               (List.map (fun g -> Format.asprintf "%a" Ghd.pp g) plans);
             Cache.Key.versions versions;
           ])

let analyze ?selection ?(skip = []) ?(plans = []) cq db =
  List.iter
    (fun r ->
      if not (Cq.mem_relation cq r) then
        Errors.schema_errorf "skip: relation %s is not in query %s" r
          (Cq.name cq))
    skip;
  let uncached () = analyze_uncached ?selection ~skip ~plans cq db in
  if Option.is_some selection || not (Cache.enabled ()) then uncached ()
  else
    match analysis_key ~skip ~plans cq db with
    | None -> uncached ()
    | Some key -> Cache.Store.find_or_add analysis_store key uncached

let local_sensitivity ?selection ?skip ?plans cq db =
  (analyze ?selection ?skip ?plans cq db).res

let result a = a.res
let output_size a = a.out_size

let find_table a relation =
  match List.assoc_opt relation a.tables with
  | Some t -> t
  | None ->
      if Cq.mem_relation a.query relation then
        Errors.schema_errorf
          "the multiplicity table of %s was skipped in this analysis"
          relation
      else
        Errors.schema_errorf "relation %s is not part of query %s" relation
          (Cq.name a.query)

let multiplicity_table a relation = materialize_table (find_table a relation)

let tuple_sensitivity a relation tuple =
  let atom_schema = Cq.schema_of a.query relation in
  if Tuple.arity tuple <> Schema.arity atom_schema then
    Errors.data_errorf "tuple %a does not match schema %a of %s" Tuple.pp
      tuple Schema.pp atom_schema relation;
  let fails_selection =
    match a.selection with
    | None -> false
    | Some pred -> not (pred relation atom_schema tuple)
  in
  if fails_selection then Count.zero
  else table_entry atom_schema (find_table a relation) tuple

let statistics a =
  let table_stats =
    List.map
      (fun (relation, table) ->
        match table with
        | Dense r ->
            {
              table_relation = relation;
              factored = false;
              table_rows = Relation.distinct_count r;
            }
        | Factored { parts; _ } ->
            {
              table_relation = relation;
              factored = true;
              table_rows =
                List.fold_left
                  (fun acc p -> acc + Relation.distinct_count p)
                  0 parts;
            })
      a.tables
  in
  (a.node_stats, table_stats)

let pp_statistics ppf a =
  let node_stats, table_stats = statistics a in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun { bag; botjoin_rows; topjoin_rows; botjoin_seconds; topjoin_seconds }
       ->
      Format.fprintf ppf
        "node %-12s botjoin %-8d (%.3fms) topjoin %-8d (%.3fms)@," bag
        botjoin_rows
        (1e3 *. botjoin_seconds)
        topjoin_rows
        (1e3 *. topjoin_seconds))
    node_stats;
  List.iter
    (fun { table_relation; factored; table_rows } ->
      Format.fprintf ppf "table %-11s %-8s %d rows@," table_relation
        (if factored then "factored" else "dense")
        table_rows)
    table_stats;
  Format.fprintf ppf "@]"

let top_sensitive a relation n =
  if n < 0 then invalid_arg "Tsens.top_sensitive: negative count";
  let table = find_table a relation in
  let atom_schema = Cq.schema_of a.query relation in
  let extend row = extrapolate a.db a.query relation (table_schema table) row in
  let admissible full =
    match a.selection with
    | None -> true
    | Some pred -> pred relation atom_schema full
  in
  table_rows_desc table
  |> Seq.filter_map (fun (row, count) ->
         let full = extend row in
         if admissible full then Some (full, count) else None)
  |> Seq.take n |> List.of_seq

let instance_relation a relation = Database.find relation a.db

let witness_tuple a relation row =
  let table = find_table a relation in
  extrapolate a.db a.query relation (table_schema table) row
