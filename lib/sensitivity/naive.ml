open Tsens_relational
open Tsens_query

let intersect_sorted xs ys =
  let rec loop acc xs ys =
    match (xs, ys) with
    | [], _ | _, [] -> List.rev acc
    | x :: xs', y :: ys' ->
        let c = Value.compare x y in
        if c = 0 then loop (x :: acc) xs' ys'
        else if c < 0 then loop acc xs' ys
        else loop acc xs ys'
  in
  loop [] xs ys

let representative_domain cq db relation =
  let schema = Cq.schema_of cq relation in
  let base = Database.find relation db in
  let domain_of attr =
    let other_homes =
      List.filter
        (fun r -> not (String.equal r relation))
        (Cq.atoms_with cq attr)
    in
    match other_homes with
    | [] -> (
        (* Lonely attribute: a single arbitrary value suffices. *)
        match Relation.active_domain attr base with
        | v :: _ -> [ v ]
        | [] -> [ Value.str "any" ])
    | first :: rest ->
        List.fold_left
          (fun acc r ->
            intersect_sorted acc
              (Relation.active_domain attr (Database.find r db)))
          (Relation.active_domain attr (Database.find first db))
          rest
  in
  let domains = List.map domain_of (Schema.attrs schema) in
  let rec product = function
    | [] -> [ [] ]
    | d :: rest ->
        let tails = product rest in
        List.concat_map (fun v -> List.map (fun t -> v :: t) tails) d
  in
  List.map Tuple.of_list (product domains) |> List.sort Tuple.compare

let count_with cq db relation rel' =
  Yannakakis.count cq (Database.add ~name:relation rel' db)

let tuple_sensitivity cq db relation tuple =
  let base_count = Yannakakis.count cq db in
  let rel = Database.find relation db in
  let up =
    Count.of_int (count_with cq db relation (Relation.add tuple rel) - base_count)
  in
  let down =
    if Relation.mem tuple rel then
      Count.of_int
        (base_count - count_with cq db relation (Relation.remove tuple rel))
    else Count.zero
  in
  Count.max up down

let local_sensitivity ?selection ?(max_candidates = 100_000) cq db =
  let db =
    let instance = Cq.instance cq db in
    let filtered =
      match selection with
      | None -> instance
      | Some pred ->
          List.map
            (fun (name, rel) ->
              (name, Relation.filter (fun s t -> pred name s t) rel))
            instance
    in
    Database.of_list filtered
  in
  let admissible relation schema tuple =
    match selection with
    | None -> true
    | Some pred -> pred relation schema tuple
  in
  let base_count = Yannakakis.count cq db in
  let best_for relation =
    let rel = Database.find relation db in
    let schema = Cq.schema_of cq relation in
    let consider best tuple delta =
      match best with
      | Some (_, _, c) when c >= delta -> best
      | _ when Count.equal delta Count.zero -> best
      | _ -> Some (tuple, schema, delta)
    in
    (* Every probe re-evaluates the query on a database differing in one
       tuple — independent and expensive, so the deltas fan out across
       the pool. The folds below run in candidate order, keeping the
       sequential tie-breaking (first strictly-better tuple wins). *)
    (* Deletions: one copy of each existing distinct tuple. *)
    let deletions =
      Exec.parallel_map
        (fun (tuple, _) ->
          let removed = count_with cq db relation (Relation.remove tuple rel) in
          (tuple, Count.of_int (base_count - removed)))
        (Relation.rows rel)
    in
    let best =
      Array.fold_left
        (fun best (tuple, delta) -> consider best tuple delta)
        None deletions
    in
    (* Insertions: one copy of each representative-domain tuple.
       Inadmissible candidates map to a zero delta, which [consider]
       ignores. *)
    let candidates = representative_domain cq db relation in
    if List.length candidates > max_candidates then
      Errors.data_errorf
        "naive sensitivity: %d insertion candidates for %s exceed the limit %d"
        (List.length candidates) relation max_candidates;
    let insertions =
      Exec.parallel_map_list
        (fun tuple ->
          if not (admissible relation schema tuple) then (tuple, Count.zero)
          else
            let added = count_with cq db relation (Relation.add tuple rel) in
            (tuple, Count.of_int (added - base_count)))
        candidates
    in
    List.fold_left
      (fun best (tuple, delta) -> consider best tuple delta)
      best insertions
  in
  Sens_types.result_of_per_relation
    (List.map (fun r -> (r, best_for r)) (Cq.relation_names cq))
