open Tsens_query

type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  message : string;
  span : Srcspan.t option;
}

let make ?span ~code severity message = { code; severity; message; span }
let error ?span ~code message = make ?span ~code Error message
let warning ?span ~code message = make ?span ~code Warning message
let info ?span ~code message = make ?span ~code Info message

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let equal a b =
  String.equal a.code b.code
  && a.severity = b.severity
  && String.equal a.message b.message
  && Option.equal Srcspan.equal a.span b.span

type report = { subject : string option; items : t list }

let compare_items a b =
  match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
      match
        Option.compare Srcspan.compare a.span b.span
      with
      | 0 -> String.compare a.code b.code
      | c -> c)
  | c -> c

let report ?subject items =
  { subject; items = List.stable_sort compare_items items }

let errors r = List.filter (fun d -> d.severity = Error) r.items
let warnings r = List.filter (fun d -> d.severity = Warning) r.items
let has_errors r = errors r <> []
let find_code code r = List.filter (fun d -> String.equal d.code code) r.items

let equal_report a b =
  Option.equal String.equal a.subject b.subject
  && List.length a.items = List.length b.items
  && List.for_all2 equal a.items b.items

(* ------------------------------------------------------------------ *)
(* Pretty rendering *)

let pp ppf d =
  match d.span with
  | None ->
      Format.fprintf ppf "%s[%s]: %s"
        (severity_to_string d.severity)
        d.code d.message
  | Some span ->
      Format.fprintf ppf "%s[%s] at %a: %s"
        (severity_to_string d.severity)
        d.code Srcspan.pp span d.message

(* The line of [source] containing [ofs]: (start offset, contents). *)
let line_at source ofs =
  let n = String.length source in
  let ofs = min (max 0 ofs) n in
  let start = ref ofs in
  while !start > 0 && source.[!start - 1] <> '\n' do
    decr start
  done;
  let stop = ref ofs in
  while !stop < n && source.[!stop] <> '\n' do
    incr stop
  done;
  (!start, String.sub source !start (!stop - !start))

let pp_excerpt ppf source (span : Srcspan.t) =
  let bol, line = line_at source span.start_ofs in
  let col = span.start_ofs - bol in
  let width =
    max 1 (min (Srcspan.length span) (String.length line - col))
  in
  Format.fprintf ppf "  %s@,  %s%s" line (String.make col ' ')
    (String.make width '^')

let pp_located source ppf d =
  match d.span with
  | None -> pp ppf d
  | Some span ->
      Format.fprintf ppf "%s[%s] at %a: %s@,%a"
        (severity_to_string d.severity)
        d.code (Srcspan.pp_in source) span d.message
        (fun ppf () -> pp_excerpt ppf source span)
        ()

let plural n what =
  Format.sprintf "%d %s%s" n what (if n = 1 then "" else "s")

let pp_report ?source ppf r =
  let pp_item =
    match source with None -> pp | Some src -> pp_located src
  in
  Format.fprintf ppf "@[<v>";
  (match r.subject with
  | Some name when r.items <> [] ->
      Format.fprintf ppf "query %s:@," name
  | _ -> ());
  List.iter (fun d -> Format.fprintf ppf "%a@," pp_item d) r.items;
  let count sev = List.length (List.filter (fun d -> d.severity = sev) r.items) in
  Format.fprintf ppf "%s, %s, %s@]"
    (plural (count Error) "error")
    (plural (count Warning) "warning")
    (plural (count Info) "note")

(* ------------------------------------------------------------------ *)
(* JSON *)

let to_json_value d =
  let fields =
    [
      ("code", Json.Str d.code);
      ("severity", Json.Str (severity_to_string d.severity));
      ("message", Json.Str d.message);
    ]
  in
  let fields =
    match d.span with
    | None -> fields
    | Some span ->
        fields
        @ [
            ( "span",
              Json.Obj
                [
                  ("start", Json.Int span.Srcspan.start_ofs);
                  ("stop", Json.Int span.Srcspan.stop_ofs);
                ] );
          ]
  in
  Json.Obj fields

let report_to_json r =
  let fields =
    (match r.subject with
    | None -> []
    | Some name -> [ ("query", Json.Str name) ])
    @ [ ("diagnostics", Json.List (List.map to_json_value r.items)) ]
  in
  Json.to_string (Json.Obj fields)

let decode_item v =
  let str field =
    match Json.member field v with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "diagnostic lacks string field %S" field)
  in
  let ( let* ) = Result.bind in
  let* code = str "code" in
  let* sev_name = str "severity" in
  let* severity =
    match severity_of_string sev_name with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "unknown severity %S" sev_name)
  in
  let* message = str "message" in
  let* span =
    match Json.member "span" v with
    | None -> Ok None
    | Some sp -> (
        match (Json.member "start" sp, Json.member "stop" sp) with
        | Some (Json.Int start), Some (Json.Int stop)
          when start >= 0 && stop >= start ->
            Ok (Some (Srcspan.make start stop))
        | _ -> Error "malformed span")
  in
  Ok { code; severity; message; span }

let report_of_json text =
  let ( let* ) = Result.bind in
  let* v = Json.of_string text in
  let subject =
    match Json.member "query" v with Some (Json.Str s) -> Some s | _ -> None
  in
  let* items =
    match Json.member "diagnostics" v with
    | Some (Json.List ds) ->
        List.fold_left
          (fun acc d ->
            let* acc = acc in
            let* item = decode_item d in
            Ok (item :: acc))
          (Ok []) ds
        |> Result.map List.rev
    | _ -> Error "report lacks a diagnostics array"
  in
  (* Item order is preserved as parsed; emitted reports are already
     sorted, so round-trips are exact. *)
  Ok { subject; items }
