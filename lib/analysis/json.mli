(** A minimal JSON tree, printer and parser.

    The analysis layer must emit diagnostics as JSON for tooling (the CI
    lint gate, editors) and parse them back (the round-trip contract of
    the report format) without adding a serializer dependency — the repo
    rule is to hand-roll JSON (see [lib/obs]). This is a complete parser
    for the JSON we emit: objects, arrays, strings with the standard
    escapes, integers, floats, booleans and null. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no whitespace), object fields in given order. *)

val of_string : string -> (t, string) result
(** Parses one JSON value; trailing non-whitespace is an error. Error
    messages carry the byte offset. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing fields or non-objects. *)

val equal : t -> t -> bool
