open Tsens_relational
open Tsens_query

type catalog = (string * string list) list
type stats = (string * Count.t) list

type dp_config = {
  epsilon : float;
  threshold_fraction : float;
  ell : int;
  private_relation : string option;
}

let stats_of_database db =
  Database.fold (fun name rel acc -> (name, Relation.cardinality rel) :: acc) db []
  |> List.rev

(* Internal atom view shared by the datalog, SQL and Cq entry points:
   name, variables, optional source span. *)
type atom_view = {
  a_name : string;
  a_name_span : Srcspan.t option;
  a_vars : string list;
  a_span : Srcspan.t option;
}

let views_of_raw (raw : Parser.raw) =
  List.map
    (fun (a : Parser.raw_atom) ->
      {
        a_name = a.atom_name;
        a_name_span = Some a.atom_name_span;
        a_vars = List.map fst a.atom_vars;
        a_span = Some a.atom_span;
      })
    raw.raw_atoms

let views_of_cq cq =
  List.map
    (fun (a : Cq.atom) ->
      {
        a_name = a.relation;
        a_name_span = None;
        a_vars = Schema.attrs a.schema;
        a_span = None;
      })
    (Cq.atoms cq)

let sorted_uniq l = List.sort_uniq String.compare l

(* ------------------------------------------------------------------ *)
(* Structural checks on the atom list *)

(* TS004: a variable repeated inside one atom collapses its schema. *)
let duplicate_var_checks atoms =
  List.filter_map
    (fun a ->
      let dups =
        List.filter
          (fun v -> List.length (List.filter (String.equal v) a.a_vars) > 1)
          (sorted_uniq a.a_vars)
      in
      match dups with
      | [] -> None
      | _ ->
          Some
            (Diagnostic.error ~code:"TS004" ?span:a.a_span
               (Format.sprintf "atom %s repeats variable%s %s" a.a_name
                  (if List.length dups = 1 then "" else "s")
                  (String.concat ", " dups))))
    atoms

(* TS005: the paper's standing assumption — no self-joins. Flag every
   occurrence after the first, pointing at the repeated atom. *)
let self_join_checks atoms =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun a ->
      if Hashtbl.mem seen a.a_name then
        Some
          (Diagnostic.error ~code:"TS005" ?span:a.a_span
             (Format.sprintf
                "relation %s appears twice (self-joins are unsupported)"
                a.a_name))
      else begin
        Hashtbl.add seen a.a_name ();
        None
      end)
    atoms

(* TS002/TS003: atoms against the catalog. The engines bind atom
   variables to column names positionally-by-name ({!Cq.check_database}
   compares schemas as sets), so conformance means same attribute set. *)
let catalog_checks catalog atoms =
  List.filter_map
    (fun a ->
      match List.assoc_opt a.a_name catalog with
      | None ->
          Some
            (Diagnostic.error ~code:"TS002"
               ?span:(if a.a_name_span <> None then a.a_name_span else a.a_span)
               (Format.sprintf "unknown relation %s (not in the catalog)"
                  a.a_name))
      | Some cols ->
          if sorted_uniq a.a_vars = sorted_uniq cols then None
          else
            Some
              (Diagnostic.error ~code:"TS003" ?span:a.a_span
                 (Format.sprintf
                    "atom %s(%s) does not match the catalog schema %s(%s)"
                    a.a_name
                    (String.concat ", " a.a_vars)
                    a.a_name
                    (String.concat ", " cols))))
    atoms

(* TS006: constraints must select on variables some atom binds. *)
let unbound_constraint_checks atoms constraints =
  let vars = sorted_uniq (List.concat_map (fun a -> a.a_vars) atoms) in
  List.filter_map
    (fun ((c : Constraints.t), span) ->
      if List.exists (String.equal c.Constraints.var) vars then None
      else
        Some
          (Diagnostic.error ~code:"TS006" ?span
             (Format.asprintf
                "constraint %a selects on %s, which no atom binds"
                Constraints.pp c c.Constraints.var)))
    constraints

(* TS007: an explicit head must list exactly the body variables. *)
let head_checks (raw : Parser.raw) atoms =
  match raw.raw_head with
  | None -> []
  | Some (head_vars, span) ->
      let body = sorted_uniq (List.concat_map (fun a -> a.a_vars) atoms) in
      let head = sorted_uniq head_vars in
      let missing = List.filter (fun v -> not (List.mem v head)) body in
      let unbound = List.filter (fun v -> not (List.mem v body)) head in
      if missing = [] && unbound = [] then []
      else
        let part what = function
          | [] -> []
          | vs -> [ Format.sprintf "%s: %s" what (String.concat ", " vs) ]
        in
        [
          Diagnostic.error ~code:"TS007" ~span
            (Format.sprintf
               "head of %s must list exactly the body variables (%s)"
               raw.raw_name
               (String.concat "; "
                  (part "missing from the head" missing
                  @ part "not bound by any atom" unbound)));
        ]

(* ------------------------------------------------------------------ *)
(* Shape checks (need a well-formed Cq) *)

let names_of cq = String.concat ", " (Cq.relation_names cq)

(* TS008 + TS010 + TS009: connectivity, acyclicity with the stuck GYO
   remainder as witness, and the shape report predicting the algorithm. *)
let shape_checks ~span_of ~whole cq =
  let out = ref [] in
  let add d = out := d :: !out in
  let components = Cq.components cq in
  if List.length components > 1 then
    add
      (Diagnostic.warning ~code:"TS008" ?span:whole
         (Format.sprintf
            "query is disconnected (%d components: %s); the join is a cross \
             product and component counts multiply"
            (List.length components)
            (String.concat " | " (List.map names_of components))));
  (* Cyclic components: report the GYO remainder and the auto-GHD width. *)
  let widths =
    List.filter_map
      (fun comp ->
        match Gyo.decompose comp with
        | Gyo.Acyclic _ -> None
        | Gyo.Cyclic residual ->
            let width =
              match Ghd.auto comp with
              | g -> Some (Ghd.width g)
              | exception Errors.Schema_error _ -> None
            in
            let span =
              match Srcspan.join_all (List.filter_map span_of residual) with
              | Some s -> Some s
              | None -> whole
            in
            let width_part =
              match width with
              | Some w ->
                  Format.sprintf
                    "; auto-GHD width %d — TSens joins up to %d atoms per \
                     bag (intermediates up to O(n^%d))"
                    w w w
              | None -> ""
            in
            add
              (Diagnostic.warning ~code:"TS010" ?span
                 (Format.sprintf
                    "cyclic: GYO ear elimination is stuck on {%s} (no \
                     remaining atom is an ear)%s"
                    (String.concat ", " residual)
                    width_part));
            width)
      components
  in
  (* TS009: the predicted algorithm, decided entirely by static shape. *)
  let shape = Classify.classify cq in
  let message =
    match shape with
    | Classify.Path order ->
        Format.sprintf
          "shape: path (%s); predicted algorithm: Path_sens (Algorithm 1), \
           O(n log n)"
          (String.concat " - " order)
    | Classify.Doubly_acyclic ->
        "shape: doubly acyclic; predicted algorithm: TSens (Algorithm 2) \
         over the join tree — every botjoin/topjoin stays an acyclic join"
    | Classify.Acyclic ->
        let degree =
          List.fold_left
            (fun acc comp ->
              match Join_tree.of_cq comp with
              | Some jt -> max acc (Join_tree.max_degree jt)
              | None -> acc)
            0 components
        in
        Format.sprintf
          "shape: acyclic; predicted algorithm: TSens (Algorithm 2) over \
           the join tree, max tree degree d = %d (O(m d n^d log n))"
          degree
    | Classify.Cyclic ->
        let width = List.fold_left max 0 widths in
        if width > 0 then
          Format.sprintf
            "shape: cyclic; predicted algorithm: TSens over a GHD (auto \
             width %d), bags act as super-relations"
            width
        else
          "shape: cyclic; predicted algorithm: TSens over a GHD, bags act \
           as super-relations"
  in
  add (Diagnostic.info ~code:"TS009" ?span:whole message);
  List.rev !out

(* TS011: a conjunction of per-variable interval/equality constraints is
   unsatisfiable iff some variable's conjunction is — decided by the
   constraint layer's own witness search. *)
let satisfiability_checks constraints =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun ((c : Constraints.t), _) ->
      let var = c.Constraints.var in
      if Hashtbl.mem seen var then None
      else begin
        Hashtbl.add seen var ();
        let relevant =
          List.filter
            (fun ((c' : Constraints.t), _) ->
              String.equal c'.Constraints.var var)
            constraints
        in
        match Constraints.satisfying_value (List.map fst relevant) var [] with
        | Some _ -> None
        | None ->
            let span =
              Srcspan.join_all (List.filter_map snd relevant)
            in
            Some
              (Diagnostic.warning ~code:"TS011" ?span
                 (Format.asprintf
                    "constraints on %s are unsatisfiable (%a): the query is \
                     empty on every database and all sensitivities are 0"
                    var Constraints.pp_list (List.map fst relevant)))
      end)
    constraints

(* TS016: |Q(D)| <= product of |R_i|; if even the bound saturates the
   63-bit counter, warn that results may report as overflow. *)
let saturation_checks ~whole stats cq =
  let cards =
    List.map (fun r -> (r, List.assoc_opt r stats)) (Cq.relation_names cq)
  in
  if List.exists (fun (_, c) -> c = None) cards then []
  else
    let bound =
      List.fold_left
        (fun acc (_, c) -> Count.mul acc (Option.get c))
        Count.one cards
    in
    if not (Count.is_saturated bound) then []
    else
      [
        Diagnostic.warning ~code:"TS016" ?span:whole
          (Format.sprintf
             "join-count upper bound %s saturates the 63-bit counter; \
              counts and sensitivities may be reported as overflow"
             (String.concat " * "
                (List.map
                   (fun (r, c) ->
                     Format.sprintf "|%s|=%s" r (Count.to_string (Option.get c)))
                   cards)));
      ]

(* ------------------------------------------------------------------ *)
(* DP configuration (TS012–TS015) *)

let check_dp_config ?query ?span dp =
  let out = ref [] in
  let add code msg = out := Diagnostic.error ~code ?span msg :: !out in
  (* [not (> 0)] rather than [<= 0] so NaN is rejected too. *)
  if not (dp.epsilon > 0.0) then add "TS012" "non-positive epsilon";
  if not (dp.threshold_fraction > 0.0 && dp.threshold_fraction < 1.0) then
    add "TS013" "threshold_fraction must be in (0, 1)";
  if dp.ell < 1 then add "TS014" "ell must be at least 1";
  (match (dp.private_relation, query) with
  | Some r, Some cq when not (Cq.mem_relation cq r) ->
      add "TS015"
        (Format.sprintf "private relation %s is not an atom of the query" r)
  | _ -> ());
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Entry points *)

(* Checks that only need a well-formed Cq; shared by all three surfaces. *)
let cq_checks ~span_of ~whole ?stats ?dp cq constraints =
  shape_checks ~span_of ~whole cq
  @ satisfiability_checks constraints
  @ (match stats with
    | None -> []
    | Some stats -> saturation_checks ~whole stats cq)
  @ match dp with None -> [] | Some dp -> check_dp_config ~query:cq ?span:whole dp

let syntax_error ~input (msg, span) =
  Diagnostic.report
    [
      Diagnostic.error ~code:"TS001"
        ~span:(Option.value span ~default:(Srcspan.whole input))
        msg;
    ]

let check_source ?catalog ?stats ?dp input =
  match Parser.parse_raw input with
  | Error e -> syntax_error ~input e
  | Ok raw ->
      let atoms = views_of_raw raw in
      let whole = Some raw.raw_span in
      let constraints =
        List.map (fun (c, sp) -> (c, Some sp)) raw.Parser.raw_constraints
      in
      let structural = duplicate_var_checks atoms @ self_join_checks atoms in
      let surface =
        structural
        @ (match catalog with
          | None -> []
          | Some catalog -> catalog_checks catalog atoms)
        @ unbound_constraint_checks atoms constraints
        @ head_checks raw atoms
      in
      let span_of relation =
        List.find_map
          (fun a -> if String.equal a.a_name relation then a.a_span else None)
          atoms
      in
      let dp_only () =
        match dp with
        | None -> []
        | Some dp -> check_dp_config ?span:whole dp
      in
      let deeper =
        (* Structural errors make the Cq unconstructible; the DP config
           is still checked (sans private-relation membership). *)
        if structural <> [] then dp_only ()
        else
          match Parser.cq_of_raw raw with
          | cq -> cq_checks ~span_of ~whole ?stats ?dp cq constraints
          | exception Errors.Schema_error msg ->
              [ Diagnostic.error ~code:"TS001" ?span:whole msg ]
      in
      Diagnostic.report ~subject:raw.Parser.raw_name (surface @ deeper)

let check_sql ~catalog ?stats ?dp input =
  match Sql.parse_from input with
  | Error e -> syntax_error ~input e
  | Ok from ->
      let whole = Some (Srcspan.whole input) in
      let seen = Hashtbl.create 8 in
      let surface =
        List.concat_map
          (fun (item : Sql.from_item) ->
            let dup =
              if Hashtbl.mem seen item.Sql.table then
                [
                  Diagnostic.error ~code:"TS005" ~span:item.Sql.item_span
                    (Format.sprintf
                       "table %s appears twice (self-joins are unsupported)"
                       item.Sql.table);
                ]
              else begin
                Hashtbl.add seen item.Sql.table ();
                []
              end
            in
            let unknown =
              if List.mem_assoc item.Sql.table catalog then []
              else
                [
                  Diagnostic.error ~code:"TS002" ~span:item.Sql.item_span
                    (Format.sprintf "unknown table %s (not in the catalog)"
                       item.Sql.table);
                ]
            in
            dup @ unknown)
          from
      in
      let dp_only () =
        match dp with
        | None -> []
        | Some dp -> check_dp_config ?span:whole dp
      in
      if surface <> [] then Diagnostic.report (surface @ dp_only ())
      else begin
        match Sql.translate ~catalog input with
        | exception Sql.Sql_error msg ->
            Diagnostic.report
              (Diagnostic.error ~code:"TS001" ?span:whole msg :: dp_only ())
        | t ->
            let span_of relation =
              List.find_map
                (fun (item : Sql.from_item) ->
                  if String.equal item.Sql.table relation then
                    Some item.Sql.item_span
                  else None)
                from
            in
            let constraints =
              List.map (fun c -> (c, None)) t.Sql.constraints
            in
            Diagnostic.report
              ~subject:(Cq.name t.Sql.query)
              (cq_checks ~span_of ~whole ?stats ?dp t.Sql.query constraints)
      end

let check_cq ?catalog ?stats ?dp ?(constraints = []) cq =
  let atoms = views_of_cq cq in
  let constraints = List.map (fun c -> (c, None)) constraints in
  let surface =
    (match catalog with
    | None -> []
    | Some catalog -> catalog_checks catalog atoms)
    @ unbound_constraint_checks atoms constraints
  in
  Diagnostic.report ~subject:(Cq.name cq)
    (surface
    @ cq_checks ~span_of:(fun _ -> None) ~whole:None ?stats ?dp cq constraints)
