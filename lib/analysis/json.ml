type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_string v =
  let buf = Buffer.create 256 in
  let rec emit = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
        (* %.17g round-trips every float; trim the common integral case. *)
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.1f" f)
        else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | Str s ->
        Buffer.add_char buf '"';
        escape_into buf s;
        Buffer.add_char buf '"'
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            emit item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape_into buf k;
            Buffer.add_string buf "\":";
            emit item)
          fields;
        Buffer.add_char buf '}'
  in
  emit v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Bad of string

let of_string input =
  let n = String.length input in
  let pos = ref 0 in
  let fail fmt =
    Format.kasprintf (fun s -> raise (Bad (Printf.sprintf "%s at offset %d" s !pos))) fmt
  in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && input.[!pos] = c then incr pos
    else fail "expected %C" c
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub input !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match input.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then fail "unterminated escape";
            (match input.[!pos] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if !pos + 4 >= n then fail "truncated \\u escape";
                let hex = String.sub input (!pos + 1) 4 in
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some c -> c
                  | None -> fail "bad \\u escape %S" hex
                in
                (* Our emitter only escapes control characters; decode the
                   Latin-1 range and refuse the rest rather than guess. *)
                if code < 0x100 then Buffer.add_char buf (Char.chr code)
                else fail "unsupported \\u escape %S" hex;
                pos := !pos + 4
            | c -> fail "bad escape %C" c);
            incr pos;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while
      !pos < n
      &&
      match input.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      incr pos
    done;
    let text = String.sub input start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character %C" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member field = function
  | Obj fields -> List.assoc_opt field fields
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | List x, List y ->
      List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
           x y
  | _ -> false
