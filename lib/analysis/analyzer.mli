(** Static query analyzer: pre-execution diagnostics for queries, plans
    and DP configurations.

    Runs over a parsed query (datalog or SQL surface), an optional
    catalog/statistics snapshot of the database and an optional DP
    configuration — {e without executing anything} — and emits structured
    {!Diagnostic}s. The checks mirror the failure modes that the engines
    otherwise surface as exceptions at execution time, plus structural
    facts (the TSens complexity landscape is decided entirely by static
    query shape) and cost warnings.

    Diagnostic codes:

    {v
    code   sev      check
    TS001  error    syntax error / SQL translation failure
    TS002  error    unknown relation (atom not in the catalog)
    TS003  error    schema mismatch between an atom and the catalog
    TS004  error    duplicate variable within one atom
    TS005  error    self-join (a relation appears in two atoms)
    TS006  error    constraint on a variable not bound by any atom
    TS007  error    head/body variable mismatch
    TS008  warning  disconnected query (implicit cross product)
    TS009  info     shape report: predicted algorithm + complexity
    TS010  warning  cyclic query: stuck GYO remainder + auto-GHD width
    TS011  warning  unsatisfiable selection constraints (empty query)
    TS012  error    non-positive (or NaN) epsilon
    TS013  error    threshold_fraction outside (0, 1)
    TS014  error    ell < 1
    TS015  error    private relation is not an atom of the query
    TS016  warning  join count can saturate the 63-bit counter
    v} *)

open Tsens_relational
open Tsens_query

type catalog = (string * string list) list
(** Relation name → column names ({!Sql.catalog_of_database} produces
    one from a live database). *)

type stats = (string * Count.t) list
(** Relation name → bag cardinality, for the saturation bound (TS016). *)

type dp_config = {
  epsilon : float;
  threshold_fraction : float;
  ell : int;
  private_relation : string option;
}
(** Mirror of {!Tsens_dp.Mechanism.config} without the dp-layer
    dependency, so the mechanism can call down into this library. *)

val stats_of_database : Database.t -> stats

(** {1 Entry points} *)

val check_source :
  ?catalog:catalog ->
  ?stats:stats ->
  ?dp:dp_config ->
  string ->
  Diagnostic.report
(** Full pipeline over datalog source text: parse ({!Parser.parse_raw}),
    then every applicable check, with source spans on the diagnostics.
    Never raises — syntax errors come back as TS001. *)

val check_sql :
  catalog:catalog ->
  ?stats:stats ->
  ?dp:dp_config ->
  string ->
  Diagnostic.report
(** Same over the SQL surface. Duplicate/unknown tables are reported
    with the FROM-item spans; remaining translation failures (unknown
    columns, ambiguous references, …) surface as TS001. *)

val check_cq :
  ?catalog:catalog ->
  ?stats:stats ->
  ?dp:dp_config ->
  ?constraints:Constraints.t list ->
  Cq.t ->
  Diagnostic.report
(** Library entry for already-constructed queries (no spans): catalog
    conformance, shape, satisfiability, saturation and DP checks. *)

val check_dp_config : ?query:Cq.t -> ?span:Srcspan.t -> dp_config -> Diagnostic.t list
(** Just the DP-configuration checks (TS012–TS015), in that order — the
    pre-flight validation {!Tsens_dp.Mechanism} runs before spending
    privacy budget. *)
