(** Structured pre-execution diagnostics.

    A diagnostic is a stable code ([TS001]…), a severity, a
    human-readable message and an optional source span into the query
    text. Reports render two ways: {!pp_report} for terminals (with a
    caret excerpt when the source is available) and {!report_to_json} /
    {!report_of_json} for tooling — the JSON form round-trips exactly.

    Severity policy:
    - {e error}: the query/config cannot run — the engines would raise
      ([tsens_cli check] exits non-zero; the CI lint gate fails).
    - {e warning}: the query runs but something is probably not intended
      or will be expensive/lossy (cross products, cyclic shapes,
      unsatisfiable selections, counter saturation risk).
    - {e info}: neutral facts worth surfacing (the shape report). *)

open Tsens_query

type severity = Error | Warning | Info

type t = {
  code : string;  (** stable, [TS]-prefixed — see {!Analyzer} for the table *)
  severity : severity;
  message : string;
  span : Srcspan.t option;  (** into the query source text, when known *)
}

val make : ?span:Srcspan.t -> code:string -> severity -> string -> t
val error : ?span:Srcspan.t -> code:string -> string -> t
val warning : ?span:Srcspan.t -> code:string -> string -> t
val info : ?span:Srcspan.t -> code:string -> string -> t

val severity_to_string : severity -> string
val severity_of_string : string -> severity option
val equal : t -> t -> bool

type report = {
  subject : string option;  (** query name, when one was parsed *)
  items : t list;
}

val report : ?subject:string -> t list -> report
(** Sorts items by severity (errors first), then span, then code. *)

val errors : report -> t list
val warnings : report -> t list
val has_errors : report -> bool

val find_code : string -> report -> t list
(** All diagnostics with the given code. *)

val pp : Format.formatter -> t -> unit
(** One line: [error[TS005] at 12-17: message] (offsets when spanned). *)

val pp_report : ?source:string -> Format.formatter -> report -> unit
(** All diagnostics plus a summary line. With [source], spans render as
    [line:col] and each spanned diagnostic shows its source line with a
    caret underline. *)

val report_to_json : report -> string
val report_of_json : string -> (report, string) result
(** [report_of_json (report_to_json r)] succeeds and equals [r]. *)

val equal_report : report -> report -> bool
