(* A fixed pool of worker domains behind fork-join primitives.

   Shape: one global task queue under one mutex/condition pair. A
   parallel region enqueues its chunk tasks and the calling domain then
   drains the queue alongside the workers until the region's pending
   count reaches zero — the coordinator is never parked while work it
   could do sits queued. Each task is wrapped so that it records the
   region's first exception instead of unwinding a worker, and the
   region's join re-raises it with the original backtrace.

   Determinism: the primitives assign chunk results to slots indexed by
   chunk position and merge in index order, so scheduling never leaks
   into results. Nested calls (a task calling back into the pool) run
   sequentially in their own domain via a domain-local flag — the pool
   cannot deadlock on re-entrant use, and operators stay composable. *)

(* ------------------------------------------------------------------ *)
(* Sizing *)

let clamp_jobs n = if n < 1 then 1 else if n > 64 then 64 else n

let env_jobs () =
  match Sys.getenv_opt "TSENS_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some (clamp_jobs n)
      | Some _ | None -> None)

let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> clamp_jobs (Domain.recommended_domain_count ())

let requested : int option ref = ref None
let jobs () = match !requested with Some n -> n | None -> default_jobs ()
let set_jobs n = requested := Some (clamp_jobs n)

let with_jobs j f =
  let saved = !requested in
  set_jobs j;
  Fun.protect ~finally:(fun () -> requested := saved) f

let cutoff = ref 4096
let set_sequential_cutoff n = cutoff := max 1 n
let sequential_cutoff () = !cutoff

(* ------------------------------------------------------------------ *)
(* Pool *)

let mutex = Mutex.create ()
let cond = Condition.create ()
let queue : (unit -> unit) Queue.t = Queue.create ()
let workers : unit Domain.t list ref = ref []
let stopping = ref false

(* True while this domain is executing a region task; parallel calls
   made under it run sequentially (the nested-call guard). Workers set
   it once and forever — they only ever run tasks. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let rec worker_loop () =
  let task =
    Mutex.protect mutex (fun () ->
        while Queue.is_empty queue && not !stopping do
          Condition.wait cond mutex
        done;
        Queue.take_opt queue)
  in
  match task with
  | None -> ()
  | Some t ->
      t ();
      worker_loop ()

let worker () =
  Domain.DLS.set in_task true;
  worker_loop ()

(* Callers hold no lock; sizing races are benign (at worst one extra
   check under the mutex). *)
let ensure_workers n =
  Mutex.protect mutex (fun () ->
      if not !stopping then
        for _ = List.length !workers + 1 to n do
          workers := Domain.spawn worker :: !workers
        done)

let shutdown () =
  let ws =
    Mutex.protect mutex (fun () ->
        stopping := true;
        Condition.broadcast cond;
        let ws = !workers in
        workers := [];
        ws)
  in
  List.iter Domain.join ws;
  Mutex.protect mutex (fun () -> stopping := false)

let () = at_exit shutdown

(* ------------------------------------------------------------------ *)
(* Regions *)

type region = {
  mutable pending : int;
  mutable failed : (exn * Printexc.raw_backtrace) option;
}

let sequential tasks = Array.iter (fun f -> f ()) tasks

let run_tasks tasks =
  let n = Array.length tasks in
  if n = 0 then ()
  else if n = 1 then tasks.(0) ()
  else if jobs () <= 1 || Domain.DLS.get in_task || !stopping then
    sequential tasks
  else begin
    ensure_workers (jobs () - 1);
    let region = { pending = n; failed = None } in
    let wrap f () =
      (try f ()
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.protect mutex (fun () ->
             if region.failed = None then region.failed <- Some (e, bt)));
      Mutex.protect mutex (fun () ->
          region.pending <- region.pending - 1;
          if region.pending = 0 then Condition.broadcast cond)
    in
    Mutex.protect mutex (fun () ->
        Array.iter (fun f -> Queue.add (wrap f) queue) tasks;
        Condition.broadcast cond);
    Domain.DLS.set in_task true;
    let rec drive () =
      let action =
        Mutex.protect mutex (fun () ->
            if region.pending = 0 then `Done
            else
              match Queue.take_opt queue with
              | Some t -> `Run t
              | None ->
                  Condition.wait cond mutex;
                  `Again)
      in
      match action with
      | `Done -> ()
      | `Run t ->
          t ();
          drive ()
      | `Again -> drive ()
    in
    drive ();
    Domain.DLS.set in_task false;
    match region.failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let pays_off n =
  n >= !cutoff && jobs () > 1 && not (Domain.DLS.get in_task)

(* A few chunks per domain smooths uneven per-item cost without drowning
   the queue in tiny tasks. *)
let default_chunks n =
  let j = jobs () in
  if j <= 1 then 1 else min n (4 * j)

let parallel_for ?chunks lo hi body =
  let n = hi - lo in
  if n <= 0 then ()
  else
    let k =
      match chunks with
      | Some c -> max 1 (min n c)
      | None -> default_chunks n
    in
    if k <= 1 then
      for i = lo to hi - 1 do
        body i
      done
    else
      run_tasks
        (Array.init k (fun c ->
             let start = lo + (n * c / k) and stop = lo + (n * (c + 1) / k) in
             fun () ->
               for i = start to stop - 1 do
                 body i
               done))

let parallel_map f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else
    let k = default_chunks n in
    if k <= 1 then Array.map f arr
    else begin
      let parts = Array.make k [||] in
      run_tasks
        (Array.init k (fun c ->
             let start = n * c / k and stop = n * (c + 1) / k in
             fun () ->
               parts.(c) <- Array.init (stop - start) (fun i -> f arr.(start + i))));
      Array.concat (Array.to_list parts)
    end

let parallel_map_list f l = Array.to_list (parallel_map f (Array.of_list l))
