(** Multicore execution: a process-wide pool of worker domains and
    fork-join parallel primitives with deterministic merge order.

    The pool is a fixed set of [Domain.spawn] workers created lazily on
    the first parallel region and joined at process exit. A parallel
    region splits its work into chunks, queues them, lets the calling
    domain execute chunks alongside the workers, and returns once every
    chunk has finished. Callers never observe scheduling: results are
    merged in chunk-index order, so every primitive returns exactly what
    its sequential counterpart would.

    Concurrency contract:
    - With [jobs () = 1] (the default when the machine has one core, or
      after [set_jobs 1]) every primitive runs sequentially in the
      calling domain — the pool is bypassed entirely.
    - A parallel call made from inside a region task (any nesting) runs
      sequentially in its own domain; the pool never deadlocks on
      re-entrant use.
    - If a task raises, the remaining tasks of the region still run; the
      first exception (with its backtrace) is re-raised at the join in
      the calling domain. *)

(** {1 Sizing} *)

val default_jobs : unit -> int
(** The pool size used unless {!set_jobs} overrides it: the
    [TSENS_JOBS] environment variable if set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. Clamped to
    [\[1, 64\]]. *)

val jobs : unit -> int
(** The current pool size (coordinating domain included). *)

val set_jobs : int -> unit
(** Override the pool size, clamped to [\[1, 64\]]. [set_jobs 1]
    disables parallel execution; it does not tear down already-spawned
    workers (they idle). *)

val with_jobs : int -> (unit -> 'a) -> 'a
(** [with_jobs j f] runs [f] with the pool sized to [j], restoring the
    previous setting afterwards (also on exceptions). Intended for tests
    and benchmarks that sweep job counts. *)

val pays_off : int -> bool
(** [pays_off n] decides whether splitting [n] cheap per-item work units
    is worth a parallel region: true iff [jobs () > 1], the caller is
    not already inside a region, and [n] reaches the sequential cutoff
    (see {!set_sequential_cutoff}). Work whose items are individually
    expensive (e.g. whole query evaluations) should ignore this and
    call the primitives directly — they fall back to sequential
    execution on their own when parallelism is unavailable. *)

val set_sequential_cutoff : int -> unit
(** Lower bound on [n] for {!pays_off} (default 4096; clamped to
    [>= 1]). Tests lower it to force the partitioned code paths onto
    small inputs. *)

val sequential_cutoff : unit -> int

(** {1 Fork-join primitives} *)

val run_tasks : (unit -> unit) array -> unit
(** Run every task to completion, on the pool when available. Tasks must
    synchronize through their own disjoint state; the join provides the
    happens-before edge that makes their writes visible to the caller. *)

val parallel_for : ?chunks:int -> int -> int -> (int -> unit) -> unit
(** [parallel_for lo hi body] runs [body i] for [lo <= i < hi], split
    into at most [chunks] (default: a small multiple of [jobs ()])
    contiguous ranges. Iterations must be independent. *)

val parallel_map : ('a -> 'b) -> 'a array -> 'b array
(** Chunked map; the result is element-for-element [Array.map f arr]
    regardless of scheduling. *)

val parallel_map_list : ('a -> 'b) -> 'a list -> 'b list
(** [List.map f l], computing elements on the pool. Suits small lists of
    expensive items (per-relation fan-outs): each element becomes its
    own task once the list is shorter than the chunk budget. *)

(** {1 Lifecycle} *)

val shutdown : unit -> unit
(** Signal the workers to exit and join them. Called automatically at
    process exit; safe to call twice. Subsequent parallel regions
    respawn the pool. *)
