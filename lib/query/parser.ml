open Tsens_relational

exception Parse_error of string

(* Internal error carrier: a message plus the span it points at. The
   public surfaces re-raise it either as [Parse_error] (with the position
   rendered into the message) or return it as data ([parse_raw]) so the
   static analyzer can attach a source span to the diagnostic. *)
exception Err of string * Srcspan.t option

let err ?span fmt = Format.kasprintf (fun s -> raise (Err (s, span))) fmt

type token =
  | Ident of string
  | IntLit of int
  | StrLit of string
  | Lparen
  | Rparen
  | Comma
  | Turnstile
  | Dot
  | Star
  | Cmp of Constraints.op

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  let fail ?(stop = !i + 1) fmt =
    err ~span:(Srcspan.make !i (min stop n)) fmt
  in
  (* [push1 t] is a single-character token at the cursor. *)
  let push ~start ~stop t = tokens := (t, Srcspan.make start stop) :: !tokens in
  let push1 t =
    push ~start:!i ~stop:(!i + 1) t;
    incr i
  in
  let push2 t =
    push ~start:!i ~stop:(!i + 2) t;
    i := !i + 2
  in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '%' then
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    else if c = '(' then push1 Lparen
    else if c = ')' then push1 Rparen
    else if c = ',' then push1 Comma
    else if c = '.' then push1 Dot
    else if c = '*' then push1 Star
    else if c = '=' then push1 (Cmp Constraints.Eq)
    else if c = '!' then
      if !i + 1 < n && input.[!i + 1] = '=' then push2 (Cmp Constraints.Neq)
      else fail "expected '=' after '!'"
    else if c = '<' then
      if !i + 1 < n && input.[!i + 1] = '=' then push2 (Cmp Constraints.Le)
      else push1 (Cmp Constraints.Lt)
    else if c = '>' then
      if !i + 1 < n && input.[!i + 1] = '=' then push2 (Cmp Constraints.Ge)
      else push1 (Cmp Constraints.Gt)
    else if c = ':' then
      if !i + 1 < n && input.[!i + 1] = '-' then push2 Turnstile
      else fail "expected '-' after ':'"
    else if c = '\'' then begin
      (* quoted string literal, no escapes *)
      let start = !i + 1 in
      let j = ref start in
      while !j < n && input.[!j] <> '\'' do
        incr j
      done;
      if !j >= n then fail ~stop:n "unterminated string literal";
      push ~start:(start - 1) ~stop:(!j + 1)
        (StrLit (String.sub input start (!j - start)));
      i := !j + 1
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit input.[!i + 1])
    then begin
      let start = !i in
      incr i;
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      push ~start ~stop:!i
        (IntLit (int_of_string (String.sub input start (!i - start))))
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      push ~start ~stop:!i (Ident (String.sub input start (!i - start)))
    end
    else fail "unexpected character %C" c
  done;
  List.rev !tokens

type state = { mutable rest : (token * Srcspan.t) list; eof : Srcspan.t }

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "identifier %s" s
  | IntLit n -> Format.fprintf ppf "integer %d" n
  | StrLit s -> Format.fprintf ppf "string %S" s
  | Lparen -> Format.pp_print_string ppf "'('"
  | Rparen -> Format.pp_print_string ppf "')'"
  | Comma -> Format.pp_print_string ppf "','"
  | Turnstile -> Format.pp_print_string ppf "':-'"
  | Dot -> Format.pp_print_string ppf "'.'"
  | Star -> Format.pp_print_string ppf "'*'"
  | Cmp op -> Format.fprintf ppf "'%a'" Constraints.pp_op op

let fail_token st expected =
  match st.rest with
  | [] -> err ~span:st.eof "expected %s, got end of input" expected
  | (t, span) :: _ -> err ~span "expected %s, got %a" expected pp_token t

let eat st expected_desc pred =
  match st.rest with
  | (t, span) :: rest when pred t ->
      st.rest <- rest;
      (t, span)
  | _ -> fail_token st expected_desc

(* Direct pattern match — no catch-all [assert false] left to reach on
   malformed input. *)
let eat_ident st =
  match st.rest with
  | (Ident s, span) :: rest ->
      st.rest <- rest;
      (s, span)
  | _ -> fail_token st "identifier"

let parse_vars st =
  let rec loop acc =
    let v = eat_ident st in
    match st.rest with
    | (Comma, _) :: rest ->
        st.rest <- rest;
        loop (v :: acc)
    | _ -> List.rev (v :: acc)
  in
  loop []

type raw_atom = {
  atom_name : string;
  atom_name_span : Srcspan.t;
  atom_vars : (string * Srcspan.t) list;
  atom_span : Srcspan.t;
}

type raw = {
  raw_name : string;
  raw_head : (string list * Srcspan.t) option;
  raw_atoms : raw_atom list;
  raw_constraints : (Constraints.t * Srcspan.t) list;
  raw_span : Srcspan.t;
}

(* head ::= ident [ "(" ( "*" | vars ) ")" ] *)
let parse_head st =
  let name, _ = eat_ident st in
  match st.rest with
  | (Lparen, _) :: (Star, _) :: (Rparen, _) :: rest ->
      st.rest <- rest;
      (name, None)
  | (Lparen, lp) :: rest ->
      st.rest <- rest;
      let vars = parse_vars st in
      let _, rp = eat st "')'" (function Rparen -> true | _ -> false) in
      (name, Some (List.map fst vars, Srcspan.join lp rp))
  | _ -> (name, None)

let parse_literal st =
  match st.rest with
  | (IntLit n, _) :: rest ->
      st.rest <- rest;
      Value.int n
  | (StrLit s, _) :: rest ->
      st.rest <- rest;
      Value.str s
  | (Ident "true", _) :: rest ->
      st.rest <- rest;
      Value.bool true
  | (Ident "false", _) :: rest ->
      st.rest <- rest;
      Value.bool false
  | _ -> fail_token st "literal (integer, 'string', true or false)"

(* item ::= ident "(" vars ")"  |  ident op literal *)
let parse_item st =
  let name, name_span = eat_ident st in
  match st.rest with
  | (Lparen, _) :: rest ->
      st.rest <- rest;
      let vars = parse_vars st in
      let _, rp = eat st "')'" (function Rparen -> true | _ -> false) in
      `Atom
        {
          atom_name = name;
          atom_name_span = name_span;
          atom_vars = vars;
          atom_span = Srcspan.join name_span rp;
        }
  | (Cmp op, _) :: rest ->
      st.rest <- rest;
      let value = parse_literal st in
      (* The literal's span ends where the parser now stands. *)
      let stop =
        match st.rest with
        | (_, next) :: _ -> next.Srcspan.start_ofs
        | [] -> st.eof.Srcspan.start_ofs
      in
      `Constraint
        ( { Constraints.var = name; op; value },
          Srcspan.join name_span (Srcspan.make stop stop) )
  | _ -> fail_token st "'(' or a comparison operator"

let parse_raw input =
  match
    let st =
      { rest = tokenize input; eof = Srcspan.point (String.length input) }
    in
    let name, head = parse_head st in
    let (_ : token * Srcspan.t) =
      eat st "':-'" (function Turnstile -> true | _ -> false)
    in
    let rec items acc =
      let item = parse_item st in
      match st.rest with
      | (Comma, _) :: rest ->
          st.rest <- rest;
          items (item :: acc)
      | _ -> List.rev (item :: acc)
    in
    let body = items [] in
    (match st.rest with
    | [] -> ()
    | [ (Dot, _) ] -> ()
    | _ -> fail_token st "'.' or end of input");
    let raw_atoms =
      List.filter_map (function `Atom a -> Some a | `Constraint _ -> None) body
    in
    let raw_constraints =
      List.filter_map
        (function `Constraint c -> Some c | `Atom _ -> None)
        body
    in
    if raw_atoms = [] then
      err ~span:(Srcspan.whole input) "query body has no atoms";
    {
      raw_name = name;
      raw_head = head;
      raw_atoms;
      raw_constraints;
      raw_span = Srcspan.whole input;
    }
  with
  | raw -> Ok raw
  | exception Err (msg, span) -> Error (msg, span)

let cq_of_raw raw =
  Cq.make ~name:raw.raw_name
    (List.map (fun a -> (a.atom_name, List.map fst a.atom_vars)) raw.raw_atoms)

let parse_full input =
  match parse_raw input with
  | Error (msg, None) -> raise (Parse_error msg)
  | Error (msg, Some span) ->
      raise
        (Parse_error
           (Format.asprintf "%s at %a" msg (Srcspan.pp_in input) span))
  | Ok raw ->
      let cq = cq_of_raw raw in
      let constraints = List.map fst raw.raw_constraints in
      Constraints.check cq constraints;
      (match raw.raw_head with
      | None -> ()
      | Some (vars, _) ->
          let body_vars = List.sort String.compare (Cq.vars cq) in
          let head_sorted = List.sort String.compare vars in
          if body_vars <> head_sorted then
            Errors.schema_errorf
              "head of %s must list exactly the body variables (%s), got (%s)"
              raw.raw_name
              (String.concat ", " body_vars)
              (String.concat ", " head_sorted));
      (cq, constraints)

let parse input =
  match parse_full input with
  | cq, [] -> cq
  | cq, constraints ->
      Errors.schema_errorf
        "query %s has selection constraints (%s); use Parser.parse_full"
        (Cq.name cq)
        (Format.asprintf "%a" Constraints.pp_list constraints)

let parse_opt input =
  match parse input with
  | cq -> Some cq
  | exception (Parse_error _ | Errors.Schema_error _) -> None
