type t = { start_ofs : int; stop_ofs : int }

let make start_ofs stop_ofs =
  if start_ofs < 0 || stop_ofs < start_ofs then
    invalid_arg
      (Printf.sprintf "Srcspan.make: invalid span %d-%d" start_ofs stop_ofs);
  { start_ofs; stop_ofs }

let point ofs = make ofs ofs

let join a b =
  { start_ofs = min a.start_ofs b.start_ofs; stop_ofs = max a.stop_ofs b.stop_ofs }

let join_all = function
  | [] -> None
  | s :: rest -> Some (List.fold_left join s rest)

let whole src = { start_ofs = 0; stop_ofs = String.length src }
let length s = s.stop_ofs - s.start_ofs
let equal a b = a.start_ofs = b.start_ofs && a.stop_ofs = b.stop_ofs

let compare a b =
  match Int.compare a.start_ofs b.start_ofs with
  | 0 -> Int.compare a.stop_ofs b.stop_ofs
  | c -> c

let line_col src ofs =
  let ofs = min (max 0 ofs) (String.length src) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to ofs - 1 do
    if src.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  (!line, ofs - !bol + 1)

let extract src s =
  let n = String.length src in
  let start = min (max 0 s.start_ofs) n in
  let stop = min (max start s.stop_ofs) n in
  String.sub src start (stop - start)

let pp ppf s = Format.fprintf ppf "%d-%d" s.start_ofs s.stop_ofs

let pp_in src ppf s =
  let line, col = line_col src s.start_ofs in
  Format.fprintf ppf "%d:%d" line col
