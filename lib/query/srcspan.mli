(** Byte spans into a query's source text.

    Both surface parsers (datalog and SQL) attach a span to every token
    and propagate them to atoms, constraints and error messages, so that
    static diagnostics ({!module:Tsens_analysis} and the CLI's [check]
    subcommand) can point at the offending characters instead of merely
    naming a relation. Offsets are 0-based byte positions; [stop_ofs] is
    exclusive, so the spanned text is [String.sub src start_ofs (stop_ofs
    - start_ofs)]. *)

type t = { start_ofs : int; stop_ofs : int }

val make : int -> int -> t
(** [make start stop]. Raises [Invalid_argument] if [start < 0] or
    [stop < start]. *)

val point : int -> t
(** The empty span at one offset — end-of-input errors. *)

val join : t -> t -> t
(** Smallest span covering both arguments. *)

val join_all : t list -> t option
(** Smallest span covering every element; [None] on the empty list. *)

val whole : string -> t
(** The span of an entire source string. *)

val length : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int

val line_col : string -> int -> int * int
(** [line_col src ofs] is the 1-based (line, column) of a byte offset in
    [src]; offsets past the end report the position just after the last
    character. *)

val extract : string -> t -> string
(** The spanned substring, clamped to the source bounds. *)

val pp : Format.formatter -> t -> unit
(** Renders as [12-17] (byte offsets). *)

val pp_in : string -> Format.formatter -> t -> unit
(** Renders as [line:col] within the given source. *)
