(** A SQL front end for counting queries.

    Translates the paper's query class from its SQL surface form into the
    internal conjunctive-query representation:

    {v
    SELECT COUNT( * )
    FROM Customer c, Orders o, Lineitem l
    WHERE c.CK = o.CK AND o.OK = l.OK AND c.NK = 7
    v}

    Equality conditions between columns induce the join variables (a
    union–find over column references — natural-join semantics are *not*
    assumed: only equated columns join); comparisons against literals
    become {!Constraints} (the Section 5.4 selections). Keywords are
    case-insensitive; aliases are optional ([AS] or juxtaposition); only
    [COUNT( * )] heads are accepted, mirroring the paper's query class; a
    table may appear once ([FROM R a, R b] is a self-join, which the
    algorithms do not support).

    Because SQL references columns while CQs share variables by name, the
    translator needs the relations' column lists — the [catalog]. *)

open Tsens_relational

exception Sql_error of string
(** Messages carry the offending position ([line:col]) when the failure
    maps to a source location. *)

val catalog_of_database : Database.t -> (string * string list) list
(** Relation name → column names, from a live database. *)

type from_item = {
  table : string;
  alias : string;  (** the table name itself when no alias is given *)
  item_span : Srcspan.t;
}

val parse_from : string -> (from_item list, string * Srcspan.t option) result
(** Parses the query's grammar and returns the FROM items with their
    source spans, without resolving anything against a catalog. The
    static analyzer uses this to report duplicate/unknown tables with
    positions before attempting the full {!translate}. The error case is
    a syntax error with its span. *)

type translation = {
  query : Cq.t;  (** atoms named after the tables, columns renamed to
                     join variables *)
  constraints : Constraints.t list;  (** WHERE comparisons vs literals *)
  renamings : (string * (Attr.t * Attr.t) list) list;
      (** per table, column → variable (identity pairs omitted) *)
}

val translate :
  catalog:(string * string list) list -> string -> translation
(** Raises {!Sql_error} on syntax errors, unknown tables/columns,
    ambiguous bare column references, or self-joins. Join variables keep
    the column name when that is unambiguous; otherwise they are prefixed
    with the alias, and the database must be passed through {!bind}
    before querying. *)

val bind : translation -> Database.t -> Database.t
(** Renames the mentioned relations' columns to the translation's join
    variables, so the result matches [translation.query]. Relations not
    mentioned by the query are untouched. *)
