open Tsens_relational
module SMap = Map.Make (String)

type t = {
  original : Cq.t;
  bag_query : Cq.t;
  tree : Join_tree.t;
  member_map : string list SMap.t; (* bag -> atoms *)
  owner_map : string SMap.t; (* atom -> bag *)
}

let bag_schema cq member_atoms =
  List.fold_left
    (fun acc atom -> Schema.union acc (Cq.schema_of cq atom))
    Schema.empty member_atoms

let check_partition cq bags =
  let owner = Hashtbl.create 16 in
  List.iter
    (fun (bag, members) ->
      if members = [] then Errors.schema_errorf "GHD bag %s is empty" bag;
      List.iter
        (fun atom ->
          if not (Cq.mem_relation cq atom) then
            Errors.schema_errorf "GHD bag %s contains unknown atom %s" bag atom;
          if Hashtbl.mem owner atom then
            Errors.schema_errorf "atom %s belongs to two GHD bags" atom;
          Hashtbl.add owner atom bag)
        members)
    bags;
  List.iter
    (fun atom ->
      if not (Hashtbl.mem owner atom) then
        Errors.schema_errorf "atom %s is in no GHD bag" atom)
    (Cq.relation_names cq)

let make cq ~bags ~root ~parents =
  check_partition cq bags;
  let bag_query =
    Cq.make
      ~name:(Cq.name cq ^ "_bags")
      (List.map
         (fun (bag, members) ->
           (bag, Schema.attrs (bag_schema cq members)))
         bags)
  in
  let tree = Join_tree.make bag_query ~root ~parents in
  let member_map =
    List.fold_left (fun m (bag, members) -> SMap.add bag members m) SMap.empty bags
  in
  let owner_map =
    List.fold_left
      (fun m (bag, members) ->
        List.fold_left (fun m atom -> SMap.add atom bag m) m members)
      SMap.empty bags
  in
  { original = cq; bag_query; tree; member_map; owner_map }

let of_join_tree jt =
  let cq = Join_tree.cq jt in
  let bags = List.map (fun r -> (r, [ r ])) (Cq.relation_names cq) in
  let parents =
    List.filter_map
      (fun r ->
        match Join_tree.parent jt r with
        | Some p -> Some (r, p)
        | None -> None)
      (Join_tree.nodes jt)
  in
  make cq ~bags ~root:(Join_tree.root jt) ~parents

(* Greedy merge: the working state is a list of (bag_members, bag_schema);
   bag-level acyclicity is retested after every merge. *)
let auto cq =
  if not (Cq.is_connected cq) then
    Errors.schema_errorf
      "Ghd.auto: CQ %s is disconnected; decompose components separately"
      (Cq.name cq);
  let initial =
    List.map (fun a -> ([ a.Cq.relation ], a.Cq.schema)) (Cq.atoms cq)
  in
  let bag_name members = String.concat "+" members in
  let to_bag_cq state =
    Cq.make
      ~name:(Cq.name cq ^ "_bags")
      (List.map
         (fun (members, schema) -> (bag_name members, Schema.attrs schema))
         state)
  in
  let rec merge_until_acyclic state =
    if Gyo.is_acyclic (to_bag_cq state) then state
    else begin
      (* Best pair = smallest merged schema among attribute-sharing pairs
         (then most shared attributes, then first in order). Minimizing
         the union keeps bags narrow: on the 4-cycle this recovers the
         paper's width-2 decomposition {R1R2, R3R4}. *)
      let best = ref None in
      List.iteri
        (fun i (_, si) ->
          List.iteri
            (fun j (_, sj) ->
              if j > i then begin
                let shared = Schema.arity (Schema.inter si sj) in
                let union = Schema.arity (Schema.union si sj) in
                match !best with
                | _ when shared = 0 -> ()
                | Some (_, _, (u, s)) when (u, -s) <= (union, -shared) -> ()
                | _ -> best := Some (i, j, (union, shared))
              end)
            state)
        state;
      match !best with
      | None ->
          (* Disconnected cyclic residue cannot happen: a cyclic bag-level
             query always has two bags sharing an attribute. Name the
             stuck state instead of aborting so a violated invariant is
             diagnosable. *)
          Errors.schema_errorf
            "Ghd.auto: no attribute-sharing pair among cyclic bags %s of CQ \
             %s"
            (String.concat ", "
               (List.map (fun (members, _) -> bag_name members) state))
            (Cq.name cq)
      | Some (i, j, _) ->
          let mi, si = List.nth state i and mj, sj = List.nth state j in
          let merged = (mi @ mj, Schema.union si sj) in
          let state =
            merged
            :: List.filteri (fun k _ -> k <> i && k <> j) state
          in
          merge_until_acyclic state
    end
  in
  let state = merge_until_acyclic initial in
  let bags = List.map (fun (members, _) -> (bag_name members, members)) state in
  let bag_query = to_bag_cq state in
  let tree = Join_tree.of_cq_exn bag_query in
  let parents =
    List.filter_map
      (fun b ->
        match Join_tree.parent tree b with Some p -> Some (b, p) | None -> None)
      (Join_tree.nodes tree)
  in
  make cq ~bags ~root:(Join_tree.root tree) ~parents

let cq g = g.original
let bag_cq g = g.bag_query
let bag_tree g = g.tree
let bag_names g = Cq.relation_names g.bag_query

let members g bag =
  match SMap.find_opt bag g.member_map with
  | Some m -> m
  | None -> Errors.schema_errorf "unknown GHD bag %s" bag

let bag_of g atom =
  match SMap.find_opt atom g.owner_map with
  | Some b -> b
  | None -> Errors.schema_errorf "atom %s is in no GHD bag" atom

let width g =
  SMap.fold (fun _ m acc -> max acc (List.length m)) g.member_map 0

let pp ppf g =
  Format.fprintf ppf "@[<v>tree: %a@,width: %d@]" Join_tree.pp g.tree (width g)
