(** Datalog-syntax parser for conjunctive queries with selections.

    Accepted grammar (whitespace-insensitive, [%] starts a line comment):

    {v
    query  ::= head ":-" item ("," item)* "."?
    head   ::= ident "(" vars ")" | ident "(" "*" ")" | ident
    item   ::= atom | constraint
    atom   ::= ident "(" vars ")"
    vars   ::= ident ("," ident)*
    constraint ::= ident op literal
    op     ::= "=" | "!=" | "<" | "<=" | ">" | ">="
    literal ::= integer | 'string' | true | false
    v}

    The head is checked against the body atoms: a full CQ must list every
    body variable (in any order); ["*"] or a bare name accepts them all.
    Constraints are the paper's Section 5.4 selections — tuples failing
    them get sensitivity 0; feed them to the engines via
    {!Constraints.selection}.

    Two surfaces: {!parse_full} / {!parse} validate eagerly and raise;
    {!parse_raw} stops after the grammar and keeps source spans, so the
    static analyzer can turn the same defects (self-joins, head/body
    mismatches, unknown constraint variables) into positioned diagnostics
    instead of exceptions. *)

exception Parse_error of string
(** Carries a message with the offending position ([line:col]). *)

(** {1 Raw surface syntax (spans preserved, nothing validated)} *)

type raw_atom = {
  atom_name : string;
  atom_name_span : Srcspan.t;
  atom_vars : (string * Srcspan.t) list;
  atom_span : Srcspan.t;  (** name through closing parenthesis *)
}

type raw = {
  raw_name : string;
  raw_head : (string list * Srcspan.t) option;
      (** explicit head variable list; [None] for [( * )] or a bare head *)
  raw_atoms : raw_atom list;
  raw_constraints : (Constraints.t * Srcspan.t) list;
  raw_span : Srcspan.t;
}

val parse_raw : string -> (raw, string * Srcspan.t option) result
(** Grammar only: succeeds on any syntactically well-formed query, even
    one with self-joins, duplicate attributes or a mismatched head. The
    error case carries the message and the offending span. *)

val cq_of_raw : raw -> Cq.t
(** Builds the conjunctive query, raising
    {!Tsens_relational.Errors.Schema_error} exactly where {!Cq.make}
    does (self-joins, duplicate attributes, empty body). *)

(** {1 Validating surface} *)

val parse_full : string -> Cq.t * Constraints.t list
(** Raises {!Parse_error} on syntax errors,
    {!Tsens_relational.Errors.Schema_error} on semantic ones (self-joins,
    head/body variable mismatch, constraints on unknown variables). *)

val parse : string -> Cq.t
(** Like {!parse_full} but raises {!Errors.Schema_error} if the query has
    constraints — for callers that cannot apply a selection. *)

val parse_opt : string -> Cq.t option
