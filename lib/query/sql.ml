open Tsens_relational

exception Sql_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Sql_error s)) fmt

(* Positioned failure: the span is rendered into the [Sql_error] message
   and also kept by [parse_from] for the static analyzer. *)
exception Err of string * Srcspan.t option

let err ?span fmt = Format.kasprintf (fun s -> raise (Err (s, span))) fmt

let catalog_of_database db =
  Database.fold
    (fun name rel acc -> (name, Schema.attrs (Relation.schema rel)) :: acc)
    db []
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Lexer *)

type token =
  | Word of string (* identifier or keyword, original case *)
  | Int of int
  | Str of string
  | Punct of string (* ( ) , . ; * and comparison operators *)

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  let lex_fail ?(stop = !i + 1) fmt =
    err ~span:(Srcspan.make !i (min stop n)) fmt
  in
  let push ~start ~stop t = tokens := (t, Srcspan.make start stop) :: !tokens in
  let push1 t =
    push ~start:!i ~stop:(!i + 1) t;
    incr i
  in
  let push2 t =
    push ~start:!i ~stop:(!i + 2) t;
    i := !i + 2
  in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && input.[!i + 1] = '-' then
      (* SQL line comment *)
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    else if c = '(' || c = ')' || c = ',' || c = '.' || c = ';' || c = '*'
    then push1 (Punct (String.make 1 c))
    else if c = '<' then
      if !i + 1 < n && (input.[!i + 1] = '=' || input.[!i + 1] = '>') then
        push2 (Punct (Printf.sprintf "<%c" input.[!i + 1]))
      else push1 (Punct "<")
    else if c = '>' then
      if !i + 1 < n && input.[!i + 1] = '=' then push2 (Punct ">=")
      else push1 (Punct ">")
    else if c = '=' then push1 (Punct "=")
    else if c = '!' then
      if !i + 1 < n && input.[!i + 1] = '=' then push2 (Punct "!=")
      else lex_fail "unexpected '!'"
    else if c = '\'' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && input.[!j] <> '\'' do
        incr j
      done;
      if !j >= n then lex_fail ~stop:n "unterminated string literal";
      push ~start:(start - 1) ~stop:(!j + 1)
        (Str (String.sub input start (!j - start)));
      i := !j + 1
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit input.[!i + 1])
    then begin
      let start = !i in
      incr i;
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      push ~start ~stop:!i
        (Int (int_of_string (String.sub input start (!i - start))))
    end
    else if is_word_char c then begin
      let start = !i in
      while !i < n && is_word_char input.[!i] do
        incr i
      done;
      push ~start ~stop:!i (Word (String.sub input start (!i - start)))
    end
    else lex_fail "unexpected character %C" c
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parser *)

type state = { mutable rest : (token * Srcspan.t) list; eof : Srcspan.t }

let keyword w = String.uppercase_ascii w

let describe = function
  | Word w -> Printf.sprintf "identifier %s" w
  | Int n -> Printf.sprintf "integer %d" n
  | Str s -> Printf.sprintf "string %S" s
  | Punct p -> Printf.sprintf "%S" p

let parse_fail st what =
  match st.rest with
  | (t, span) :: _ -> err ~span "expected %s, got %s" what (describe t)
  | [] -> err ~span:st.eof "expected %s, got end of input" what

let expect st what pred =
  match st.rest with
  | (t, span) :: rest when pred t ->
      st.rest <- rest;
      (t, span)
  | _ -> parse_fail st what

let expect_keyword st kw =
  ignore (expect st kw (function Word w -> keyword w = kw | _ -> false))

let expect_punct st p =
  ignore (expect st (Printf.sprintf "%S" p) (function
    | Punct q -> q = p
    | _ -> false))

let is_reserved w =
  List.mem (keyword w) [ "SELECT"; "COUNT"; "FROM"; "WHERE"; "AS"; "AND" ]

(* Direct pattern match — no catch-all [assert false] left to reach on
   malformed input. *)
let parse_word st what =
  match st.rest with
  | (Word w, span) :: rest ->
      st.rest <- rest;
      (w, span)
  | _ -> parse_fail st what

type colref = { alias : string option; column : string }

type cond =
  | Join of colref * colref
  | Select of colref * Constraints.op * Value.t

let parse_colref_from st first =
  match st.rest with
  | (Punct ".", _) :: rest ->
      st.rest <- rest;
      let column, _ = parse_word st "column name" in
      { alias = Some first; column }
  | _ -> { alias = None; column = first }

let parse_operand st =
  match st.rest with
  | (Word w, _) :: rest when not (is_reserved w) ->
      st.rest <- rest;
      if keyword w = "TRUE" then `Literal (Value.bool true)
      else if keyword w = "FALSE" then `Literal (Value.bool false)
      else `Col (parse_colref_from st w)
  | (Int n, _) :: rest ->
      st.rest <- rest;
      `Literal (Value.int n)
  | (Str s, _) :: rest ->
      st.rest <- rest;
      `Literal (Value.str s)
  | _ -> parse_fail st "a column or literal"

let parse_op st =
  match st.rest with
  | (Punct p, span) :: rest -> (
      let op =
        match p with
        | "=" -> Some Constraints.Eq
        | "!=" | "<>" -> Some Constraints.Neq
        | "<" -> Some Constraints.Lt
        | "<=" -> Some Constraints.Le
        | ">" -> Some Constraints.Gt
        | ">=" -> Some Constraints.Ge
        | _ -> None
      in
      match op with
      | Some op ->
          st.rest <- rest;
          op
      | None -> err ~span "expected a comparison operator, got %S" p)
  | _ -> parse_fail st "a comparison operator"

let cond_span st start =
  let stop =
    match st.rest with
    | (_, next) :: _ -> next.Srcspan.start_ofs
    | [] -> st.eof.Srcspan.start_ofs
  in
  Srcspan.join start (Srcspan.make stop stop)

let parse_cond st =
  let start =
    match st.rest with
    | (_, span) :: _ -> span
    | [] -> st.eof
  in
  let left = parse_operand st in
  let op = parse_op st in
  let right = parse_operand st in
  let span = cond_span st start in
  match (left, op, right) with
  | `Col a, Constraints.Eq, `Col b -> (Join (a, b), span)
  | `Col _, _, `Col _ ->
      err ~span "only equality joins between columns are supported"
  | `Col a, op, `Literal v -> (Select (a, op, v), span)
  | `Literal v, op, `Col a ->
      (* flip the comparison *)
      let flipped =
        match op with
        | Constraints.Eq -> Constraints.Eq
        | Constraints.Neq -> Constraints.Neq
        | Constraints.Lt -> Constraints.Gt
        | Constraints.Le -> Constraints.Ge
        | Constraints.Gt -> Constraints.Lt
        | Constraints.Ge -> Constraints.Le
      in
      (Select (a, flipped, v), span)
  | `Literal _, _, `Literal _ -> err ~span "comparison between two literals"

type from_item = { table : string; alias : string; item_span : Srcspan.t }

let parse_from_item st =
  let table, table_span = parse_word st "table name" in
  match st.rest with
  | (Word w, _) :: rest when keyword w = "AS" ->
      st.rest <- rest;
      let alias, alias_span = parse_word st "alias" in
      { table; alias; item_span = Srcspan.join table_span alias_span }
  | (Word w, alias_span) :: rest when not (is_reserved w) ->
      st.rest <- rest;
      { table; alias = w; item_span = Srcspan.join table_span alias_span }
  | _ -> { table; alias = table; item_span = table_span }

let parse_query input =
  let st =
    { rest = tokenize input; eof = Srcspan.point (String.length input) }
  in
  expect_keyword st "SELECT";
  expect_keyword st "COUNT";
  expect_punct st "(";
  expect_punct st "*";
  expect_punct st ")";
  expect_keyword st "FROM";
  let rec from_items acc =
    let item = parse_from_item st in
    match st.rest with
    | (Punct ",", _) :: rest ->
        st.rest <- rest;
        from_items (item :: acc)
    | _ -> List.rev (item :: acc)
  in
  let from = from_items [] in
  let conds =
    match st.rest with
    | (Word w, _) :: rest when keyword w = "WHERE" ->
        st.rest <- rest;
        let rec loop acc =
          let c = parse_cond st in
          match st.rest with
          | (Word w, _) :: rest when keyword w = "AND" ->
              st.rest <- rest;
              loop (c :: acc)
          | _ -> List.rev (c :: acc)
        in
        loop []
    | _ -> []
  in
  (match st.rest with
  | [] | [ (Punct ";", _) ] -> ()
  | (t, span) :: _ -> err ~span "unexpected %s after the query" (describe t));
  (from, conds)

let parse_from input =
  match parse_query input with
  | from, _ -> Ok from
  | exception Err (msg, span) -> Error (msg, span)

(* ------------------------------------------------------------------ *)
(* Translation *)

module Node = struct
  type t = string * string (* alias, column *)

  let compare = compare
end

module NodeMap = Map.Make (Node)

type translation = {
  query : Cq.t;
  constraints : Constraints.t list;
  renamings : (string * (Attr.t * Attr.t) list) list;
}

let translate ~catalog input =
  let from, conds =
    try parse_query input with
    | Err (msg, None) -> fail "%s" msg
    | Err (msg, Some span) ->
        fail "%s at %s" msg (Format.asprintf "%a" (Srcspan.pp_in input) span)
  in
  let conds = List.map fst conds in
  (* Resolve tables and aliases. *)
  let seen_aliases = Hashtbl.create 8 and seen_tables = Hashtbl.create 8 in
  let aliases =
    List.map
      (fun { table; alias; _ } ->
        (match List.assoc_opt table catalog with
        | Some _ -> ()
        | None -> fail "unknown table %s" table);
        if Hashtbl.mem seen_tables table then
          fail "table %s appears twice: self-joins are not supported" table;
        if Hashtbl.mem seen_aliases alias then fail "duplicate alias %s" alias;
        Hashtbl.add seen_tables table ();
        Hashtbl.add seen_aliases alias ();
        (alias, table))
      from
  in
  let columns_of alias =
    let table = List.assoc alias aliases in
    List.assoc table catalog
  in
  let resolve { alias; column } =
    match alias with
    | Some a ->
        if not (List.mem_assoc a aliases) then fail "unknown alias %s" a;
        if not (List.mem column (columns_of a)) then
          fail "table %s (alias %s) has no column %s" (List.assoc a aliases) a
            column;
        (a, column)
    | None -> (
        let homes =
          List.filter (fun (a, _) -> List.mem column (columns_of a)) aliases
        in
        match homes with
        | [ (a, _) ] -> (a, column)
        | [] -> fail "no table has a column %s" column
        | _ ->
            fail "column %s is ambiguous (qualify it with an alias)" column)
  in
  (* Union-find over column references, seeded by every column. *)
  let parent = ref NodeMap.empty in
  let rec find x =
    match NodeMap.find_opt x !parent with
    | None | Some None -> x
    | Some (Some p) ->
        let root = find p in
        parent := NodeMap.add x (Some root) !parent;
        root
  in
  let union x y =
    let rx = find x and ry = find y in
    if rx <> ry then parent := NodeMap.add rx (Some ry) !parent
  in
  List.iter
    (fun (alias, _) ->
      List.iter
        (fun column -> parent := NodeMap.add (alias, column) None !parent)
        (columns_of alias))
    aliases;
  List.iter
    (function
      | Join (a, b) -> union (resolve a) (resolve b)
      | Select _ -> ())
    conds;
  (* Group into classes. *)
  let classes = Hashtbl.create 16 in
  NodeMap.iter
    (fun node _ ->
      let root = find node in
      let members =
        match Hashtbl.find_opt classes root with Some m -> m | None -> []
      in
      Hashtbl.replace classes root (node :: members))
    !parent;
  (* Pick a variable name per class: the bare column name when every
     member shares it and no other class uses it; otherwise alias_column
     of the smallest member; then de-duplicate. *)
  let column_name_classes = Hashtbl.create 16 in
  Hashtbl.iter
    (fun root members ->
      match members with
      | (_, c) :: rest when List.for_all (fun (_, c') -> String.equal c c') rest
        ->
          Hashtbl.replace column_name_classes c
            (root :: Option.value ~default:[] (Hashtbl.find_opt column_name_classes c))
      | _ -> ())
    classes;
  let used = Hashtbl.create 16 in
  let name_of_root = Hashtbl.create 16 in
  let fresh base =
    if not (Hashtbl.mem used base) then begin
      Hashtbl.add used base ();
      base
    end
    else begin
      let rec go i =
        let candidate = Printf.sprintf "%s_%d" base i in
        if Hashtbl.mem used candidate then go (i + 1)
        else begin
          Hashtbl.add used candidate ();
          candidate
        end
      in
      go 2
    end
  in
  let sorted_roots =
    Hashtbl.fold (fun root members acc -> (root, members) :: acc) classes []
    |> List.sort (fun (r1, _) (r2, _) -> Node.compare r1 r2)
  in
  List.iter
    (fun (root, members) ->
      let members = List.sort Node.compare members in
      let base =
        match members with
        | (a, c) :: rest ->
            let homogeneous =
              List.for_all (fun (_, c') -> String.equal c c') rest
            in
            let unique_owner =
              match Hashtbl.find_opt column_name_classes c with
              | Some [ _ ] -> true
              | _ -> false
            in
            if homogeneous && unique_owner then c
            else Printf.sprintf "%s_%s" a c
        | [] ->
            (* Every class is seeded with at least the node it was created
               for; an empty member list would be a union-find bookkeeping
               bug, so name the root to make it debuggable. *)
            fail "internal: empty column equivalence class rooted at %s.%s"
              (fst root) (snd root)
      in
      Hashtbl.replace name_of_root root (fresh base))
    sorted_roots;
  let var_of node = Hashtbl.find name_of_root (find node) in
  (* Atoms, named after the tables, columns renamed to class variables. *)
  let atoms =
    List.map
      (fun (alias, table) ->
        let vars =
          List.map (fun column -> var_of (alias, column)) (columns_of alias)
        in
        (* Two columns of one table in the same class would collapse the
           schema (R.a = R.b): reject clearly. *)
        let dedup = List.sort_uniq String.compare vars in
        if List.length dedup <> List.length vars then
          fail
            "conditions equate two columns of table %s; per-table column \
             equalities are not supported"
            table;
        (table, vars))
      aliases
  in
  let cq = Cq.make atoms in
  let constraints =
    List.filter_map
      (function
        | Select (col, op, value) ->
            Some { Constraints.var = var_of (resolve col); op; value }
        | Join _ -> None)
      conds
  in
  let renamings =
    List.map
      (fun (alias, table) ->
        let pairs =
          List.filter_map
            (fun column ->
              let var = var_of (alias, column) in
              if String.equal var column then None else Some (column, var))
            (columns_of alias)
        in
        (table, pairs))
      aliases
  in
  { query = cq; constraints; renamings }

let bind t db =
  List.fold_left
    (fun db (table, pairs) ->
      match pairs with
      | [] -> db
      | _ -> Database.update ~name:table (Relation.rename pairs) db)
    db t.renamings
