type t = int

let zero = 0
let one = 1
let max_count = Stdlib.max_int
let is_saturated c = c = max_count

let add a b = if a > max_count - b then max_count else a + b

let mul a b =
  if a = 0 || b = 0 then 0
  else if a > max_count / b then max_count
  else a * b

let pow c k =
  if k < 0 then invalid_arg "Count.pow: negative exponent";
  let rec loop acc k = if k = 0 then acc else loop (mul acc c) (k - 1) in
  loop one k

let compare = Int.compare
let equal = Int.equal
let max a b = if a >= b then a else b
let of_int n =
  if n < 0 then
    invalid_arg (Printf.sprintf "Count.of_int: negative multiplicity %d" n);
  n
let to_string c = if is_saturated c then "overflow" else string_of_int c
let pp ppf c = Format.pp_print_string ppf (to_string c)
