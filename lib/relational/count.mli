(** Saturating multiplicity arithmetic.

    Bag-semantics multiplicities and sensitivities are products of row
    counts; baselines such as elastic sensitivity multiply per-relation
    maximum frequencies and overflow 63-bit integers on large instances.
    This module provides addition and multiplication that saturate at
    {!max_count} instead of wrapping around, so sensitivity bounds remain
    sound (a saturated value is a valid upper bound). *)

type t = int
(** A multiplicity. Invariant: [0 <= c <= max_count]. *)

val zero : t
val one : t

val max_count : t
(** The saturation point, [Stdlib.max_int]. *)

val is_saturated : t -> bool
(** [is_saturated c] is [true] iff [c = max_count], i.e. [c] is the result
    of an overflowing operation and only meaningful as an upper bound. *)

val add : t -> t -> t
(** Saturating addition. *)

val mul : t -> t -> t
(** Saturating multiplication. *)

val pow : t -> int -> t
(** [pow c k] is [c] multiplied by itself [k] times (saturating);
    [pow c 0 = one]. Raises [Invalid_argument] if [k < 0]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val max : t -> t -> t

val of_int : int -> t
(** [of_int n] is [n]. Raises [Invalid_argument] if [n < 0]: a negative
    multiplicity is always an upstream accounting bug, and clamping it
    to zero would silently understate a sensitivity. *)

val to_string : t -> string
(** Renders saturated values as ["overflow"]. *)

val pp : Format.formatter -> t -> unit
