(** Plain CSV import/export for relations.

    Format: a header line with the attribute names followed by a final
    [cnt] column, then one line per distinct tuple. Values are rendered
    with {!Value.to_string} and parsed back with {!Value.of_string}.

    Export rejects with {!Errors.Data_error} anything that would not
    round-trip: fields containing commas or newlines, fields with
    leading/trailing whitespace, empty attribute names, and saturated
    counts (a saturated {!Count.t} is only a lower bound, not an exact
    multiplicity). Import strips exactly one trailing ['\r'] per line
    (Windows files); all other whitespace inside fields is preserved. *)

val output : out_channel -> Relation.t -> unit
val write_file : string -> Relation.t -> unit

val input : ?schema:Schema.t -> in_channel -> Relation.t
(** Reads a relation. When [schema] is given it must match the header's
    attribute names; otherwise the header defines the schema. Raises
    {!Errors.Data_error} on malformed input. *)

val read_file : ?schema:Schema.t -> string -> Relation.t
