(* Integer-key hashing machinery for the columnar kernels: open-
   addressing tables with no boxing anywhere — keys are dictionary ids
   (or dense composite-key ids from [Keydict]), payloads are ints, and
   probing walks flat [int array]s with linear probing. [Hashtbl] would
   box every binding in a cons-like bucket record and hash through the
   polymorphic runtime; these tables exist so the join inner loops touch
   only immediate ints. *)

(* splitmix64-style finalizer, truncated to OCaml's 63-bit ints and
   clamped non-negative. Every bucket/partition decision on integer keys
   routes through this so dense id ranges (the common case: dictionary
   ids are assigned sequentially) spread over all bits. *)
(* The 64-bit splitmix constants exceed OCaml's int literal range; they
   are assembled from halves and wrap modulo 2^63, which is harmless for
   a mixer (multiplication overflow wraps the same way). *)
let m1 = (0xbf58476d lsl 32) lor 0x1ce4e5b9
let m2 = (0x94d049bb lsl 32) lor 0x133111eb

let mix x =
  let x = x * m1 in
  let x = x lxor (x lsr 31) in
  let x = x * m2 in
  (x lxor (x lsr 31)) land max_int

let fnv_prime = 0x100000001b3
let fnv_seed = 0x1000193

(* ------------------------------------------------------------------ *)
(* Growable int buffer: the kernels' output accumulator. *)

module Ibuf = struct
  type t = { mutable a : int array; mutable n : int }

  let create hint = { a = Array.make (max 8 hint) 0; n = 0 }

  let push b x =
    if b.n = Array.length b.a then begin
      let bigger = Array.make (2 * b.n) 0 in
      Array.blit b.a 0 bigger 0 b.n;
      b.a <- bigger
    end;
    b.a.(b.n) <- x;
    b.n <- b.n + 1

  let length b = b.n
  let get b i = b.a.(i)
  let set b i x = b.a.(i) <- x
  let to_array b = Array.sub b.a 0 b.n
end

(* ------------------------------------------------------------------ *)
(* Open-addressing int -> int table. Keys must be non-negative (the id
   spaces all are); -1 marks an empty slot. Linear probing, power-of-two
   capacity, grown at half load. *)

module Itab = struct
  type t = {
    mutable keys : int array;
    mutable vals : int array;
    mutable mask : int;
    mutable count : int;
  }

  let rec capacity_for n c = if c >= 2 * n then c else capacity_for n (2 * c)

  let create hint =
    let cap = capacity_for (max 8 hint) 16 in
    { keys = Array.make cap (-1); vals = Array.make cap 0; mask = cap - 1;
      count = 0 }

  (* Index of [k]'s slot, or of the empty slot where it belongs. *)
  let slot t k =
    let i = ref (mix k land t.mask) in
    while
      let key = t.keys.(!i) in
      key >= 0 && key <> k
    do
      i := (!i + 1) land t.mask
    done;
    !i

  let grow t =
    let okeys = t.keys and ovals = t.vals in
    let cap = 2 * Array.length okeys in
    t.keys <- Array.make cap (-1);
    t.vals <- Array.make cap 0;
    t.mask <- cap - 1;
    Array.iteri
      (fun i k -> if k >= 0 then begin
           let s = slot t k in
           t.keys.(s) <- k;
           t.vals.(s) <- ovals.(i)
         end)
      okeys

  let insert_at t s k v =
    t.keys.(s) <- k;
    t.vals.(s) <- v;
    t.count <- t.count + 1;
    if 2 * t.count > t.mask then grow t

  let find t k ~default =
    let s = slot t k in
    if t.keys.(s) = k then t.vals.(s) else default

  let set t k v =
    let s = slot t k in
    if t.keys.(s) = k then t.vals.(s) <- v else insert_at t s k v

  (* Previous value (or [default]), with [v] stored in its place — the
     one-probe primitive the chained-index builds use. *)
  let exchange t k v ~default =
    let s = slot t k in
    if t.keys.(s) = k then begin
      let old = t.vals.(s) in
      t.vals.(s) <- v;
      old
    end
    else begin
      insert_at t s k v;
      default
    end

  (* Saturating count accumulation (Count.t is an int). *)
  let add_count t k (c : Count.t) =
    let s = slot t k in
    if t.keys.(s) = k then t.vals.(s) <- Count.add t.vals.(s) c
    else insert_at t s k c

  let length t = t.count

  let iter f t =
    Array.iteri (fun i k -> if k >= 0 then f k t.vals.(i)) t.keys

  let fold f t init =
    let acc = ref init in
    iter (fun k v -> acc := f k v !acc) t;
    !acc
end

(* ------------------------------------------------------------------ *)
(* Composite-key dictionary: interns fixed-arity int vectors (the multi-
   column join keys) into dense ids, FNV-1a-mixed and compared
   component-wise, so multi-column joins reduce to the same single-int
   kernels as single-column ones. One instance per kernel invocation:
   the build side interns, the probe side looks up (absent = no match,
   never interned). *)

module Keydict = struct
  type t = {
    arity : int;
    mutable slots : int array; (* dense id, -1 empty *)
    mutable mask : int;
    mutable count : int;
    data : Ibuf.t; (* interned keys, [arity]-strided *)
  }

  let create ~arity hint =
    let cap = Itab.capacity_for (max 8 hint) 16 in
    {
      arity;
      slots = Array.make cap (-1);
      mask = cap - 1;
      count = 0;
      data = Ibuf.create (max 8 (hint * max 1 arity));
    }

  let hash_key t (key : int array) =
    let h = ref fnv_seed in
    for j = 0 to t.arity - 1 do
      h := (!h lxor key.(j)) * fnv_prime
    done;
    mix !h

  let hash_stored t id =
    let h = ref fnv_seed in
    let base = id * t.arity in
    for j = 0 to t.arity - 1 do
      h := (!h lxor Ibuf.get t.data (base + j)) * fnv_prime
    done;
    mix !h

  let equal_stored t id (key : int array) =
    let base = id * t.arity in
    let rec loop j =
      j >= t.arity || (Ibuf.get t.data (base + j) = key.(j) && loop (j + 1))
    in
    loop 0

  let slot_of t key =
    let i = ref (hash_key t key land t.mask) in
    while
      let id = t.slots.(!i) in
      id >= 0 && not (equal_stored t id key)
    do
      i := (!i + 1) land t.mask
    done;
    !i

  let grow t =
    let old = t.slots in
    let cap = 2 * Array.length old in
    t.slots <- Array.make cap (-1);
    t.mask <- cap - 1;
    Array.iter
      (fun id ->
        if id >= 0 then begin
          let i = ref (hash_stored t id land t.mask) in
          while t.slots.(!i) >= 0 do
            i := (!i + 1) land t.mask
          done;
          t.slots.(!i) <- id
        end)
      old

  (* [key] is a caller-owned scratch array of length [arity]; its
     contents are copied on first sight, so callers reuse one scratch
     across rows. *)
  let lookup_or_add t key =
    let s = slot_of t key in
    if t.slots.(s) >= 0 then t.slots.(s)
    else begin
      let id = t.count in
      for j = 0 to t.arity - 1 do
        Ibuf.push t.data key.(j)
      done;
      t.slots.(s) <- id;
      t.count <- t.count + 1;
      if 2 * t.count > t.mask then grow t;
      id
    end

  let lookup t key =
    let s = slot_of t key in
    t.slots.(s)

  let length t = t.count

  let get t id j = Ibuf.get t.data ((id * t.arity) + j)
end
