type t =
  | Int of int
  | Str of string
  | Bool of bool

let int n = Int n
let str s = Str s
let bool b = Bool b

(* Constructor rank for cross-constructor ordering. *)
let rank = function Int _ -> 0 | Str _ -> 1 | Bool _ -> 2

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | (Int _ | Str _ | Bool _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

(* Hash the payload directly and fold the constructor tag in as a fixed
   xor salt: the historical [Hashtbl.hash (tag, payload)] boxed a fresh
   tuple on every call, which dominated the profile of tuple hashing.
   [Hashtbl.hash] on an immediate int or a string payload allocates
   nothing. The salts are arbitrary distinct odd constants so equal
   payloads under different constructors land in different buckets;
   [Tbl] semantics (equal values hash equal) are unchanged. *)
let hash = function
  | Int n -> Hashtbl.hash n lxor 0x4cf5ad43
  | Str s -> Hashtbl.hash s lxor 0x183e94b1
  | Bool b -> Hashtbl.hash b lxor 0x27d4eb2f

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let as_int = function Int n -> Some n | Str _ | Bool _ -> None
let as_str = function Str s -> Some s | Int _ | Bool _ -> None
let as_bool = function Bool b -> Some b | Int _ | Str _ -> None

let to_string = function
  | Int n -> string_of_int n
  | Str s -> s
  | Bool b -> string_of_bool b

let of_string s =
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> (
      match bool_of_string_opt s with Some b -> Bool b | None -> Str s)

let pp ppf v = Format.pp_print_string ppf (to_string v)
