type t =
  | Int of int
  | Str of string
  | Bool of bool

let int n = Int n
let str s = Str s
let bool b = Bool b

(* Constructor rank for cross-constructor ordering. *)
let rank = function Int _ -> 0 | Str _ -> 1 | Bool _ -> 2

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | (Int _ | Str _ | Bool _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Int n -> Hashtbl.hash (0, n)
  | Str s -> Hashtbl.hash (1, s)
  | Bool b -> Hashtbl.hash (2, b)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let as_int = function Int n -> Some n | Str _ | Bool _ -> None
let as_str = function Str s -> Some s | Int _ | Bool _ -> None
let as_bool = function Bool b -> Some b | Int _ | Str _ -> None

let to_string = function
  | Int n -> string_of_int n
  | Str s -> s
  | Bool b -> string_of_bool b

let of_string s =
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> (
      match bool_of_string_opt s with Some b -> Bool b | None -> Str s)

let pp ppf v = Format.pp_print_string ppf (to_string v)
