(** Storage-engine selection: row-oriented (the seed representation and
    correctness oracle) or dictionary-encoded columnar.

    The toggle selects which kernel implementations the relational
    operators dispatch to; results are bit-identical in both modes (the
    equivalence property suite pins this), so flipping it only changes
    speed. The default comes from the [TSENS_STORAGE] environment
    variable ([columnar] or [row]), read once at load; [row] when unset
    or unparseable. *)

type mode = Row | Columnar

val mode : unit -> mode
val set_mode : mode -> unit

val is_columnar : unit -> bool
(** [is_columnar ()] is [mode () = Columnar] — the dispatch predicate the
    operators branch on. *)

val with_mode : mode -> (unit -> 'a) -> 'a
(** Run with the mode temporarily overridden; restores on exit (also on
    exceptions). For tests and the storage bench. *)

val of_string : string -> mode option
(** Parses ["row"] / ["columnar"] (case-insensitive, with common
    abbreviations); [None] otherwise. *)

val to_string : mode -> string
