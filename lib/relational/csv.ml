let is_blank c = c = ' ' || c = '\t'

(* Only fields that parse back to themselves may be written: commas and
   newlines would split, and leading/trailing blanks would survive the
   writer verbatim but are indistinguishable from sloppy hand-edited
   padding on the way back in. *)
let check_field s =
  if String.exists (fun c -> c = ',' || c = '\n' || c = '\r') s then
    Errors.data_errorf "CSV field %S contains a separator" s;
  if s <> "" && (is_blank s.[0] || is_blank s.[String.length s - 1]) then
    Errors.data_errorf
      "CSV field %S has leading or trailing whitespace and would not \
       round-trip" s;
  s

let check_header_field s =
  if s = "" then Errors.data_errorf "CSV header has an empty attribute name";
  check_field s

let output oc rel =
  let schema = Relation.schema rel in
  let header =
    String.concat ","
      (List.map check_header_field (Schema.attrs schema) @ [ "cnt" ])
  in
  output_string oc header;
  output_char oc '\n';
  Relation.iter
    (fun tup cnt ->
      if Count.is_saturated cnt then
        Errors.data_errorf
          "CSV output: tuple %a has a saturated count, which only means \
           'at least %d' and cannot be exported as an exact multiplicity"
          Tuple.pp tup Count.max_count;
      let fields =
        Array.to_list tup
        |> List.map (fun v -> check_field (Value.to_string v))
      in
      output_string oc (String.concat "," (fields @ [ string_of_int cnt ]));
      output_char oc '\n')
    rel

let write_file path rel =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output oc rel)

(* [input_line] already strips the '\n'; only a Windows '\r' remains to
   drop. Trimming more would corrupt fields with genuine edge
   whitespace — the writer rejects those, but externally produced files
   may carry them and must be read faithfully. *)
let chomp line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let split_line line = String.split_on_char ',' (chomp line)

let input ?schema ic =
  let header =
    try input_line ic
    with End_of_file -> Errors.data_errorf "CSV input is empty"
  in
  let columns = split_line header in
  let attrs =
    match List.rev columns with
    | "cnt" :: rest -> List.rev rest
    | _ -> Errors.data_errorf "CSV header %S lacks a trailing cnt column" header
  in
  let file_schema = Schema.of_list attrs in
  let schema =
    match schema with
    | None -> file_schema
    | Some s ->
        if not (Schema.equal s file_schema) then
          Errors.data_errorf "CSV header %a does not match expected schema %a"
            Schema.pp file_schema Schema.pp s;
        s
  in
  let arity = Schema.arity schema in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         let fields = split_line line in
         if List.length fields <> arity + 1 then
           Errors.data_errorf "CSV row %S has %d fields, expected %d" line
             (List.length fields) (arity + 1);
         let values, cnt_field =
           match List.rev fields with
           | c :: rest -> (List.rev rest, c)
           | [] -> assert false
         in
         let cnt =
           match int_of_string_opt cnt_field with
           | Some c when c > 0 -> c
           | Some _ | None ->
               Errors.data_errorf "CSV row %S has invalid count %S" line
                 cnt_field
         in
         let tup = Tuple.of_list (List.map Value.of_string values) in
         rows := (tup, cnt) :: !rows
       end
     done
   with End_of_file -> ());
  let rel = Relation.create ~schema (List.rev !rows) in
  (* Under columnar storage, encode at load time: import is the natural
     dictionary-warming point, and the first join against this relation
     then starts probing immediately instead of paying the intern pass.
     [Relation.encoded] memoizes, so this is free if never used. *)
  if Storage.is_columnar () then ignore (Relation.encoded rel : Colrel.t);
  rel

let read_file ?schema path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> input ?schema ic)
