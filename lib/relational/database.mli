(** Database instances: named relations.

    A database is an immutable map from relation names to relations; the
    sensitivity algorithms thread updated instances through without
    copying untouched relations. *)

type t

val empty : t
val of_list : (string * Relation.t) list -> t

val add : name:string -> Relation.t -> t -> t
(** Adds or replaces a relation. *)

val find : string -> t -> Relation.t
(** Raises {!Errors.Data_error} if the name is unknown. *)

val find_opt : string -> t -> Relation.t option
val mem : string -> t -> bool

val names : t -> string list
(** Sorted relation names. *)

val update : name:string -> (Relation.t -> Relation.t) -> t -> t
(** Replace one relation by a function of its current value. Raises
    {!Errors.Data_error} if the name is unknown. *)

val fold : (string -> Relation.t -> 'a -> 'a) -> t -> 'a -> 'a

val versions : t -> (string * int) list
(** [(name, Relation.version)] pairs in name order — the database's
    identity for cache keying. Any update to any member relation changes
    the list, because relation stamps are unique per constructed value. *)

val total_tuples : t -> Count.t
(** Sum of bag cardinalities over all relations — the paper's [n]. *)

val pp : Format.formatter -> t -> unit
(** One summary line per relation. *)
