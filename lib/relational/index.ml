(* Keyed once at build; lookups share the precomputed key positions.

   Groups are frozen as arrays at the end of [build], so join probe
   loops iterate contiguous memory instead of chasing cons cells.

   Above the parallel cutoff the row build is hash-partitioned: part [p]
   holds exactly the keys whose [Tuple.bucket] is [p], each part built
   on its own domain with no shared writes, and probes route by the same
   bucket function. Within a part, rows are scanned in relation order,
   so the per-key row order is identical to the single-part build.

   Under TSENS_STORAGE=columnar the index is built in the integer
   domain instead: the source is encoded once ({!Relation.encoded}), the
   key collapses to one int signature per row (raw dictionary id for
   single-column keys, a {!Intkey.Keydict} id otherwise), and the groups
   are chained row ids in an open-addressing table. A probe interns
   nothing: each probe value is looked up in the dictionary, and any
   absent value proves the key matches no row. Group rows decode to
   tuples only when [lookup] materializes them — [group_count] never
   touches a tuple. *)

let c_builds = Obs.counter "index.builds"
let c_probes = Obs.counter "index.probes"
let c_rows = Obs.counter "index.rows_indexed"
let g_group = Obs.gauge "index.max_group_rows"

module H = Tuple.Tbl

type part = {
  groups : (Tuple.t * Count.t) array H.t;
  counts : Count.t H.t;
}

(* Columnar impl: [heads]/[next] thread each signature's rows newest
   first (the same per-group order as the row build, which conses in
   relation order), [counts] sums multiplicities per signature. *)
type cols = {
  crel : Colrel.t; (* encoded source, relation row order *)
  kpos : int array; (* key column positions in the source *)
  ckd : Intkey.Keydict.t option; (* Some iff key arity >= 2 *)
  heads : Intkey.Itab.t; (* signature -> newest row id *)
  next : int array; (* row id -> older row id with same signature *)
  ccounts : Intkey.Itab.t; (* signature -> summed count *)
  dec : (int, (Tuple.t * Count.t) array) Hashtbl.t;
      (* decoded groups by signature, filled lazily on [lookup] so
         repeated probes alias one frozen array (the contract cached
         indexes rely on); mutex-guarded — lookups may come from
         worker domains. *)
  dmutex : Mutex.t;
}

type impl = Rows of part array | Cols of cols

type t = {
  key : Schema.t;
  source : Schema.t;
  impl : impl; (* Rows: a key lives in parts.(Tuple.bucket key n) *)
}

(* Build one part from the rows whose precomputed bucket matches; [keys]
   holds the per-row key projections. The temporary cons lists reverse
   row order, as the frozen arrays' contract requires (newest first,
   matching the historical list-based index). *)
let build_part rows keys select size =
  let acc : (Tuple.t * Count.t) list H.t = H.create size in
  let counts = H.create size in
  Array.iteri
    (fun i row ->
      if select i then begin
        let k = keys.(i) in
        let prev = try H.find acc k with Not_found -> [] in
        H.replace acc k (row :: prev);
        let prev_c = try H.find counts k with Not_found -> 0 in
        H.replace counts k (Count.add prev_c (snd row))
      end)
    rows;
  let groups = H.create (H.length acc) in
  H.iter (fun k l -> H.replace groups k (Array.of_list l)) acc;
  { groups; counts }

let build_rows positions rel =
  let rows = Relation.rows rel in
  let n = Array.length rows in
  if not (Exec.pays_off n) then begin
    let keys = Array.map (fun (tup, _) -> Tuple.project positions tup) rows in
    [| build_part rows keys (fun _ -> true) (max 16 n) |]
  end
  else begin
    let p = Exec.jobs () in
    let keys =
      Exec.parallel_map (fun (tup, _) -> Tuple.project positions tup) rows
    in
    let buckets = Exec.parallel_map (fun k -> Tuple.bucket k p) keys in
    let parts = Array.make p { groups = H.create 0; counts = H.create 0 } in
    Exec.parallel_for ~chunks:p 0 p (fun pi ->
        parts.(pi) <-
          build_part rows keys (fun i -> buckets.(i) = pi) (max 16 (n / p)));
    parts
  end

(* Per-row key signature over the encoded source: an arity-0 key puts
   every row in one group (signature 0), arity 1 uses the raw dictionary
   id, wider keys intern through a Keydict. *)
let build_cols positions rel =
  let crel = Relation.encoded rel in
  let n = Colrel.nrows crel in
  let k = Array.length positions in
  let ckd, sig_of =
    if k = 0 then (None, fun _ -> 0)
    else if k = 1 then
      let src = Colrel.col crel positions.(0) in
      (None, fun i -> src.(i))
    else begin
      let kd = Intkey.Keydict.create ~arity:k n in
      let srcs = Array.map (Colrel.col crel) positions in
      let scratch = Array.make k 0 in
      ( Some kd,
        fun i ->
          for j = 0 to k - 1 do
            scratch.(j) <- srcs.(j).(i)
          done;
          Intkey.Keydict.lookup_or_add kd scratch )
    end
  in
  let heads = Intkey.Itab.create (max 16 n) in
  let next = Array.make (max 1 n) (-1) in
  let ccounts = Intkey.Itab.create (max 16 n) in
  let counts = Colrel.counts crel in
  for i = 0 to n - 1 do
    let s = sig_of i in
    next.(i) <- Intkey.Itab.exchange heads s i ~default:(-1);
    Intkey.Itab.add_count ccounts s counts.(i)
  done;
  {
    crel;
    kpos = positions;
    ckd;
    heads;
    next;
    ccounts;
    dec = Hashtbl.create 16;
    dmutex = Mutex.create ();
  }

let build ~key rel =
  Obs.span "index.build" @@ fun () ->
  let source = Relation.schema rel in
  if not (Schema.subset key source) then
    Errors.schema_errorf "index key %a not a subset of %a" Schema.pp key
      Schema.pp source;
  let positions = Schema.positions ~sub:key source in
  let impl =
    if Storage.is_columnar () then Cols (build_cols positions rel)
    else Rows (build_rows positions rel)
  in
  if Obs.enabled () then begin
    Obs.tick c_builds;
    Obs.add c_rows (Relation.distinct_count rel);
    match impl with
    | Rows parts ->
        Array.iter
          (fun part ->
            H.iter (fun _ rows -> Obs.observe g_group (Array.length rows))
              part.groups)
          parts
    | Cols c ->
        Intkey.Itab.iter
          (fun _ head ->
            let len = ref 0 and i = ref head in
            while !i >= 0 do
              incr len;
              i := c.next.(!i)
            done;
            Obs.observe g_group !len)
          c.heads
  end;
  { key; source; impl }

let key_schema t = t.key
let source_schema t = t.source

let part_of parts k =
  if Array.length parts = 1 then parts.(0)
  else parts.(Tuple.bucket k (Array.length parts))

(* Signature of a probe tuple, or -1 when some probe value was never
   interned (then no indexed row can match it). Probing never interns:
   the dictionary only grows when relations are encoded. *)
let probe_sig c k =
  let arity = Array.length c.kpos in
  if arity = 0 then 0
  else if arity = 1 then (
    match Dict.find_opt (Tuple.get k 0) with Some id -> id | None -> -1)
  else begin
    let ids = Array.make arity 0 in
    let ok = ref true in
    for j = 0 to arity - 1 do
      match Dict.find_opt (Tuple.get k j) with
      | Some id -> ids.(j) <- id
      | None -> ok := false
    done;
    if not !ok then -1 else Intkey.Keydict.lookup (Option.get c.ckd) ids
  end

let chain_rows c head =
  let ids = ref [] and i = ref head in
  (* Collect then decode: chain order is newest-first already. *)
  while !i >= 0 do
    ids := !i :: !ids;
    i := c.next.(!i)
  done;
  let ids = Array.of_list (List.rev !ids) in
  Array.map
    (fun i -> (Colrel.decode_row c.crel i, Colrel.count c.crel i))
    ids

let lookup t k =
  Obs.tick c_probes;
  match t.impl with
  | Rows parts -> (
      try H.find (part_of parts k).groups k with Not_found -> [||])
  | Cols c ->
      let s = probe_sig c k in
      if s < 0 then [||]
      else
        let head = Intkey.Itab.find c.heads s ~default:(-1) in
        if head < 0 then [||]
        else
          Mutex.protect c.dmutex (fun () ->
              match Hashtbl.find_opt c.dec s with
              | Some rows -> rows
              | None ->
                  let rows = chain_rows c head in
                  Hashtbl.add c.dec s rows;
                  rows)

let group_count t k =
  Obs.tick c_probes;
  match t.impl with
  | Rows parts -> (
      try H.find (part_of parts k).counts k with Not_found -> 0)
  | Cols c ->
      let s = probe_sig c k in
      if s < 0 then 0 else Intkey.Itab.find c.ccounts s ~default:0

let max_group_count t =
  match t.impl with
  | Rows parts ->
      Array.fold_left
        (fun acc part -> H.fold (fun _ c acc -> Count.max c acc) part.counts acc)
        Count.zero parts
  | Cols c ->
      Intkey.Itab.fold (fun _ cnt acc -> Count.max cnt acc) c.ccounts Count.zero

(* Rough retained size in words, for cache weighting: ~3 words per
   indexed row plus per-group overhead. Computed without decoding — the
   row walk touches only table sizes, the columnar one only counters. *)
let approx_words t =
  match t.impl with
  | Rows parts ->
      let words = ref 0 in
      Array.iter
        (fun part ->
          H.iter
            (fun _ rows -> words := !words + 8 + (3 * Array.length rows))
            part.groups)
        parts;
      !words
  | Cols c ->
      (8 * Intkey.Itab.length c.heads) + (3 * Colrel.nrows c.crel)

let iter_groups f t =
  match t.impl with
  | Rows parts -> Array.iter (fun part -> H.iter f part.groups) parts
  | Cols c ->
      Intkey.Itab.iter
        (fun _ head ->
          let rows = chain_rows c head in
          f (Tuple.project c.kpos (fst rows.(0))) rows)
        c.heads
