(* Keyed once at build; lookups share the precomputed key positions.

   Groups are frozen as arrays at the end of [build], so join probe
   loops iterate contiguous memory instead of chasing cons cells.

   Above the parallel cutoff the index is hash-partitioned: part [p]
   holds exactly the keys whose [Tuple.bucket] is [p], each part built
   on its own domain with no shared writes, and probes route by the same
   bucket function. Within a part, rows are scanned in relation order,
   so the per-key row order is identical to the single-part build. *)

let c_builds = Obs.counter "index.builds"
let c_probes = Obs.counter "index.probes"
let c_rows = Obs.counter "index.rows_indexed"
let g_group = Obs.gauge "index.max_group_rows"

module H = Tuple.Tbl

type part = {
  groups : (Tuple.t * Count.t) array H.t;
  counts : Count.t H.t;
}

type t = {
  key : Schema.t;
  source : Schema.t;
  parts : part array; (* a key lives in parts.(Tuple.bucket key n) *)
}

(* Build one part from the rows whose precomputed bucket matches; [keys]
   holds the per-row key projections. The temporary cons lists reverse
   row order, as the frozen arrays' contract requires (newest first,
   matching the historical list-based index). *)
let build_part rows keys select size =
  let acc : (Tuple.t * Count.t) list H.t = H.create size in
  let counts = H.create size in
  Array.iteri
    (fun i row ->
      if select i then begin
        let k = keys.(i) in
        let prev = try H.find acc k with Not_found -> [] in
        H.replace acc k (row :: prev);
        let prev_c = try H.find counts k with Not_found -> 0 in
        H.replace counts k (Count.add prev_c (snd row))
      end)
    rows;
  let groups = H.create (H.length acc) in
  H.iter (fun k l -> H.replace groups k (Array.of_list l)) acc;
  { groups; counts }

let build ~key rel =
  Obs.span "index.build" @@ fun () ->
  let source = Relation.schema rel in
  if not (Schema.subset key source) then
    Errors.schema_errorf "index key %a not a subset of %a" Schema.pp key
      Schema.pp source;
  let positions = Schema.positions ~sub:key source in
  let rows = Relation.rows rel in
  let n = Array.length rows in
  let parts =
    if not (Exec.pays_off n) then begin
      let keys = Array.map (fun (tup, _) -> Tuple.project positions tup) rows in
      [| build_part rows keys (fun _ -> true) (max 16 n) |]
    end
    else begin
      let p = Exec.jobs () in
      let keys =
        Exec.parallel_map (fun (tup, _) -> Tuple.project positions tup) rows
      in
      let buckets = Exec.parallel_map (fun k -> Tuple.bucket k p) keys in
      let parts = Array.make p { groups = H.create 0; counts = H.create 0 } in
      Exec.parallel_for ~chunks:p 0 p (fun pi ->
          parts.(pi) <-
            build_part rows keys (fun i -> buckets.(i) = pi) (max 16 (n / p)));
      parts
    end
  in
  if Obs.enabled () then begin
    Obs.tick c_builds;
    Obs.add c_rows (Relation.distinct_count rel);
    Array.iter
      (fun part ->
        H.iter (fun _ rows -> Obs.observe g_group (Array.length rows))
          part.groups)
      parts
  end;
  { key; source; parts }

let key_schema t = t.key
let source_schema t = t.source

let part_of t k =
  if Array.length t.parts = 1 then t.parts.(0)
  else t.parts.(Tuple.bucket k (Array.length t.parts))

let lookup t k =
  Obs.tick c_probes;
  try H.find (part_of t k).groups k with Not_found -> [||]

let group_count t k =
  Obs.tick c_probes;
  try H.find (part_of t k).counts k with Not_found -> 0

let max_group_count t =
  Array.fold_left
    (fun acc part -> H.fold (fun _ c acc -> Count.max c acc) part.counts acc)
    Count.zero t.parts

let iter_groups f t =
  Array.iter (fun part -> H.iter f part.groups) t.parts
