(* Keyed once at build; lookups share the precomputed key positions. *)

let c_builds = Obs.counter "index.builds"
let c_probes = Obs.counter "index.probes"
let c_rows = Obs.counter "index.rows_indexed"
let g_group = Obs.gauge "index.max_group_rows"

module H = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

type t = {
  key : Schema.t;
  source : Schema.t;
  groups : (Tuple.t * Count.t) list H.t;
  counts : Count.t H.t;
}

let build ~key rel =
  Obs.span "index.build" @@ fun () ->
  let source = Relation.schema rel in
  if not (Schema.subset key source) then
    Errors.schema_errorf "index key %a not a subset of %a" Schema.pp key
      Schema.pp source;
  let positions = Schema.positions ~sub:key source in
  let groups = H.create (max 16 (Relation.distinct_count rel)) in
  let counts = H.create (max 16 (Relation.distinct_count rel)) in
  Relation.iter
    (fun tup cnt ->
      let k = Tuple.project positions tup in
      let prev = try H.find groups k with Not_found -> [] in
      H.replace groups k ((tup, cnt) :: prev);
      let prev_c = try H.find counts k with Not_found -> 0 in
      H.replace counts k (Count.add prev_c cnt))
    rel;
  if Obs.enabled () then begin
    Obs.tick c_builds;
    Obs.add c_rows (Relation.distinct_count rel);
    H.iter (fun _ rows -> Obs.observe g_group (List.length rows)) groups
  end;
  { key; source; groups; counts }

let key_schema t = t.key
let source_schema t = t.source
let lookup t k =
  Obs.tick c_probes;
  try H.find t.groups k with Not_found -> []

let group_count t k =
  Obs.tick c_probes;
  try H.find t.counts k with Not_found -> 0

let max_group_count t =
  H.fold (fun _ c acc -> Count.max c acc) t.counts Count.zero

let iter_groups f t = H.iter f t.groups
