(** Dictionary-encoded columnar relations.

    The storage format behind [TSENS_STORAGE=columnar]: one [int array]
    of {!Dict} ids per attribute plus a parallel multiplicity array.
    Invariant: the row set is distinct (one entry per distinct tuple);
    row *order* is unspecified — {!Relation.of_encoded} sorts when a
    columnar result becomes a row relation again. Values decode back to
    [Value.t] only at that boundary. *)

type t

val make : schema:Schema.t -> cols:int array array -> counts:Count.t array -> t
(** Assemble a columnar relation from kernel output. The caller
    guarantees the distinct-rows invariant and positive counts; column
    count must match the schema arity and all arrays must share one
    length. Stamped with the current {!Dict.generation}. *)

val of_pairs : Schema.t -> (Tuple.t * Count.t) array -> t
(** Encode rows verbatim (interning every value, one dictionary lock
    acquisition for the whole relation). Does not group: feed the result
    to {!group_self} unless the input rows are already distinct. *)

val schema : t -> Schema.t
val nrows : t -> int
val arity : t -> int

val col : t -> int -> int array
(** Column [j] as dictionary ids. Owned by the relation: do not mutate. *)

val counts : t -> Count.t array
(** Per-row multiplicities. Owned by the relation: do not mutate. *)

val count : t -> int -> Count.t

val generation : t -> int
(** The {!Dict.generation} the ids were assigned under. Stale encodings
    (dictionary reset since) must be rebuilt, never decoded. *)

val decode_row : t -> int -> Tuple.t
val decode_rows : t -> (Tuple.t * Count.t) array

val permute : t -> int array -> t
(** Rows gathered through an index array (reordering or selection). *)

val group_by : schema:Schema.t -> int array -> t -> t
(** [group_by ~schema positions t] is the γ kernel in the integer
    domain: group rows by the listed source columns, sum multiplicities
    (saturating), keep one representative per group. [schema] names the
    grouped columns, in [positions] order. *)

val group_self : t -> t
(** Merge duplicate rows over all columns — columnar normalization. *)
