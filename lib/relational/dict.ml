(* The value dictionary: an append-only intern table mapping every
   [Value.t] the columnar storage layer has seen to a dense immutable
   [int] id. Logically this is a per-database dictionary; because
   databases are persistent maps that freely share relations (and
   relations flow between databases through joins and truncation), the
   implementation is one process-wide store — exactly like relation
   version stamps, which are also process-global for the same reason.

   Soundness of the id space is what the cache layer leans on: an id,
   once assigned, never changes meaning, so a memoized columnar artifact
   (an encoded relation, an integer-keyed index) can never decode to the
   wrong value — it can only become unreachable. The one exception is
   [reset], which tears the whole mapping down for tests; it bumps
   [generation], and every encoded artifact records the generation it
   was built under, so stale artifacts are detected and rebuilt instead
   of mis-decoded.

   Concurrency: interning happens on whichever domain encodes a relation
   (worker domains encode inside join tasks), so the value→id table is
   mutex-guarded. Decoding is the hot read path and takes no lock: the
   id→value array is published by [Atomic.set] after its slots are
   written, grown by copy (a published array is never shrunk and its
   initialized prefix never mutated), and a reader can only hold an id
   that some intern call returned before it — the release/acquire pair
   on the atomics makes the slot write visible. *)

let dummy = Value.Bool false
let mutex = Mutex.create ()
let table : int Value.Tbl.t = Value.Tbl.create 1024
let values : Value.t array Atomic.t = Atomic.make (Array.make 256 dummy)
let count = Atomic.make 0
let gen = Atomic.make 0

(* Must be called with [mutex] held. *)
let intern_locked v =
  match Value.Tbl.find_opt table v with
  | Some id -> id
  | None ->
      let n = Atomic.get count in
      let arr = Atomic.get values in
      let arr =
        if n < Array.length arr then arr
        else begin
          let bigger = Array.make (2 * Array.length arr) dummy in
          Array.blit arr 0 bigger 0 n;
          Atomic.set values bigger;
          bigger
        end
      in
      arr.(n) <- v;
      Value.Tbl.add table v n;
      Atomic.set count (n + 1);
      n

let intern v = Mutex.protect mutex (fun () -> intern_locked v)

(* One lock acquisition for a whole relation encode instead of one per
   cell. [f] must not call back into this module. *)
let with_interner f = Mutex.protect mutex (fun () -> f intern_locked)

let find_opt v = Mutex.protect mutex (fun () -> Value.Tbl.find_opt table v)
let value id = (Atomic.get values).(id)
let size () = Atomic.get count
let generation () = Atomic.get gen

let reset () =
  Mutex.protect mutex (fun () ->
      Value.Tbl.reset table;
      Atomic.set count 0;
      Atomic.incr gen)
