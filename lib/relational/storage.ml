(* Storage-engine toggle. Reading TSENS_STORAGE once at load mirrors how
   lib/exec reads TSENS_JOBS and lib/cache reads TSENS_CACHE; the CLI
   flips the ref afterwards for --storage. Row is the default and the
   correctness oracle: the columnar path must produce bit-identical
   results (pinned by test_storage's equivalence properties), so the
   toggle only ever changes speed. *)

type mode = Row | Columnar

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "columnar" | "column" | "col" -> Some Columnar
  | "row" | "rows" -> Some Row
  | _ -> None

let to_string = function Row -> "row" | Columnar -> "columnar"

let env_default =
  match Sys.getenv_opt "TSENS_STORAGE" with
  | None -> Row
  | Some s -> ( match of_string s with Some m -> m | None -> Row)

let current = ref env_default
let mode () = !current
let set_mode m = current := m
let is_columnar () = !current = Columnar

let with_mode m f =
  let saved = !current in
  current := m;
  Fun.protect ~finally:(fun () -> current := saved) f
