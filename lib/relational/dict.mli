(** The value dictionary of the columnar storage layer.

    Interns {!Value.t}s into dense immutable [int] ids; the columnar
    representation ({!Colrel}) stores relations as arrays of these ids
    and the integer-key join kernels compare and hash nothing else.
    Append-only: an id never changes meaning within a {!generation}, so
    version-keyed caches of encoded artifacts stay sound by
    construction. Domain-safe: interning is serialized, decoding is
    lock-free. *)

val intern : Value.t -> int
(** The id of a value, assigning the next dense id on first sight.
    Injective: distinct values get distinct ids. *)

val with_interner : ((Value.t -> int) -> 'a) -> 'a
(** [with_interner f] passes [f] an intern function that holds the
    dictionary lock for the whole call — one acquisition per relation
    encode instead of one per cell. [f] must not call back into this
    module. *)

val find_opt : Value.t -> int option
(** The id of a value if it has ever been interned, without interning
    it. [None] means no encoded relation contains the value — probe
    paths use this to answer "absent" without growing the dictionary. *)

val value : int -> Value.t
(** Decode an id. Only defined for ids returned by {!intern} in the
    current {!generation}. *)

val size : unit -> int
(** Number of interned values; ids live in [[0, size ())]. *)

val generation : unit -> int
(** Bumped by {!reset}. Encoded artifacts record the generation they
    were built under and are discarded on mismatch instead of decoding
    through the wrong mapping. *)

val reset : unit -> unit
(** Drop every interned value and bump {!generation}. For tests; must
    not race with concurrent encoding. *)
