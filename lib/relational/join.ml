(* All operators hash-partition the right side on the common attributes
   and stream the left side through it. The combined tuple layout is
   always: left tuple ++ (right tuple minus common attributes), matching
   [Schema.union left right].

   Above the parallel cutoff the binary operators switch to a
   partition-parallel plan: both sides are hash-partitioned on the
   join-key hash into one bucket per pool domain, bucket k of the left
   joins bucket k of the right on its own domain (equal keys always meet
   — they share a hash), and the per-partition results merge in bucket
   order at the barrier. Saturating count addition is associative and
   commutative and [Relation.create] canonicalizes, so outputs are
   bit-identical to the sequential plan at any job count. *)

let c_rows = Obs.counter "join.rows_emitted"
let c_sat = Obs.counter "count.saturations"
let g_groups = Obs.gauge "join.max_group_table_rows"

(* Emitting is the per-row hot path: only interpose on it when the sink
   is live, so the disabled cost stays at the operators' entry branches. *)
let instrument_emit emit =
  if not (Obs.enabled ()) then emit
  else fun tup cnt ->
    Obs.tick c_rows;
    if Count.is_saturated cnt then Obs.tick c_sat;
    emit tup cnt

(* Aggregation can saturate even when every emitted row is finite: a
   per-group sum crosses max_count inside the grouping table, which the
   emit instrumentation above never sees. Tick the saturation counter at
   the transition (both operands finite, sum saturated) so overflow that
   happens in group-by — not in emission — still reaches the report. *)
let add_tracked prev cnt =
  let sum = Count.add prev cnt in
  if
    Obs.enabled ()
    && Count.is_saturated sum
    && not (Count.is_saturated prev)
    && not (Count.is_saturated cnt)
  then Obs.tick c_sat;
  sum

type plan = {
  combined : Schema.t;
  common_left : int array; (* positions of common attrs in the left schema *)
  right_extra : int array; (* positions of right-only attrs in the right schema *)
  common_right : Schema.t; (* common attrs, left order; index key and probe agree *)
}

let make_plan left right =
  let common = Schema.inter left right in
  let combined = Schema.union left right in
  let right_only = Schema.diff right left in
  {
    combined;
    common_left = Schema.positions ~sub:common left;
    right_extra = Schema.positions ~sub:right_only right;
    common_right = common;
  }

(* The index key is the common schema *in left order* so that probing with
   a left-side projection matches. *)
let build_right_index plan right_rel =
  Index.build ~key:plan.common_right right_rel

let combine plan left_tup right_tup =
  Tuple.concat left_tup (Tuple.project plan.right_extra right_tup)

let stream_join a b emit =
  Obs.span "join.stream" @@ fun () ->
  let emit = instrument_emit emit in
  let plan = make_plan (Relation.schema a) (Relation.schema b) in
  let idx = build_right_index plan b in
  Relation.iter
    (fun ltup lcnt ->
      let key = Tuple.project plan.common_left ltup in
      Array.iter
        (fun (rtup, rcnt) ->
          emit (combine plan ltup rtup) (Count.mul lcnt rcnt))
        (Index.lookup idx key))
    a;
  plan.combined

module H = Tuple.Tbl

(* ------------------------------------------------------------------ *)
(* The partition-parallel core. [emit_partition] receives one partition
   id plus the per-partition probe driver and returns that partition's
   result; results are combined in partition order by the caller. The
   driver builds a local hash table of the right bucket and streams the
   left bucket through it — the same plan as [stream_join], confined to
   one bucket. *)

let partitioned plan a b emit_partition =
  let parts = Exec.jobs () in
  let project_keys positions rel =
    let rows = Relation.rows rel in
    let keys =
      Exec.parallel_map (fun (tup, _) -> Tuple.project positions tup) rows
    in
    let buckets = Exec.parallel_map (fun k -> Tuple.bucket k parts) keys in
    (rows, keys, buckets)
  in
  let right_positions =
    Schema.positions ~sub:plan.common_right (Relation.schema b)
  in
  let left = project_keys plan.common_left a in
  let right = project_keys right_positions b in
  let results = Array.make parts None in
  Exec.parallel_for ~chunks:parts 0 parts (fun p ->
      let drive emit =
        let rrows, rkeys, rbuckets = right in
        let index : (Tuple.t * Count.t) list H.t = H.create 64 in
        Array.iteri
          (fun j row ->
            if rbuckets.(j) = p then begin
              let prev = try H.find index rkeys.(j) with Not_found -> [] in
              H.replace index rkeys.(j) (row :: prev)
            end)
          rrows;
        let lrows, lkeys, lbuckets = left in
        Array.iteri
          (fun i (ltup, lcnt) ->
            if lbuckets.(i) = p then
              match H.find_opt index lkeys.(i) with
              | None -> ()
              | Some group ->
                  List.iter
                    (fun (rtup, rcnt) ->
                      emit (combine plan ltup rtup) (Count.mul lcnt rcnt))
                    group
          )
          lrows
      in
      results.(p) <- Some (emit_partition p drive));
  Array.to_list results |> List.filter_map Fun.id

(* Total distinct rows on both sides: the size the parallel cutoff is
   judged against. *)
let pair_size a b = Relation.distinct_count a + Relation.distinct_count b

(* Each binary operator dispatches on the storage mode up front: the
   columnar kernels (Coljoin) run the same logical plan on dictionary
   ids and are bit-identical to the row implementations below, which
   stay as the always-available oracle (and the default). *)

let natural_join_rows a b =
  if not (Exec.pays_off (pair_size a b)) then begin
    let acc = ref [] in
    let combined = stream_join a b (fun tup cnt -> acc := (tup, cnt) :: !acc) in
    Relation.create ~schema:combined (List.rev !acc)
  end
  else
    Obs.span "join.partition" @@ fun () ->
    let plan = make_plan (Relation.schema a) (Relation.schema b) in
    let per_partition =
      partitioned plan a b (fun _p drive ->
          let acc = ref [] in
          let emit = instrument_emit (fun tup cnt -> acc := (tup, cnt) :: !acc) in
          drive emit;
          List.rev !acc)
    in
    Relation.create ~schema:plan.combined (List.concat per_partition)

let natural_join a b =
  if Storage.is_columnar () then
    Obs.span "join.columnar" @@ fun () -> Coljoin.natural_join a b
  else natural_join_rows a b

let join_project_rows ~group a b positions =
  if not (Exec.pays_off (pair_size a b)) then begin
    let table = H.create 1024 in
    let emit tup cnt =
      let key = Tuple.project positions tup in
      let prev = try H.find table key with Not_found -> 0 in
      H.replace table key (add_tracked prev cnt)
    in
    let (_ : Schema.t) = stream_join a b emit in
    Obs.observe g_groups (H.length table);
    Relation.create ~schema:group (H.fold (fun t c acc -> (t, c) :: acc) table [])
  end
  else begin
    let plan = make_plan (Relation.schema a) (Relation.schema b) in
    (* Group keys need not contain the join key, so one group can span
       partitions: each partition aggregates its own table and
       [Relation.create]'s normalization sums the spans — order-free
       because saturating addition is. The gauge consequently reports
       the largest per-partition table. *)
    let per_partition =
      partitioned plan a b (fun _p drive ->
          let table = H.create 1024 in
          let grouping tup cnt =
            let key = Tuple.project positions tup in
            let prev = try H.find table key with Not_found -> 0 in
            H.replace table key (add_tracked prev cnt)
          in
          drive (instrument_emit grouping);
          Obs.observe g_groups (H.length table);
          H.fold (fun t c acc -> (t, c) :: acc) table [])
    in
    Relation.create ~schema:group (List.concat per_partition)
  end

let join_project ~group a b =
  Obs.span "join.project" @@ fun () ->
  let combined = Schema.union (Relation.schema a) (Relation.schema b) in
  if not (Schema.subset group combined) then
    Errors.schema_errorf "join_project: %a not a subset of joined schema %a"
      Schema.pp group Schema.pp combined;
  if Storage.is_columnar () then Coljoin.join_project ~group a b
  else
    let positions = Schema.positions ~sub:group combined in
    join_project_rows ~group a b positions

let join_all = function
  | [] -> invalid_arg "Join.join_all: empty list"
  | r :: rest -> List.fold_left natural_join r rest

(* Sort-merge: both sides keyed by their common-attribute projection and
   sorted; equal-key runs pair up as block cross products. *)
let merge_join a b =
  Obs.span "join.merge" @@ fun () ->
  let plan = make_plan (Relation.schema a) (Relation.schema b) in
  let keyed rel positions =
    let rows = Relation.rows rel in
    let arr =
      Array.map (fun (tup, cnt) -> (Tuple.project positions tup, tup, cnt)) rows
    in
    Array.sort (fun (k1, t1, _) (k2, t2, _) ->
        match Tuple.compare k1 k2 with 0 -> Tuple.compare t1 t2 | c -> c)
      arr;
    arr
  in
  let right_positions =
    Schema.positions ~sub:plan.common_right (Relation.schema b)
  in
  let left = keyed a plan.common_left in
  let right = keyed b right_positions in
  let key (k, _, _) = k in
  (* End of the run of equal keys starting at [i]. *)
  let run_end arr i =
    let k = key arr.(i) in
    let j = ref (i + 1) in
    while !j < Array.length arr && Tuple.equal (key arr.(!j)) k do
      incr j
    done;
    !j
  in
  let out = ref [] in
  (* Instrument each row as it is emitted rather than re-walking the
     accumulated output afterwards. *)
  let emit = instrument_emit (fun tup cnt -> out := (tup, cnt) :: !out) in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length left && !j < Array.length right do
    let c = Tuple.compare (key left.(!i)) (key right.(!j)) in
    if c < 0 then i := run_end left !i
    else if c > 0 then j := run_end right !j
    else begin
      let i_end = run_end left !i and j_end = run_end right !j in
      for li = !i to i_end - 1 do
        let _, ltup, lcnt = left.(li) in
        for rj = !j to j_end - 1 do
          let _, rtup, rcnt = right.(rj) in
          emit (combine plan ltup rtup) (Count.mul lcnt rcnt)
        done
      done;
      i := i_end;
      j := j_end
    end
  done;
  Relation.create ~schema:plan.combined !out

(* Greedy connected ordering: start from the widest relation and keep
   picking a relation sharing attributes with the accumulated schema
   (most shared first), falling back to the widest remaining one when
   only cross products are left. The result is order-independent; the
   ordering only controls intermediate sizes — deferring cross products
   is the difference between |R|+|S| and |R|·|S| intermediates. *)
let connected_order rels =
  let rels = Array.of_list rels in
  let used = Array.make (Array.length rels) false in
  let pick better =
    let best = ref (-1) in
    Array.iteri
      (fun i r ->
        if (not used.(i)) && (!best < 0 || better r rels.(!best)) then best := i)
      rels;
    !best
  in
  let arity r = Schema.arity (Relation.schema r) in
  let ordered = ref [] in
  let acc_schema = ref Schema.empty in
  let take i =
    used.(i) <- true;
    acc_schema := Schema.union !acc_schema (Relation.schema rels.(i));
    ordered := rels.(i) :: !ordered
  in
  if Array.length rels > 0 then take (pick (fun a b -> arity a > arity b));
  for _ = 2 to Array.length rels do
    let overlap r = Schema.arity (Schema.inter (Relation.schema r) !acc_schema) in
    let i = pick (fun a b -> overlap a > overlap b) in
    let i =
      (* All remaining are disjoint from the accumulator: defer the cross
         product to the widest one. *)
      if overlap rels.(i) > 0 then i else pick (fun a b -> arity a > arity b)
    in
    take i
  done;
  List.rev !ordered

let join_project_all ~group rels =
  Obs.span "join.project_all" @@ fun () ->
  match connected_order rels with
  | [] -> invalid_arg "Join.join_project_all: empty list"
  | [ r ] -> Relation.project group r
  | first :: rest ->
      (* Attributes needed downstream of position i: anything in [group]
         or in a relation joined after i. Projecting intermediates onto
         this set preserves the final grouped counts. *)
      let rec loop acc = function
        | [] -> Relation.project group acc
        | r :: later ->
            let still_needed =
              List.fold_left
                (fun s rel -> Schema.union s (Relation.schema rel))
                group later
            in
            let keep =
              Schema.inter
                (Schema.union (Relation.schema acc) (Relation.schema r))
                still_needed
            in
            loop (join_project ~group:keep acc r) later
      in
      loop first rest

let semijoin a b =
  let common = Schema.inter (Relation.schema a) (Relation.schema b) in
  let positions = Schema.positions ~sub:common (Relation.schema a) in
  let idx = Index.build ~key:common b in
  Relation.filter
    (fun _schema tup ->
      Index.group_count idx (Tuple.project positions tup) > 0)
    a

let count_join a b =
  Obs.span "join.count" @@ fun () ->
  if Storage.is_columnar () then Coljoin.count_join a b
  else if not (Exec.pays_off (pair_size a b)) then begin
    let total = ref Count.zero in
    let plan = make_plan (Relation.schema a) (Relation.schema b) in
    let idx = build_right_index plan b in
    Relation.iter
      (fun ltup lcnt ->
        let key = Tuple.project plan.common_left ltup in
        let group = Index.group_count idx key in
        total := add_tracked !total (Count.mul lcnt group))
      a;
    !total
  end
  else begin
    let plan = make_plan (Relation.schema a) (Relation.schema b) in
    let per_partition =
      partitioned plan a b (fun _p drive ->
          let total = ref Count.zero in
          drive (fun _tup cnt -> total := add_tracked !total cnt);
          !total)
    in
    List.fold_left add_tracked Count.zero per_partition
  end
