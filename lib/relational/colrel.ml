(* Dictionary-encoded columnar relations: the storage format behind
   TSENS_STORAGE=columnar. A relation becomes one [int array] per
   attribute (cells are {!Dict} ids) plus a parallel multiplicity array,
   so the join and group-by kernels compare, hash and move nothing but
   immediate ints; values are decoded back to [Value.t] only at the
   row-relation boundary ({!decode_rows}), i.e. when a result becomes a
   {!Relation.t} again for reports, CSV export or the row-mode oracle.

   The row set of a [t] is distinct (one entry per distinct tuple) —
   constructors either start from normalized relation rows or group
   before building. [generation] records the {!Dict} generation the ids
   were assigned under; readers must discard a [t] whose generation is
   stale (the dictionary was reset) instead of decoding through the
   wrong mapping. *)

type t = {
  schema : Schema.t;
  nrows : int;
  cols : int array array; (* arity columns of length nrows, column-major *)
  counts : Count.t array; (* length nrows *)
  generation : int;
}

let schema t = t.schema
let nrows t = t.nrows
let col t j = t.cols.(j)
let count t i = t.counts.(i)
let counts t = t.counts
let generation t = t.generation
let arity t = Array.length t.cols

let make ~schema ~cols ~counts =
  let nrows = Array.length counts in
  assert (Array.for_all (fun c -> Array.length c = nrows) cols);
  assert (Array.length cols = Schema.arity schema);
  { schema; nrows; cols; counts; generation = Dict.generation () }

(* Encode rows as handed over (no grouping): the input is either already
   normalized relation rows or raw pairs that [group_self] merges next. *)
let of_pairs schema (pairs : (Tuple.t * Count.t) array) =
  let arity = Schema.arity schema in
  let n = Array.length pairs in
  let cols = Array.init arity (fun _ -> Array.make n 0) in
  let counts = Array.make n 0 in
  Dict.with_interner (fun intern ->
      for i = 0 to n - 1 do
        let tup, cnt = pairs.(i) in
        for j = 0 to arity - 1 do
          cols.(j).(i) <- intern (Tuple.get tup j)
        done;
        counts.(i) <- cnt
      done);
  { schema; nrows = n; cols; counts; generation = Dict.generation () }

let decode_row t i =
  Array.init (arity t) (fun j -> Dict.value t.cols.(j).(i))

let decode_rows t =
  Array.init t.nrows (fun i -> (decode_row t i, t.counts.(i)))

(* Rows gathered through a permutation (or any index selection). *)
let permute t order =
  let gather col = Array.map (fun i -> col.(i)) order in
  {
    t with
    nrows = Array.length order;
    cols = Array.map gather t.cols;
    counts = Array.map (fun i -> t.counts.(i)) order;
  }

(* ------------------------------------------------------------------ *)
(* Integer-domain group-by: the γ kernel. Groups the rows by the listed
   source columns, sums multiplicities (saturating), and rebuilds dense
   columns from one representative per group. Non-positive totals are
   dropped, mirroring the row engine's normalization guard. *)

let group_by ~schema positions t =
  let k = Array.length positions in
  let n = t.nrows in
  if k = 0 then begin
    (* γ over no attributes: one nullary row carrying the bag total. *)
    let total = Array.fold_left Count.add Count.zero t.counts in
    if n = 0 || total <= 0 then
      { schema; nrows = 0; cols = [||]; counts = [||];
        generation = t.generation }
    else
      { schema; nrows = 1; cols = [||]; counts = [| total |];
        generation = t.generation }
  end
  else if k = 1 then begin
    let src = t.cols.(positions.(0)) in
    let tab = Intkey.Itab.create n in
    for i = 0 to n - 1 do
      Intkey.Itab.add_count tab src.(i) t.counts.(i)
    done;
    let ids = Intkey.Ibuf.create (Intkey.Itab.length tab) in
    let counts = Intkey.Ibuf.create (Intkey.Itab.length tab) in
    Intkey.Itab.iter
      (fun id c ->
        if c > 0 then begin
          Intkey.Ibuf.push ids id;
          Intkey.Ibuf.push counts c
        end)
      tab;
    {
      schema;
      nrows = Intkey.Ibuf.length ids;
      cols = [| Intkey.Ibuf.to_array ids |];
      counts = Intkey.Ibuf.to_array counts;
      generation = t.generation;
    }
  end
  else begin
    let srcs = Array.map (fun p -> t.cols.(p)) positions in
    let kd = Intkey.Keydict.create ~arity:k n in
    let sums = Intkey.Ibuf.create n in
    let scratch = Array.make k 0 in
    for i = 0 to n - 1 do
      for j = 0 to k - 1 do
        scratch.(j) <- srcs.(j).(i)
      done;
      let g = Intkey.Keydict.lookup_or_add kd scratch in
      if g = Intkey.Ibuf.length sums then Intkey.Ibuf.push sums t.counts.(i)
      else Intkey.Ibuf.set sums g (Count.add (Intkey.Ibuf.get sums g) t.counts.(i))
    done;
    let groups = Intkey.Keydict.length kd in
    let keep = Intkey.Ibuf.create groups in
    for g = 0 to groups - 1 do
      if Intkey.Ibuf.get sums g > 0 then Intkey.Ibuf.push keep g
    done;
    let kept = Intkey.Ibuf.to_array keep in
    let cols =
      Array.init k (fun j ->
          Array.map (fun g -> Intkey.Keydict.get kd g j) kept)
    in
    let counts = Array.map (fun g -> Intkey.Ibuf.get sums g) kept in
    { schema; nrows = Array.length kept; cols; counts;
      generation = t.generation }
  end

let group_self t =
  group_by ~schema:t.schema (Array.init (arity t) Fun.id) t
