module M = Map.Make (String)

type t = Relation.t M.t

let empty = M.empty
let of_list l = List.fold_left (fun m (name, r) -> M.add name r m) M.empty l
let add ~name rel db = M.add name rel db

let find name db =
  match M.find_opt name db with
  | Some r -> r
  | None -> Errors.data_errorf "unknown relation %s" name

let find_opt = M.find_opt
let mem = M.mem
let names db = M.fold (fun name _ acc -> name :: acc) db [] |> List.rev

let update ~name f db =
  let current = find name db in
  M.add name (f current) db

let fold f db init = M.fold f db init

let versions db =
  M.fold (fun name r acc -> (name, Relation.version r) :: acc) db []
  |> List.rev

let total_tuples db =
  M.fold (fun _ r acc -> Count.add acc (Relation.cardinality r)) db Count.zero

let pp ppf db =
  Format.fprintf ppf "@[<v>";
  M.iter
    (fun name r ->
      Format.fprintf ppf "%s %a@," name Relation.pp_summary r)
    db;
  Format.fprintf ppf "@]"
