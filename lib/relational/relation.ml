type t = {
  schema : Schema.t;
  rows : (Tuple.t * Count.t) array;
  version : int;
  enc : Colrel.t option Atomic.t;
      (* Memoized columnar encoding, filled on first use under
         TSENS_STORAGE=columnar. Per-value, not shared across derived
         relations (rename/scale/filter change what the encoding would
         be), so every constructor mints a fresh cell. Atomic because
         joins encode on worker domains; the race is benign — both
         encodings are correct, one wins. *)
}

(* Version stamps are allocated from one process-wide counter so that no
   two constructed relations ever share a stamp. Relations are
   immutable, so "mutation" (add/remove/import) always builds a new
   value with a fresh stamp — a cache entry keyed by version can
   therefore never be stale, only unreachable (and LRU eviction reclaims
   those). Atomic because relations are also built on worker domains. *)
let version_counter = Atomic.make 0
let next_version () = Atomic.fetch_and_add version_counter 1
let version r = r.version

let mk schema rows =
  { schema; rows; version = next_version (); enc = Atomic.make None }

(* ------------------------------------------------------------------ *)
(* The columnar boundary. [encoded] is the encode direction (memoized on
   the relation, rebuilt if the dictionary generation moved);
   [of_encoded] is the decode direction for kernel outputs, which are
   distinct but unsorted — sorting by [Tuple.compare] is the only
   canonicalization they still need, and the sorted permutation is
   applied to the columns too so the result is born encoded (a chain of
   columnar joins never re-interns). *)

let encoded r =
  match Atomic.get r.enc with
  | Some c when Colrel.generation c = Dict.generation () -> c
  | Some _ | None ->
      let c = Colrel.of_pairs r.schema r.rows in
      Atomic.set r.enc (Some c);
      c

let of_encoded c =
  let pairs = Colrel.decode_rows c in
  let order = Array.init (Array.length pairs) Fun.id in
  Array.sort
    (fun i j -> Tuple.compare (fst pairs.(i)) (fst pairs.(j)))
    order;
  {
    schema = Colrel.schema c;
    rows = Array.map (fun i -> pairs.(i)) order;
    version = next_version ();
    enc = Atomic.make (Some (Colrel.permute c order));
  }

module T = Tuple.Tbl

(* Group an array of (tuple, count) pairs: sum multiplicities per
   distinct tuple, drop non-positive totals, sort. This is the merge
   half of the canonical form all constructors funnel through.

   Above the cutoff the pairs are hash-partitioned and each partition is
   grouped on its own domain: a tuple's partition is a function of its
   hash, so no key spans two tables, and saturating addition is
   associative and commutative, so per-partition sums equal the
   sequential ones — the sorted result is bit-identical to jobs=1. *)
let group_into table pairs lo hi keep =
  for i = lo to hi - 1 do
    if keep i then begin
      let tup, cnt = pairs.(i) in
      let prev = try T.find table tup with Not_found -> 0 in
      T.replace table tup (Count.add prev cnt)
    end
  done

let table_rows table =
  T.fold (fun tup cnt acc -> if cnt > 0 then (tup, cnt) :: acc else acc)
    table []

(* The columnar path encodes once and groups in the integer domain —
   same spec (sum per distinct tuple, drop non-positive, sort), so the
   output is bit-identical to the row path; saturating addition is
   order-free, so the two paths' different accumulation orders cannot
   diverge even at the saturation point. *)
let grouped schema pairs =
  if Storage.is_columnar () then
    of_encoded (Colrel.group_self (Colrel.of_pairs schema pairs))
  else begin
    let n = Array.length pairs in
    let rows =
      if not (Exec.pays_off n) then begin
        let table = T.create (max 16 n) in
        group_into table pairs 0 n (fun _ -> true);
        Array.of_list (table_rows table)
      end
      else begin
        let parts = Exec.jobs () in
        let buckets = Exec.parallel_map (fun (tup, _) -> Tuple.bucket tup parts) pairs in
        let groups = Array.make parts [] in
        Exec.parallel_for ~chunks:parts 0 parts (fun p ->
            let table = T.create (max 16 (n / parts)) in
            group_into table pairs 0 n (fun i -> buckets.(i) = p);
            groups.(p) <- table_rows table);
        Array.of_list (List.concat (Array.to_list groups))
      end
    in
    Array.sort (fun (a, _) (b, _) -> Tuple.compare a b) rows;
    mk schema rows
  end

(* Merge duplicate tuples, drop zero counts, sort: the canonical form all
   constructors funnel through. *)
let normalize schema pairs = grouped schema (Array.of_list pairs)

let check_row schema (tup, cnt) =
  if Tuple.arity tup <> Schema.arity schema then
    Errors.data_errorf "row arity %d does not match schema %a"
      (Tuple.arity tup) Schema.pp schema;
  if cnt <= 0 then
    Errors.data_errorf "non-positive multiplicity %d for tuple %a" cnt
      Tuple.pp tup

let create ~schema pairs =
  List.iter (check_row schema) pairs;
  normalize schema pairs

let of_tuples ~schema tuples = create ~schema (List.map (fun t -> (t, 1)) tuples)

let of_rows ~schema rows =
  of_tuples ~schema (List.map Tuple.of_list rows)

let empty schema = mk schema [||]

let schema r = r.schema
let rows r = r.rows

let cardinality r =
  Array.fold_left (fun acc (_, c) -> Count.add acc c) Count.zero r.rows

let distinct_count r = Array.length r.rows
let is_empty r = Array.length r.rows = 0

(* Rows are sorted, so point lookups binary-search. *)
let find_index tup r =
  let lo = ref 0 and hi = ref (Array.length r.rows - 1) and res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Tuple.compare (fst r.rows.(mid)) tup in
    if c = 0 then begin
      res := mid;
      lo := !hi + 1
    end
    else if c < 0 then lo := mid + 1
    else hi := mid - 1
  done;
  !res

let mem tup r = find_index tup r >= 0
let count_of tup r = match find_index tup r with -1 -> 0 | i -> snd r.rows.(i)

let fold f r init =
  Array.fold_left (fun acc (tup, cnt) -> f tup cnt acc) init r.rows

let iter f r = Array.iter (fun (tup, cnt) -> f tup cnt) r.rows

let c_projected = Obs.counter "relation.rows_projected"

let project target r =
  Obs.span "relation.project" @@ fun () ->
  Obs.add c_projected (Array.length r.rows);
  if not (Schema.subset target r.schema) then
    Errors.schema_errorf "project: %a is not a subset of %a" Schema.pp target
      Schema.pp r.schema;
  let positions =
    Schema.positions ~sub:target r.schema
  in
  if Storage.is_columnar () then
    (* Column selection is array indexing and the group-by runs on ids:
       no per-row tuple is ever built. *)
    of_encoded (Colrel.group_by ~schema:target positions (encoded r))
  else begin
    let key (tup, cnt) = (Tuple.project positions tup, cnt) in
    let keyed =
      if Exec.pays_off (Array.length r.rows) then Exec.parallel_map key r.rows
      else Array.map key r.rows
    in
    grouped target keyed
  end

let filter pred r =
  let rows =
    Array.to_list r.rows |> List.filter (fun (tup, _) -> pred r.schema tup)
  in
  mk r.schema (Array.of_list rows)

let rename mapping r = mk (Schema.rename mapping r.schema) r.rows

let scale factor r =
  if factor <= 0 then Errors.data_errorf "scale: non-positive factor %d" factor;
  mk r.schema (Array.map (fun (t, c) -> (t, Count.mul c factor)) r.rows)

let add ?(count = 1) tup r =
  check_row r.schema (tup, count);
  normalize r.schema ((tup, count) :: Array.to_list r.rows)

(* Clamp semantics: removing more copies than are stored empties the row
   and leaves the rest of the relation untouched. The alternative —
   raising — would make the naive sensitivity oracle's "delete one
   candidate" probes partial, so over-removal is defined, not an error;
   only a non-positive [count] is rejected. Pinned by
   test_relation's remove suite. *)
let remove ?(count = 1) tup r =
  if count <= 0 then
    Errors.data_errorf "remove: non-positive count %d for tuple %a" count
      Tuple.pp tup;
  match find_index tup r with
  | -1 -> r
  | i ->
      let existing = snd r.rows.(i) in
      let remaining = if count >= existing then 0 else existing - count in
      let rows = Array.to_list r.rows in
      let rows =
        List.filteri (fun j _ -> j <> i) rows
        |> fun rest ->
        if remaining > 0 then (tup, remaining) :: rest else rest
      in
      normalize r.schema rows

let max_row r =
  Array.fold_left
    (fun best (tup, cnt) ->
      match best with
      | None -> Some (tup, cnt)
      | Some (_, best_cnt) -> if cnt > best_cnt then Some (tup, cnt) else best)
    None r.rows

let max_frequency ~over r =
  if Schema.arity over = 0 then cardinality r
  else
    let grouped = project over r in
    match max_row grouped with None -> 0 | Some (_, c) -> c

let active_domain attr r =
  let pos = Schema.index attr r.schema in
  let seen = Value.Tbl.create 64 in
  Array.iter (fun (tup, _) -> Value.Tbl.replace seen (Tuple.get tup pos) ()) r.rows;
  Value.Tbl.fold (fun v () acc -> v :: acc) seen []
  |> List.sort Value.compare

let equal a b =
  Schema.equal a.schema b.schema
  && Array.length a.rows = Array.length b.rows
  && Array.for_all2
       (fun (t1, c1) (t2, c2) -> Tuple.equal t1 t2 && Count.equal c1 c2)
       a.rows b.rows

(* The identity shortcut matters for the cache layer: [Cq.instance]
   reorders every atom's columns, and without it each call would mint
   fresh relation values (fresh version stamps) even when the stored
   schema already matches, defeating version-keyed memoization. Rows are
   already canonical, so returning [r] unchanged is exact. *)
let reorder target r =
  if Schema.equal target r.schema then r
  else begin
    if not (Schema.equal_as_sets target r.schema) then
      Errors.schema_errorf "reorder: %a and %a hold different attributes"
        Schema.pp target Schema.pp r.schema;
    let positions = Schema.positions ~sub:target r.schema in
    normalize target
      (Array.to_list r.rows
      |> List.map (fun (tup, cnt) -> (Tuple.project positions tup, cnt)))
  end

let equal_semantic a b =
  Schema.equal_as_sets a.schema b.schema && equal a (reorder a.schema b)

let pp ppf r =
  Format.fprintf ppf "@[<v>%a | cnt@," Schema.pp r.schema;
  Array.iter
    (fun (tup, cnt) -> Format.fprintf ppf "%a | %a@," Tuple.pp tup Count.pp cnt)
    r.rows;
  Format.fprintf ppf "@]"

let pp_summary ppf r =
  Format.fprintf ppf "%a: %d distinct, %a total" Schema.pp r.schema
    (distinct_count r) Count.pp (cardinality r)
