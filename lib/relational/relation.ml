type t = { schema : Schema.t; rows : (Tuple.t * Count.t) array }

(* Merge duplicate tuples, drop zero counts, sort: the canonical form all
   constructors funnel through. *)
let normalize schema pairs =
  let table = Hashtbl.create (max 16 (List.length pairs)) in
  List.iter
    (fun (tup, cnt) ->
      let prev = try Hashtbl.find table tup with Not_found -> 0 in
      Hashtbl.replace table tup (Count.add prev cnt))
    pairs;
  let rows =
    Hashtbl.fold (fun tup cnt acc -> if cnt > 0 then (tup, cnt) :: acc else acc)
      table []
  in
  let rows = Array.of_list rows in
  Array.sort (fun (a, _) (b, _) -> Tuple.compare a b) rows;
  { schema; rows }

let check_row schema (tup, cnt) =
  if Tuple.arity tup <> Schema.arity schema then
    Errors.data_errorf "row arity %d does not match schema %a"
      (Tuple.arity tup) Schema.pp schema;
  if cnt <= 0 then
    Errors.data_errorf "non-positive multiplicity %d for tuple %a" cnt
      Tuple.pp tup

let create ~schema pairs =
  List.iter (check_row schema) pairs;
  normalize schema pairs

let of_tuples ~schema tuples = create ~schema (List.map (fun t -> (t, 1)) tuples)

let of_rows ~schema rows =
  of_tuples ~schema (List.map Tuple.of_list rows)

let empty schema = { schema; rows = [||] }

let schema r = r.schema
let rows r = r.rows

let cardinality r =
  Array.fold_left (fun acc (_, c) -> Count.add acc c) Count.zero r.rows

let distinct_count r = Array.length r.rows
let is_empty r = Array.length r.rows = 0

(* Rows are sorted, so point lookups binary-search. *)
let find_index tup r =
  let lo = ref 0 and hi = ref (Array.length r.rows - 1) and res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Tuple.compare (fst r.rows.(mid)) tup in
    if c = 0 then begin
      res := mid;
      lo := !hi + 1
    end
    else if c < 0 then lo := mid + 1
    else hi := mid - 1
  done;
  !res

let mem tup r = find_index tup r >= 0
let count_of tup r = match find_index tup r with -1 -> 0 | i -> snd r.rows.(i)

let fold f r init =
  Array.fold_left (fun acc (tup, cnt) -> f tup cnt acc) init r.rows

let iter f r = Array.iter (fun (tup, cnt) -> f tup cnt) r.rows

let c_projected = Obs.counter "relation.rows_projected"

let project target r =
  Obs.span "relation.project" @@ fun () ->
  Obs.add c_projected (Array.length r.rows);
  if not (Schema.subset target r.schema) then
    Errors.schema_errorf "project: %a is not a subset of %a" Schema.pp target
      Schema.pp r.schema;
  let positions =
    Schema.positions ~sub:target r.schema
  in
  let table = Hashtbl.create (max 16 (Array.length r.rows)) in
  Array.iter
    (fun (tup, cnt) ->
      let key = Tuple.project positions tup in
      let prev = try Hashtbl.find table key with Not_found -> 0 in
      Hashtbl.replace table key (Count.add prev cnt))
    r.rows;
  let out = Hashtbl.fold (fun tup cnt acc -> (tup, cnt) :: acc) table [] in
  let out = Array.of_list out in
  Array.sort (fun (a, _) (b, _) -> Tuple.compare a b) out;
  { schema = target; rows = out }

let filter pred r =
  let rows =
    Array.to_list r.rows |> List.filter (fun (tup, _) -> pred r.schema tup)
  in
  { schema = r.schema; rows = Array.of_list rows }

let rename mapping r = { r with schema = Schema.rename mapping r.schema }

let scale factor r =
  if factor <= 0 then Errors.data_errorf "scale: non-positive factor %d" factor;
  { r with rows = Array.map (fun (t, c) -> (t, Count.mul c factor)) r.rows }

let add ?(count = 1) tup r =
  check_row r.schema (tup, count);
  normalize r.schema ((tup, count) :: Array.to_list r.rows)

let remove ?(count = 1) tup r =
  match find_index tup r with
  | -1 -> r
  | i ->
      let existing = snd r.rows.(i) in
      let remaining = existing - count in
      let rows = Array.to_list r.rows in
      let rows =
        List.filteri (fun j _ -> j <> i) rows
        |> fun rest ->
        if remaining > 0 then (tup, remaining) :: rest else rest
      in
      normalize r.schema rows

let max_row r =
  Array.fold_left
    (fun best (tup, cnt) ->
      match best with
      | None -> Some (tup, cnt)
      | Some (_, best_cnt) -> if cnt > best_cnt then Some (tup, cnt) else best)
    None r.rows

let max_frequency ~over r =
  if Schema.arity over = 0 then cardinality r
  else
    let grouped = project over r in
    match max_row grouped with None -> 0 | Some (_, c) -> c

let active_domain attr r =
  let pos = Schema.index attr r.schema in
  let seen = Hashtbl.create 64 in
  Array.iter (fun (tup, _) -> Hashtbl.replace seen (Tuple.get tup pos) ()) r.rows;
  Hashtbl.fold (fun v () acc -> v :: acc) seen []
  |> List.sort Value.compare

let equal a b =
  Schema.equal a.schema b.schema
  && Array.length a.rows = Array.length b.rows
  && Array.for_all2
       (fun (t1, c1) (t2, c2) -> Tuple.equal t1 t2 && Count.equal c1 c2)
       a.rows b.rows

let reorder target r =
  if not (Schema.equal_as_sets target r.schema) then
    Errors.schema_errorf "reorder: %a and %a hold different attributes"
      Schema.pp target Schema.pp r.schema;
  let positions = Schema.positions ~sub:target r.schema in
  normalize target
    (Array.to_list r.rows
    |> List.map (fun (tup, cnt) -> (Tuple.project positions tup, cnt)))

let equal_semantic a b =
  Schema.equal_as_sets a.schema b.schema && equal a (reorder a.schema b)

let pp ppf r =
  Format.fprintf ppf "@[<v>%a | cnt@," Schema.pp r.schema;
  Array.iter
    (fun (tup, cnt) -> Format.fprintf ppf "%a | %a@," Tuple.pp tup Count.pp cnt)
    r.rows;
  Format.fprintf ppf "@]"

let pp_summary ppf r =
  Format.fprintf ppf "%a: %d distinct, %a total" Schema.pp r.schema
    (distinct_count r) Count.pp (cardinality r)
