(** Atomic attribute values.

    Values are immutable and totally ordered; the order is used by
    sort-merge joins and by deterministic output formatting. Comparisons
    across constructors order [Int < Str < Bool] — mixing types in one
    attribute is legal but discouraged. *)

type t =
  | Int of int
  | Str of string
  | Bool of bool

val int : int -> t
val str : string -> t
val bool : bool -> t

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Structural hash, consistent with {!equal}. *)

module Tbl : Hashtbl.S with type key = t
(** Hash tables keyed by {!hash}/{!equal}. *)

val as_int : t -> int option
(** [as_int v] is [Some n] iff [v = Int n]. *)

val as_str : t -> string option
val as_bool : t -> bool option

val to_string : t -> string
(** Unambiguous rendering: ints bare, strings unquoted (they never start
    with a digit in generated workloads), bools as [true]/[false]. *)

val of_string : string -> t
(** Best-effort inverse of {!to_string}: parses ints and bools, falls back
    to [Str]. *)

val pp : Format.formatter -> t -> unit
