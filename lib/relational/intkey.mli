(** Integer-key hashing machinery for the columnar kernels: allocation-
    free open-addressing tables over dictionary ids, an FNV-1a composite-
    key interner, and the avalanche mixer every integer bucket decision
    routes through. *)

val mix : int -> int
(** splitmix64-style finalizer, non-negative. Dictionary ids are dense
    sequential ints; mixing spreads them over all bits before a slot or
    partition is taken modulo a power of two (or a job count). *)

(** Growable int buffer — the kernels' output accumulator. *)
module Ibuf : sig
  type t

  val create : int -> t
  val push : t -> int -> unit
  val length : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val to_array : t -> int array
end

(** Open-addressing [int -> int] table: linear probing, power-of-two
    capacity, no boxing. Keys must be non-negative (every id space the
    kernels use is). *)
module Itab : sig
  type t

  val create : int -> t
  (** [create hint] sizes for about [hint] keys. *)

  val find : t -> int -> default:int -> int
  val set : t -> int -> int -> unit

  val exchange : t -> int -> int -> default:int -> int
  (** [exchange t k v ~default] stores [v] under [k] and returns the
      previous value ([default] if absent) — one probe, used to thread
      the chained row lists of the hash-join build side. *)

  val add_count : t -> int -> Count.t -> unit
  (** Accumulate a multiplicity under [k] with saturating addition. *)

  val length : t -> int
  val iter : (int -> int -> unit) -> t -> unit
  val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
end

(** Interns fixed-arity int vectors (multi-column join/group keys) into
    dense ids — FNV-1a-mixed, compared component-wise — so multi-column
    keys reduce to the same single-int kernels as single-column ones. *)
module Keydict : sig
  type t

  val create : arity:int -> int -> t
  (** [create ~arity hint] for keys of [arity] components, sized for
      about [hint] distinct keys. *)

  val lookup_or_add : t -> int array -> int
  (** Dense id of the key, interning on first sight. The array is
      caller-owned scratch of length [arity]; its contents are copied. *)

  val lookup : t -> int array -> int
  (** Dense id, or [-1] if the key was never interned. *)

  val length : t -> int

  val get : t -> int -> int -> int
  (** [get t id j] is component [j] of interned key [id]. *)
end
