(** Hash indexes over a sub-schema of a relation.

    An index groups the rows of a relation by their projection onto a key
    schema. Joins and semi-joins probe it; the grouped counts double as
    frequency statistics. *)

type t

val build : key:Schema.t -> Relation.t -> t
(** Raises {!Errors.Schema_error} if [key] is not a subset of the
    relation's schema. An empty [key] puts every row in one group. *)

val key_schema : t -> Schema.t
val source_schema : t -> Schema.t

val lookup : t -> Tuple.t -> (Tuple.t * Count.t) array
(** Rows (full tuples of the source relation) whose key projection equals
    the given key tuple; [[||]] if none. The array is owned by the index:
    callers must not mutate it. *)

val group_count : t -> Tuple.t -> Count.t
(** Summed multiplicity of the group, 0 if the key is absent. *)

val max_group_count : t -> Count.t
(** Largest group multiplicity — [mf] over the key schema. 0 if empty. *)

val iter_groups : (Tuple.t -> (Tuple.t * Count.t) array -> unit) -> t -> unit

val approx_words : t -> int
(** Rough retained size in words, for cache weighting. Never decodes a
    columnar index. *)
