(** Integer-key join kernels over the columnar storage.

    The [TSENS_STORAGE=columnar] implementations behind {!Join}'s
    dispatch: relations are encoded once into {!Colrel} form, join keys
    collapse to single ints (raw {!Dict} ids for one-column keys, dense
    {!Intkey.Keydict} ids otherwise), and the hash build/probe loops run
    over open-addressing int tables. Results are bit-identical to the
    row kernels at every job count; above the parallel cutoff the
    kernels radix-partition by mixed key id onto the {!Exec} pool. *)

val natural_join : Relation.t -> Relation.t -> Relation.t
(** Bag natural join; counted cross product on disjoint schemas. *)

val join_project : group:Schema.t -> Relation.t -> Relation.t -> Relation.t
(** Fused γ[group](a ⋈ b): matches stream into an integer-domain
    group-by without materializing the join. [group] must be a subset of
    the union of the operand schemas. *)

val count_join : Relation.t -> Relation.t -> Count.t
(** Bag cardinality of the join, computed without materializing rows.
    Saturating. *)
