(* Integer-key join kernels over the columnar storage: the
   TSENS_STORAGE=columnar implementations that Join dispatches to. Both
   sides are encoded once ({!Relation.encoded}, memoized), join keys
   become single ints — the raw dictionary id for one-column keys, a
   dense {!Intkey.Keydict} id for multi-column keys (built over the
   right side, probed by the left; a probe miss is a guaranteed
   non-match) — and the build/probe loops run over open-addressing int
   tables with no boxed value in sight. Tuples reappear only when a
   result decodes back through {!Relation.of_encoded}.

   Above the parallel cutoff the kernels radix-partition both sides by
   the mixed key id (equal keys land in the same partition by
   construction) and run one partition per pool task, mirroring the row
   engine's partition-parallel plan; per-partition results merge in
   partition order. Every output is canonicalized the same way as the
   row path (saturating order-free count sums, non-positive groups
   dropped, rows sorted by [Tuple.compare]), so results are
   bit-identical to the row kernels at any job count — pinned by
   test_storage's equivalence properties. *)

let c_rows = Obs.counter "join.rows_emitted"
let c_sat = Obs.counter "count.saturations"
let g_groups = Obs.gauge "join.max_group_table_rows"

(* Same transition rule as Join.add_tracked: tick the saturation counter
   when an aggregation crosses max_count even though both operands were
   finite. *)
let add_tracked prev cnt =
  let sum = Count.add prev cnt in
  if
    Obs.enabled ()
    && Count.is_saturated sum
    && not (Count.is_saturated prev)
    && not (Count.is_saturated cnt)
  then Obs.tick c_sat;
  sum

type plan = {
  combined : Schema.t;
  ca : Colrel.t;
  cb : Colrel.t;
  lsig : int array; (* per left row: key id, -1 = cannot match *)
  rsig : int array; (* per right row: key id, always >= 0 *)
  right_extra : int array; (* right-side column indexes not in the key *)
}

(* Key signatures for both sides. One-column keys use raw dictionary ids
   (the column arrays themselves — zero work); wider keys intern the
   right side's key vectors into dense ids and look the left side's up
   (absent = no partner anywhere on the right). A schema-disjoint pair
   degenerates to the counted cross product via the constant signature
   0, like the row kernels. *)
let make_plan a b =
  let sa = Relation.schema a and sb = Relation.schema b in
  let common = Schema.inter sa sb in
  let combined = Schema.union sa sb in
  let ca = Relation.encoded a and cb = Relation.encoded b in
  let lpos = Schema.positions ~sub:common sa in
  let rpos = Schema.positions ~sub:common sb in
  let right_extra = Schema.positions ~sub:(Schema.diff sb sa) sb in
  let k = Array.length lpos in
  let lsig, rsig =
    if k = 0 then
      (Array.make (Colrel.nrows ca) 0, Array.make (Colrel.nrows cb) 0)
    else if k = 1 then (Colrel.col ca lpos.(0), Colrel.col cb rpos.(0))
    else begin
      let kd = Intkey.Keydict.create ~arity:k (Colrel.nrows cb) in
      let scratch = Array.make k 0 in
      let sigs lookup c pos =
        let srcs = Array.map (Colrel.col c) pos in
        Array.init (Colrel.nrows c) (fun i ->
            for j = 0 to k - 1 do
              scratch.(j) <- srcs.(j).(i)
            done;
            lookup kd scratch)
      in
      let rsig = sigs Intkey.Keydict.lookup_or_add cb rpos in
      let lsig = sigs Intkey.Keydict.lookup ca lpos in
      (lsig, rsig)
    end
  in
  { combined; ca; cb; lsig; rsig; right_extra }

let pair_size a b = Relation.distinct_count a + Relation.distinct_count b

(* Radix routing: partition of a key signature. Signatures are dense
   sequential ids, so they go through the avalanche mixer before the
   modulo. Unmatchable left rows (signature -1) route to -1: no
   partition touches them. *)
let partition_of parts s = if s < 0 then -1 else Intkey.mix s mod parts

let partition_ids parts sigs =
  if Array.length sigs >= 4096 then
    Exec.parallel_map (partition_of parts) sigs
  else Array.map (partition_of parts) sigs

(* Run [body p] for every partition in parallel; results in partition
   order. [body] must only read shared state and write its own slot. *)
let each_partition parts body =
  let out = Array.make parts None in
  Exec.parallel_for ~chunks:parts 0 parts (fun p -> out.(p) <- Some (body p));
  Array.to_list out |> List.filter_map Fun.id

(* ------------------------------------------------------------------ *)
(* count_join: |a ⋈ b| without materializing anything. Per key id the
   right side contributes a summed multiplicity; each left row adds
   count(left) * that sum. The select predicates restrict each side to
   one partition's rows (constant true on the sequential path). *)

let count_partition plan lselect rselect =
  let nb = Colrel.nrows plan.cb and na = Colrel.nrows plan.ca in
  let bcounts = Colrel.counts plan.cb and acounts = Colrel.counts plan.ca in
  let tab = Intkey.Itab.create (max 16 nb) in
  for j = 0 to nb - 1 do
    if rselect j then Intkey.Itab.add_count tab plan.rsig.(j) bcounts.(j)
  done;
  let total = ref Count.zero in
  for i = 0 to na - 1 do
    if lselect i then begin
      let group = Intkey.Itab.find tab plan.lsig.(i) ~default:0 in
      if group > 0 then
        total := add_tracked !total (Count.mul acounts.(i) group)
    end
  done;
  !total

let all _ = true

let count_join a b =
  let plan = make_plan a b in
  if not (Exec.pays_off (pair_size a b)) then
    count_partition plan (fun i -> plan.lsig.(i) >= 0) all
  else begin
    let parts = Exec.jobs () in
    let lpart = partition_ids parts plan.lsig in
    let rpart = partition_ids parts plan.rsig in
    let totals =
      each_partition parts (fun p ->
          count_partition plan
            (fun i -> lpart.(i) = p)
            (fun j -> rpart.(j) = p))
    in
    List.fold_left add_tracked Count.zero totals
  end

(* ------------------------------------------------------------------ *)
(* natural_join: materialize the combined rows. Every output row embeds
   its full left row, and two right partners of one left row that agreed
   on the key and every extra column would be the same (distinct) right
   row — so outputs are distinct, across partitions too, and go straight
   through Relation.of_encoded with no grouping pass. *)

(* Chained right-row index for one partition: [heads] maps a key id to
   the most recently seen right row, [next] threads the rest. Probing
   walks newest-first; output order is canonicalized later, so chain
   order is irrelevant. *)
let build_chains plan rselect =
  let nb = Colrel.nrows plan.cb in
  let heads = Intkey.Itab.create (max 16 nb) in
  let next = Array.make (max 1 nb) (-1) in
  for j = 0 to nb - 1 do
    if rselect j then
      next.(j) <- Intkey.Itab.exchange heads plan.rsig.(j) j ~default:(-1)
  done;
  (heads, next)

let join_partition plan lselect rselect =
  let na = Colrel.nrows plan.ca in
  let acounts = Colrel.counts plan.ca and bcounts = Colrel.counts plan.cb in
  let la = Colrel.arity plan.ca in
  let ne = Array.length plan.right_extra in
  let heads, next = build_chains plan rselect in
  let acols = Array.init la (Colrel.col plan.ca) in
  let ecols = Array.map (Colrel.col plan.cb) plan.right_extra in
  let out = Array.init (la + ne) (fun _ -> Intkey.Ibuf.create 64) in
  let counts = Intkey.Ibuf.create 64 in
  let live = Obs.enabled () in
  for i = 0 to na - 1 do
    if lselect i then begin
      let j = ref (Intkey.Itab.find heads plan.lsig.(i) ~default:(-1)) in
      while !j >= 0 do
        for jc = 0 to la - 1 do
          Intkey.Ibuf.push out.(jc) acols.(jc).(i)
        done;
        for jc = 0 to ne - 1 do
          Intkey.Ibuf.push out.(la + jc) ecols.(jc).(!j)
        done;
        let cnt = Count.mul acounts.(i) bcounts.(!j) in
        if live then begin
          Obs.tick c_rows;
          if Count.is_saturated cnt then Obs.tick c_sat
        end;
        Intkey.Ibuf.push counts cnt;
        j := next.(!j)
      done
    end
  done;
  (Array.map Intkey.Ibuf.to_array out, Intkey.Ibuf.to_array counts)

let natural_join a b =
  let plan = make_plan a b in
  let cols, counts =
    if not (Exec.pays_off (pair_size a b)) then
      join_partition plan (fun i -> plan.lsig.(i) >= 0) all
    else begin
      let parts = Exec.jobs () in
      let lpart = partition_ids parts plan.lsig in
      let rpart = partition_ids parts plan.rsig in
      let pieces =
        each_partition parts (fun p ->
            join_partition plan
              (fun i -> lpart.(i) = p)
              (fun j -> rpart.(j) = p))
      in
      let ncols = Colrel.arity plan.ca + Array.length plan.right_extra in
      ( Array.init ncols (fun jc ->
            Array.concat (List.map (fun (cs, _) -> cs.(jc)) pieces)),
        Array.concat (List.map snd pieces) )
    end
  in
  Relation.of_encoded (Colrel.make ~schema:plan.combined ~cols ~counts)

(* ------------------------------------------------------------------ *)
(* join_project: the fused γ_group(a ⋈ b) — matches stream into an
   integer group-by keyed on the [group] columns of the (never
   materialized) combined row. Group keys need not contain the join key,
   so one group can span partitions: per-partition accumulators merge in
   the integer domain before the single decode. *)

(* Group accumulator keyed by an int vector of [garity] components,
   specialized per arity: nullary groups are a single total, unary
   groups key an Itab by the raw id, wider groups intern through a
   Keydict with a parallel dense sum buffer. *)
type grouper = {
  garity : int;
  kd : Intkey.Keydict.t option; (* Some iff garity >= 2 *)
  tab : Intkey.Itab.t; (* garity = 1: id -> summed count *)
  sums : Intkey.Ibuf.t; (* garity >= 2: dense key id -> summed count *)
  mutable nullary : Count.t; (* garity = 0 *)
  mutable any : bool; (* garity = 0: saw at least one row *)
  scratch : int array; (* caller-filled key, length max 1 garity *)
}

let grouper garity hint =
  {
    garity;
    kd =
      (if garity >= 2 then Some (Intkey.Keydict.create ~arity:garity hint)
       else None);
    tab = Intkey.Itab.create (if garity = 1 then max 16 hint else 16);
    sums = Intkey.Ibuf.create (if garity >= 2 then max 16 hint else 8);
    nullary = Count.zero;
    any = false;
    scratch = Array.make (max 1 garity) 0;
  }

let grouper_add g key cnt =
  if g.garity = 0 then begin
    g.any <- true;
    g.nullary <- add_tracked g.nullary cnt
  end
  else if g.garity = 1 then begin
    let prev = Intkey.Itab.find g.tab key.(0) ~default:0 in
    Intkey.Itab.set g.tab key.(0) (add_tracked prev cnt)
  end
  else begin
    let kd = Option.get g.kd in
    let id = Intkey.Keydict.lookup_or_add kd key in
    if id = Intkey.Ibuf.length g.sums then Intkey.Ibuf.push g.sums cnt
    else
      Intkey.Ibuf.set g.sums id (add_tracked (Intkey.Ibuf.get g.sums id) cnt)
  end

let grouper_size g =
  if g.garity = 0 then if g.any then 1 else 0
  else if g.garity = 1 then Intkey.Itab.length g.tab
  else Intkey.Keydict.length (Option.get g.kd)

(* Visit every accumulated (key, summed count) group. The key array is
   reused between calls: consumers must copy what they keep. *)
let grouper_iter g f =
  if g.garity = 0 then begin
    if g.any then f [||] g.nullary
  end
  else if g.garity = 1 then begin
    let key = Array.make 1 0 in
    Intkey.Itab.iter
      (fun k c ->
        key.(0) <- k;
        f key c)
      g.tab
  end
  else begin
    let kd = Option.get g.kd in
    let key = Array.make g.garity 0 in
    for id = 0 to Intkey.Keydict.length kd - 1 do
      for j = 0 to g.garity - 1 do
        key.(j) <- Intkey.Keydict.get kd id j
      done;
      f key (Intkey.Ibuf.get g.sums id)
    done
  end

(* [gsrcs] resolves each group column to its source column on one side:
   positions below the left arity read the left row, the rest read the
   matched right row's extra columns. *)
let project_partition plan gsrcs garity lselect rselect =
  let na = Colrel.nrows plan.ca in
  let acounts = Colrel.counts plan.ca and bcounts = Colrel.counts plan.cb in
  let heads, next = build_chains plan rselect in
  let g = grouper garity 1024 in
  let live = Obs.enabled () in
  for i = 0 to na - 1 do
    if lselect i then begin
      let j = ref (Intkey.Itab.find heads plan.lsig.(i) ~default:(-1)) in
      while !j >= 0 do
        Array.iteri
          (fun jc src ->
            g.scratch.(jc) <-
              (match src with
              | `Left col -> col.(i)
              | `Right col -> col.(!j)))
          gsrcs;
        let cnt = Count.mul acounts.(i) bcounts.(!j) in
        if live then begin
          Obs.tick c_rows;
          if Count.is_saturated cnt then Obs.tick c_sat
        end;
        grouper_add g g.scratch cnt;
        j := next.(!j)
      done
    end
  done;
  Obs.observe g_groups (grouper_size g);
  g

let join_project ~group a b =
  let plan = make_plan a b in
  let positions = Schema.positions ~sub:group plan.combined in
  let la = Colrel.arity plan.ca in
  let gsrcs =
    Array.map
      (fun p ->
        if p < la then `Left (Colrel.col plan.ca p)
        else `Right (Colrel.col plan.cb plan.right_extra.(p - la)))
      positions
  in
  let garity = Array.length positions in
  let final =
    if not (Exec.pays_off (pair_size a b)) then
      project_partition plan gsrcs garity (fun i -> plan.lsig.(i) >= 0) all
    else begin
      let parts = Exec.jobs () in
      let lpart = partition_ids parts plan.lsig in
      let rpart = partition_ids parts plan.rsig in
      let partials =
        each_partition parts (fun p ->
            project_partition plan gsrcs garity
              (fun i -> lpart.(i) = p)
              (fun j -> rpart.(j) = p))
      in
      (* Groups may span partitions (the group key need not contain the
         join key): merge in the integer domain. Saturating addition is
         order-free, so the merge order cannot affect totals. *)
      let merged = grouper garity 1024 in
      List.iter (fun g -> grouper_iter g (grouper_add merged)) partials;
      merged
    end
  in
  let n = grouper_size final in
  let cols = Array.init garity (fun _ -> Array.make n 0) in
  let counts = Array.make n 0 in
  let kept = ref 0 in
  grouper_iter final (fun key cnt ->
      (* Counts here are sums of positive products, but mirror the row
         normalization's non-positive guard for exactness. *)
      if cnt > 0 then begin
        for j = 0 to garity - 1 do
          cols.(j).(!kept) <- key.(j)
        done;
        counts.(!kept) <- cnt;
        incr kept
      end);
  let cols = Array.map (fun c -> Array.sub c 0 !kept) cols in
  let counts = Array.sub counts 0 !kept in
  Relation.of_encoded (Colrel.make ~schema:group ~cols ~counts)
