(** Bag-semantics relations.

    A relation is a schema plus a multiset of tuples, represented as
    distinct tuples each carrying a positive multiplicity ({!Count.t}).
    This is the representation the paper's Section 4.2 works with: every
    relation conceptually has an extra [cnt] column, joins multiply
    counts, and group-by sums them.

    Construction normalizes: duplicate tuples are merged (counts summed)
    and rows are sorted, so equal bags have equal representations and all
    iteration orders are deterministic. *)

type t

(** {1 Construction} *)

val create : schema:Schema.t -> (Tuple.t * Count.t) list -> t
(** Raises {!Errors.Data_error} if a row's arity differs from the schema's
    or a count is not positive. *)

val of_tuples : schema:Schema.t -> Tuple.t list -> t
(** Each tuple gets multiplicity 1; duplicates accumulate. *)

val of_rows : schema:Schema.t -> Value.t list list -> t
(** Convenience for literal relations in tests and examples. *)

val empty : Schema.t -> t

(** {1 Access} *)

val schema : t -> Schema.t

val version : t -> int
(** Monotonically increasing version stamp, unique per constructed
    relation in this process. Relations are immutable, so every update
    ([add], [remove], import, any operator) yields a new value with a
    strictly larger stamp; two relations with the same stamp are the
    same value. The cache layer keys memoized artifacts by these stamps,
    which is why staleness is impossible: a mutated database presents
    new stamps, and entries for unreachable stamps simply age out. Not
    part of {!equal}. *)

val rows : t -> (Tuple.t * Count.t) array
(** The normalized rows, sorted by {!Tuple.compare}. The returned array is
    owned by the relation: callers must not mutate it. *)

val cardinality : t -> Count.t
(** Bag cardinality: sum of multiplicities (saturating). *)

val distinct_count : t -> int
val is_empty : t -> bool
val mem : Tuple.t -> t -> bool

val count_of : Tuple.t -> t -> Count.t
(** Multiplicity of a tuple, 0 if absent. *)

val fold : (Tuple.t -> Count.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Tuple.t -> Count.t -> unit) -> t -> unit

(** {1 Unary operators} *)

val project : Schema.t -> t -> t
(** [project target r] is the paper's γ: group rows by the [target]
    attributes (a subset of [r]'s schema, any order) and sum counts.
    Raises {!Errors.Schema_error} if [target] is not a subset. *)

val filter : (Schema.t -> Tuple.t -> bool) -> t -> t
(** Keep rows satisfying the predicate; counts are preserved. *)

val rename : (Attr.t * Attr.t) list -> t -> t

val scale : Count.t -> t -> t
(** Multiply every multiplicity by a positive factor (saturating). Raises
    {!Errors.Data_error} if the factor is not positive. *)

(** {1 Point updates (used by naive sensitivity)} *)

val add : ?count:Count.t -> Tuple.t -> t -> t
(** Insert [count] (default 1) copies of a tuple. *)

val remove : ?count:Count.t -> Tuple.t -> t -> t
(** Remove up to [count] (default 1) copies. The count clamps at the
    stored multiplicity: removing more copies than are present deletes
    the row and nothing else. Absent tuples are ignored. Raises
    {!Errors.Data_error} if [count] is not positive. *)

(** {1 Statistics} *)

val max_row : t -> (Tuple.t * Count.t) option
(** Row with the largest multiplicity; ties broken by {!Tuple.compare}
    (smallest tuple wins) for determinism. [None] on the empty relation. *)

val max_frequency : over:Schema.t -> t -> Count.t
(** Largest multiplicity of any combination of values of the [over]
    attributes — the [mf] statistic of elastic sensitivity. With an empty
    [over] this is the bag cardinality (the cross-product extension used
    by the paper's experiments). 0 on an empty relation. *)

val active_domain : Attr.t -> t -> Value.t list
(** Distinct values of one attribute, sorted. *)

(** {1 Columnar boundary (storage layer)}

    The handshake between row relations and the dictionary-encoded
    columnar kernels ({!Colrel}, {!Coljoin}) dispatched under
    [TSENS_STORAGE=columnar]. Operators call these; most library users
    never need to. *)

val encoded : t -> Colrel.t
(** The columnar encoding of the relation, computed on first use and
    memoized on the value (rebuilt if {!Dict.generation} has moved).
    Rows of the encoding are in the relation's sorted row order. *)

val of_encoded : Colrel.t -> t
(** Materialize a kernel output. The input rows must be distinct
    (which {!Colrel}'s constructors guarantee); sorting by
    {!Tuple.compare} is the only canonicalization applied, so the result
    is bit-identical to funneling the decoded rows through {!create}.
    The result carries the (sorted) encoding, so columnar operator
    chains never re-intern. *)

(** {1 Comparison and printing} *)

val equal : t -> t -> bool
(** Bag equality on identically-ordered schemas. *)

val equal_semantic : t -> t -> bool
(** Bag equality up to column reordering: [true] iff the schemas hold the
    same attribute set and reordering the second relation's columns to the
    first's order yields equal bags. *)

val reorder : Schema.t -> t -> t
(** Reorder columns to match the given schema (same attribute set).
    Returns the relation itself (same version stamp) when the target
    equals the stored schema. Raises {!Errors.Schema_error} if the
    attribute sets differ. *)

val pp : Format.formatter -> t -> unit
(** Multi-line table rendering with a [cnt] column. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line rendering: schema, distinct size, cardinality. *)
