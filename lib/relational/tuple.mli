(** Tuples: immutable value vectors positioned by a {!Schema}.

    A tuple on its own carries no schema; the relation that owns it does.
    Treat tuples as immutable — the library never mutates an array after
    it enters a relation, and neither should callers. *)

type t = Value.t array

val of_list : Value.t list -> t

val compare : t -> t -> int
(** Lexicographic by {!Value.compare}; shorter tuples first. *)

val equal : t -> t -> bool
val hash : t -> int

module Tbl : Hashtbl.S with type key = t
(** Hash tables keyed by {!hash}/{!equal} — the one table type every
    tuple-keyed structure (joins, indexes, normalization) shares. *)

val bucket : t -> int -> int
(** [bucket t parts] is a stable partition id in [[0, parts)] derived
    from {!hash} — hash partitioning for the parallel operators. *)

val project : int array -> t -> t
(** [project positions tup] picks the values at [positions], in order. *)

val get : t -> int -> Value.t
val arity : t -> int

val concat : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Renders as [(v1, v2, ...)]. *)

val to_string : t -> string
