type t = Value.t array

let of_list = Array.of_list

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec loop i =
      if i >= la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let equal a b = compare a b = 0

(* FNV-1a-style accumulator over the per-value hashes, with a final
   avalanche. The previous [acc * 31 + h] mix left the low bits of the
   last value dominating the low bits of the result, so partitioning by
   [hash mod parts] degenerated on sequential integer keys (every bucket
   function the parallel kernels use routes through these low bits). *)
let fnv_prime = 0x100000001b3

let hash t =
  let h = ref 0x2545f4914f6cdd1d in
  Array.iter (fun v -> h := (!h lxor Value.hash v) * fnv_prime) t;
  let h = !h in
  h lxor (h lsr 29)

(* One hashed-table functor for every tuple-keyed table in the library
   (joins, indexes, relation normalization): consistent hashing, no
   polymorphic-compare fallback. *)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let bucket t parts = hash t land max_int mod parts

let project positions t = Array.map (fun i -> t.(i)) positions
let get t i = t.(i)
let arity = Array.length
let concat = Array.append

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (Array.to_list t)

let to_string t = Format.asprintf "%a" pp t
