(** Operator-level observability: hierarchical timed spans, monotonic
    counters and maximum gauges behind one global toggle.

    The library is a passive sink: instrumented code calls {!span},
    {!add} or {!observe} unconditionally, and when the sink is disabled
    (the default) each call is a single load-and-branch on a [bool ref] —
    no allocation, no clock read, no hash lookup. Enabling the sink turns
    the same calls into aggregation against in-memory tables that a
    {!Report.capture} snapshots.

    The sink is process-global; enable it around one measured region at
    a time (the CLI's [--trace]/[--stats], the bench harness). Toggling
    it inside an open span leaves that span unrecorded but is otherwise
    harmless.

    Counters and gauges are domain-safe: events from pool worker domains
    (lib/exec) land in per-domain cells that {!Report.capture} and
    {!reset} fold back into the totals, so instrumented operators can
    run inside parallel regions. Spans are recorded only on the
    coordinating domain — the one that loaded this module; a span opened
    on a worker domain just runs its body. Toggling or resetting the
    sink while a parallel region is in flight is not supported. *)

(** {1 The global toggle} *)

val enabled : unit -> bool
val set_enabled : bool -> unit
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Zero every counter, gauge and span aggregate (interned handles stay
    valid) and drop any open span context. *)

(** {1 Timed spans}

    A span times one region of code. Nested spans aggregate under a
    [/]-separated path — [Obs.span "tsens.analyze" @@ fun () ->
    Obs.span "join.stream" ...] accumulates into
    ["tsens.analyze/join.stream"] — so the same operator shows up once
    per calling context, with call counts, total wall-clock seconds, and
    self time (total minus time spent in child spans). *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()], timing it when the sink is enabled. The
    timing is recorded even when [f] raises (the exception is
    re-raised). Disabled cost: one branch. *)

val now_seconds : unit -> float
(** Wall-clock seconds from an arbitrary epoch, for callers that keep
    their own duration fields (e.g. [Tsens.node_stat]); independent of
    the toggle. *)

(** {1 Counters and gauges}

    Handles are interned by name at first use — create them once at
    module initialisation ([let c_rows = Obs.counter "join.rows"]) so
    the per-event cost is a branch plus an integer add, never a hash
    lookup. *)

type counter
(** A named monotonic total (rows emitted, probes, saturation events). *)

val counter : string -> counter
(** Intern the counter named [name]; the same name yields the same
    handle for the life of the process. *)

val add : counter -> int -> unit
(** Add to the total. No-op while disabled. *)

val tick : counter -> unit
(** [tick c] is [add c 1]. *)

val count : string -> int -> unit
(** One-shot [add (counter name) n] for cold paths. *)

type gauge
(** A named high-water mark (largest hash group, widest intermediate). *)

val gauge : string -> gauge
val observe : gauge -> int -> unit
(** Raise the gauge to [v] if larger. No-op while disabled. *)

(** {1 Reports} *)

module Report : sig
  type span_stat = {
    path : string;  (** [/]-separated nesting path *)
    calls : int;
    seconds : float;  (** total wall-clock across calls *)
    self_seconds : float;  (** [seconds] minus time inside child spans *)
  }

  type total = { name : string; total : int }

  type t = {
    spans : span_stat list;  (** sorted by path *)
    counters : total list;  (** sorted by name; zero totals omitted *)
    gauges : total list;  (** sorted by name; untouched gauges omitted *)
  }

  val capture : unit -> t
  (** Snapshot the sink's current aggregates (does not reset). *)

  val to_json : t -> string
  (** One JSON object:
      [{"spans": [{"path", "calls", "seconds", "self_seconds"}, ...],
        "counters": [{"name", "total"}, ...],
        "gauges": [{"name", "total"}, ...]}]. *)

  val pp : Format.formatter -> t -> unit
  (** Aligned human-readable rendering of the same data. *)
end
