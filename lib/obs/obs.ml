(* One global sink. The disabled path is the contract that lets this sit
   inside per-row loops: every entry point starts with [if not !on] on an
   immutable-after-startup ref, so instrumentation costs a branch until
   someone flips the toggle.

   Domain safety: instrumented operators may run on pool worker domains
   (lib/exec). The coordinating domain — the one that loaded this module
   — keeps the original unsynchronized fast path: a plain field update
   per event. Every other domain writes into its own domain-local cell,
   registered once per (domain, handle) under a mutex; report capture
   and reset fold the remote cells back into the totals. Spans keep a
   single nesting stack and are recorded only on the coordinating
   domain — a span opened on a worker just runs its body. *)

let on = ref false
let enabled () = !on
let set_enabled b = on := b
let enable () = on := true
let disable () = on := false
let now_seconds = Unix.gettimeofday

let main_domain : int = (Domain.self () :> int)
let on_main () = (Domain.self () :> int) = main_domain

(* Guards handle interning and remote-cell registration — cold paths
   only; per-event updates never take it. *)
let registry_mutex = Mutex.create ()

(* ------------------------------------------------------------------ *)
(* Counters and gauges: interned mutable records, so the enabled path is
   a field update and the handle can live in a client module's top-level
   binding. *)

type counter = {
  c_name : string;
  c_id : int;
  mutable c_total : int; (* coordinating-domain cell *)
  mutable c_remote : int ref list; (* one cell per worker domain *)
}

type gauge_cell = { mutable gc_max : int; mutable gc_set : bool }

type gauge = {
  g_name : string;
  g_id : int;
  mutable g_max : int;
  mutable g_set : bool;
  mutable g_remote : gauge_cell list;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32
let next_id = ref 0

let counter name =
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          incr next_id;
          let c =
            { c_name = name; c_id = !next_id; c_total = 0; c_remote = [] }
          in
          Hashtbl.replace counters name c;
          c)

(* Per-domain scratch: handle id -> this domain's cell. Workers find
   their cell with one small-table lookup per event, which only runs
   while the sink is enabled. *)
let dls_counters : (int, int ref) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let dls_gauges : (int, gauge_cell) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let counter_cell c =
  let tbl = Domain.DLS.get dls_counters in
  match Hashtbl.find_opt tbl c.c_id with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace tbl c.c_id r;
      Mutex.protect registry_mutex (fun () -> c.c_remote <- r :: c.c_remote);
      r

let add c n =
  if !on then
    if on_main () then c.c_total <- c.c_total + n
    else begin
      let r = counter_cell c in
      r := !r + n
    end

let tick c = add c 1

(* Intern only when live, keeping the disabled path allocation-free. *)
let count name n = if !on then add (counter name) n

let gauge name =
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some g -> g
      | None ->
          incr next_id;
          let g =
            {
              g_name = name;
              g_id = !next_id;
              g_max = 0;
              g_set = false;
              g_remote = [];
            }
          in
          Hashtbl.replace gauges name g;
          g)

let gauge_cell g =
  let tbl = Domain.DLS.get dls_gauges in
  match Hashtbl.find_opt tbl g.g_id with
  | Some cell -> cell
  | None ->
      let cell = { gc_max = 0; gc_set = false } in
      Hashtbl.replace tbl g.g_id cell;
      Mutex.protect registry_mutex (fun () -> g.g_remote <- cell :: g.g_remote);
      cell

let observe g v =
  if !on then
    if on_main () then begin
      if (not g.g_set) || v > g.g_max then g.g_max <- v;
      g.g_set <- true
    end
    else begin
      let cell = gauge_cell g in
      if (not cell.gc_set) || v > cell.gc_max then cell.gc_max <- v;
      cell.gc_set <- true
    end

let counter_total c =
  List.fold_left (fun acc r -> acc + !r) c.c_total c.c_remote

let gauge_total g =
  List.fold_left
    (fun acc cell ->
      match acc with
      | None -> if cell.gc_set then Some cell.gc_max else None
      | Some m ->
          if cell.gc_set && cell.gc_max > m then Some cell.gc_max else acc)
    (if g.g_set then Some g.g_max else None)
    g.g_remote

(* ------------------------------------------------------------------ *)
(* Spans: aggregated per nesting path, never per activation, so a join
   called a thousand times under one phase is one row. The stack carries,
   per open activation, the accumulated child time used to derive self
   time on exit. Both structures belong to the coordinating domain;
   spans opened elsewhere are not recorded. *)

type span_agg = {
  mutable calls : int;
  mutable total_s : float;
  mutable child_s : float;
}

let spans : (string, span_agg) Hashtbl.t = Hashtbl.create 64

(* (path of the open span, wall seconds its children have consumed) *)
let stack : (string * float ref) list ref = ref []

let span_agg path =
  match Hashtbl.find_opt spans path with
  | Some s -> s
  | None ->
      let s = { calls = 0; total_s = 0.0; child_s = 0.0 } in
      Hashtbl.replace spans path s;
      s

let span name f =
  if (not !on) || not (on_main ()) then f ()
  else begin
    let path =
      match !stack with
      | [] -> name
      | (parent, _) :: _ -> parent ^ "/" ^ name
    in
    let children = ref 0.0 in
    stack := (path, children) :: !stack;
    let t0 = now_seconds () in
    let finish () =
      let dt = now_seconds () -. t0 in
      (match !stack with
      | (p, _) :: rest when String.equal p path -> stack := rest
      | _ -> () (* toggled mid-span; drop the unbalanced frame silently *));
      (match !stack with
      | (_, parent_children) :: _ -> parent_children := !parent_children +. dt
      | [] -> ());
      let agg = span_agg path in
      agg.calls <- agg.calls + 1;
      agg.total_s <- agg.total_s +. dt;
      agg.child_s <- agg.child_s +. !children
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let reset () =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.iter
        (fun _ c ->
          c.c_total <- 0;
          List.iter (fun r -> r := 0) c.c_remote)
        counters;
      Hashtbl.iter
        (fun _ g ->
          g.g_max <- 0;
          g.g_set <- false;
          List.iter
            (fun cell ->
              cell.gc_max <- 0;
              cell.gc_set <- false)
            g.g_remote)
        gauges);
  Hashtbl.reset spans;
  stack := []

(* ------------------------------------------------------------------ *)

module Report = struct
  type span_stat = {
    path : string;
    calls : int;
    seconds : float;
    self_seconds : float;
  }

  type total = { name : string; total : int }

  type t = {
    spans : span_stat list;
    counters : total list;
    gauges : total list;
  }

  let capture () =
    let spans =
      Hashtbl.fold
        (fun path (agg : span_agg) acc ->
          {
            path;
            calls = agg.calls;
            seconds = agg.total_s;
            self_seconds = Float.max 0.0 (agg.total_s -. agg.child_s);
          }
          :: acc)
        spans []
      |> List.sort (fun a b -> String.compare a.path b.path)
    in
    let counters =
      Hashtbl.fold
        (fun name c acc ->
          let total = counter_total c in
          if total = 0 then acc else { name; total } :: acc)
        counters []
      |> List.sort (fun a b -> String.compare a.name b.name)
    in
    let gauges =
      Hashtbl.fold
        (fun name g acc ->
          match gauge_total g with
          | None -> acc
          | Some total -> { name; total } :: acc)
        gauges []
      |> List.sort (fun a b -> String.compare a.name b.name)
    in
    { spans; counters; gauges }

  (* Hand-rolled JSON: the library must not pull in a serializer. *)
  let escape_into buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let to_json t =
    let buf = Buffer.create 1024 in
    let sep first = if !first then first := false else Buffer.add_char buf ',' in
    let list field items emit =
      Buffer.add_char buf '"';
      Buffer.add_string buf field;
      Buffer.add_string buf "\":[";
      let first = ref true in
      List.iter
        (fun item ->
          sep first;
          emit item)
        items;
      Buffer.add_char buf ']'
    in
    Buffer.add_char buf '{';
    list "spans" t.spans (fun s ->
        Buffer.add_string buf "{\"path\":\"";
        escape_into buf s.path;
        Buffer.add_string buf
          (Printf.sprintf "\",\"calls\":%d,\"seconds\":%.6f,\"self_seconds\":%.6f}"
             s.calls s.seconds s.self_seconds));
    Buffer.add_char buf ',';
    let totals field items =
      list field items (fun { name; total } ->
          Buffer.add_string buf "{\"name\":\"";
          escape_into buf name;
          Buffer.add_string buf (Printf.sprintf "\",\"total\":%d}" total))
    in
    totals "counters" t.counters;
    Buffer.add_char buf ',';
    totals "gauges" t.gauges;
    Buffer.add_char buf '}';
    Buffer.contents buf

  let pp ppf t =
    let open Format in
    fprintf ppf "@[<v>";
    if t.spans <> [] then begin
      let w =
        List.fold_left (fun acc s -> max acc (String.length s.path)) 4 t.spans
      in
      fprintf ppf "%-*s  %8s  %10s  %10s@," w "span" "calls" "total" "self";
      List.iter
        (fun s ->
          fprintf ppf "%-*s  %8d  %9.3fms  %9.3fms@," w s.path s.calls
            (1e3 *. s.seconds) (1e3 *. s.self_seconds))
        t.spans
    end;
    let totals title items =
      if items <> [] then begin
        let w =
          List.fold_left
            (fun acc { name; _ } -> max acc (String.length name))
            (String.length title) items
        in
        fprintf ppf "%-*s  %12s@," w title "total";
        List.iter
          (fun { name; total } -> fprintf ppf "%-*s  %12d@," w name total)
          items
      end
    in
    totals "counter" t.counters;
    totals "gauge" t.gauges;
    fprintf ppf "@]"
end
