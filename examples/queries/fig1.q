% The paper's running example (Figure 1): doubly acyclic, so TSens
% (Algorithm 2) runs with binary botjoins/topjoins.
Fig1(*) :- R1(A,B,C), R2(A,B,D), R3(A,E), R4(B,F).
