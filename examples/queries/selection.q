% A path query with satisfiable selection constraints on a join variable.
Sel(*) :- R1(A,B), R2(B,C), B > 2, B < 100.
