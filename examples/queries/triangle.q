% The triangle counting query (the paper's q4). Deliberately cyclic:
% `tsens check` reports TS010 (stuck GYO core + auto-GHD width) as a
% warning — the CI lint gate only fails on error-severity diagnostics.
Triangle(*) :- R1(A,B), R2(B,C), R3(C,A).
