% A 3-hop path query — the easy case: Path_sens (Algorithm 1) applies.
Q(*) :- R1(A,B), R2(B,C), R3(C,D).
