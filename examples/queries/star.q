% The paper's q*: a triangle relation joined with its three edges —
% acyclic, but not doubly acyclic (the join tree root has degree 3).
Star(*) :- Rt(A,B,C), R1(A,B), R2(B,C), R3(C,A).
