(* tsens — command-line front end.

   Sub-commands:
     check        static pre-execution diagnostics (queries, DP configs)
     classify     print a query's structural class, join tree and GHD
     sensitivity  local sensitivity of a query over CSV relations
     generate     write a synthetic TPC-H or ego-network instance as CSVs
     dp           differentially private counting-query release (TSensDP)

   Queries are given in datalog syntax, either inline or in a file:
     Q( * ) :- R1(A,B), R2(B,C).   [a head of * lists all variables]
   Each relation R is loaded from <data-dir>/R.csv (header row with the
   attribute names plus a trailing cnt column). *)

open Cmdliner
open Tsens_relational
open Tsens_query
open Tsens_sensitivity
open Tsens_dp
open Tsens_workload
open Tsens_analysis

(* ------------------------------------------------------------------ *)
(* Shared arguments and loading *)

let query_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "q"; "query" ] ~docv:"QUERY"
        ~doc:
          "The conjunctive query in datalog syntax, or a path to a file \
           containing it.")

let data_dir_arg =
  Arg.(
    required
    & opt (some dir) None
    & info [ "d"; "data" ] ~docv:"DIR"
        ~doc:"Directory holding one <relation>.csv file per atom.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel kernels (default: the \
           $(b,TSENS_JOBS) environment variable, else the recommended \
           domain count). $(b,1) disables parallelism; results are \
           identical at any job count.")

let apply_jobs = function None -> () | Some n -> Exec.set_jobs n

(* --storage overrides the TSENS_STORAGE default; the two engines are
   bit-identical, columnar is usually faster on join-heavy queries. *)
let storage_arg =
  let modes =
    [ ("row", Storage.Row); ("columnar", Storage.Columnar);
      ("col", Storage.Columnar) ]
  in
  Arg.(
    value
    & opt (some (enum modes)) None
    & info [ "storage" ] ~docv:"ENGINE"
        ~doc:
          "Storage engine for the relational kernels: $(b,row) (the \
           reference implementation) or $(b,columnar) \
           (dictionary-encoded columns with integer-key joins; same \
           results, usually faster). Default: the $(b,TSENS_STORAGE) \
           environment variable, else $(b,row).")

let apply_storage = function None -> () | Some m -> Storage.set_mode m

(* --cache / --no-cache override the TSENS_CACHE default; results are
   bit-identical either way, caching only changes what gets recomputed. *)
let cache_arg =
  Arg.(
    value
    & vflag None
        [
          ( Some true,
            info [ "cache" ]
              ~doc:
                "Memoize sensitivity analyses, indexes and truncation \
                 profiles across calls, keyed by relation version stamps \
                 (default: the $(b,TSENS_CACHE) environment variable). \
                 Results are identical with and without." );
          ( Some false,
            info [ "no-cache" ] ~doc:"Disable the memoization layer." );
        ])

let cache_stats_flag =
  Arg.(
    value & flag
    & info [ "cache-stats" ]
        ~doc:
          "Print per-store cache statistics (hits, misses, evictions, \
           entries, approximate bytes) to stderr when done.")

let apply_cache = function None -> () | Some b -> Cache.set_enabled b

let with_cache_stats ~cache_stats f =
  Fun.protect
    ~finally:(fun () ->
      if cache_stats then Format.eprintf "%a@." Cache.pp_stats (Cache.stats ()))
    f

let sql_flag =
  Arg.(
    value & flag
    & info [ "sql" ]
        ~doc:
          "Interpret the query as SQL (SELECT COUNT( * ) FROM ... WHERE \
           ...) instead of datalog; requires --data for the catalog.")

let query_text spec =
  if Sys.file_exists spec then
    In_channel.with_open_text spec In_channel.input_all
  else spec

let load_query spec = Parser.parse_full (query_text spec)

let catalog_of_dir dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".csv")
  |> List.sort String.compare
  |> List.map (fun f ->
         ( Filename.remove_extension f,
           Schema.attrs
             (Relation.schema (Csv.read_file (Filename.concat dir f))) ))

let load_database cq dir =
  let load name =
    let path = Filename.concat dir (name ^ ".csv") in
    if not (Sys.file_exists path) then
      Errors.data_errorf "no CSV file for relation %s (expected %s)" name path;
    (name, Csv.read_file path)
  in
  Database.of_list (List.map load (Cq.relation_names cq))

(* --trace / --stats: run the command with the observability sink live
   and render the captured spans/counters afterwards. --trace goes to
   stderr so it composes with machine-read stdout; --stats json|pretty
   goes to stdout and is the machine-readable path. *)
let stats_arg =
  Arg.(
    value
    & opt (some (enum [ ("pretty", `Pretty); ("json", `Json) ])) None
    & info [ "stats" ] ~docv:"FORMAT"
        ~doc:
          "Print operator-level observability (timed spans, row/probe \
           counters) after the command, as $(b,pretty) or $(b,json).")

let trace_flag =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Print the observability report to stderr when done.")

let with_observability ~stats ~trace f =
  let active = trace || stats <> None in
  if active then begin
    Obs.reset ();
    Obs.enable ()
  end;
  let report () =
    if active then begin
      Obs.disable ();
      let r = Obs.Report.capture () in
      if trace then Format.eprintf "%a@." Obs.Report.pp r;
      match stats with
      | Some `Pretty -> Format.printf "%a@." Obs.Report.pp r
      | Some `Json -> Format.printf "%s@." (Obs.Report.to_json r)
      | None -> ()
    end
  in
  Fun.protect ~finally:report f

let handle_errors f =
  try f (); 0 with
  | Errors.Schema_error m | Errors.Data_error m ->
      Printf.eprintf "error: %s\n" m;
      1
  | Parser.Parse_error m | Sql.Sql_error m ->
      Printf.eprintf "parse error: %s\n" m;
      1
  | Invalid_argument m ->
      Printf.eprintf "error: %s\n" m;
      1

(* Query + constraints + matching database, from either surface syntax. *)
let prepare ~sql query data =
  if sql then begin
    let t = Sql.translate ~catalog:(catalog_of_dir data) (query_text query) in
    let db = Sql.bind t (load_database t.Sql.query data) in
    (t.Sql.query, t.Sql.constraints, db)
  end
  else begin
    let cq, constraints = load_query query in
    (cq, constraints, load_database cq data)
  end

(* ------------------------------------------------------------------ *)
(* check *)

(* One directory scan for both the catalog and the cardinality
   statistics the analyzer's saturation bound needs. *)
let catalog_and_stats_of_dir dir =
  let rels =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".csv")
    |> List.sort String.compare
    |> List.map (fun f ->
           (Filename.remove_extension f, Csv.read_file (Filename.concat dir f)))
  in
  ( List.map (fun (n, r) -> (n, Schema.attrs (Relation.schema r))) rels,
    List.map (fun (n, r) -> (n, Relation.cardinality r)) rels )

(* The DP checks only run when at least one DP option was given. *)
let dp_of_options ~private_rel ~epsilon ~threshold_fraction ~ell =
  match (private_rel, epsilon, threshold_fraction, ell) with
  | None, None, None, None -> None
  | _ ->
      Some
        {
          Analyzer.epsilon = Option.value epsilon ~default:1.0;
          threshold_fraction = Option.value threshold_fraction ~default:0.5;
          ell = Option.value ell ~default:100;
          private_relation = private_rel;
        }

let print_report ?source ~json report =
  if json then print_endline (Diagnostic.report_to_json report)
  else Format.printf "%a@." (Diagnostic.pp_report ?source) report

(* The bundled evaluation queries with their Section 7.3 DP setups. *)
let workload_reports which =
  let wanted label =
    match which with
    | `All -> true
    | `Tpch -> List.mem label [ "q1"; "q2"; "q3" ]
    | `Facebook -> List.mem label [ "q4"; "qw"; "qo"; "qstar" ]
  in
  List.filter_map
    (fun (label, (s : Queries.dp_setup)) ->
      if not (wanted label) then None
      else
        let dp =
          {
            Analyzer.epsilon = 1.0;
            threshold_fraction = 0.5;
            ell = s.Queries.ell;
            private_relation = Some s.Queries.private_relation;
          }
        in
        Some (Analyzer.check_cq ~dp s.Queries.query))
    Queries.dp_setups

let run_check query sql data workload private_rel epsilon threshold_fraction
    ell json =
  try
    let reports =
      match workload with
      | Some which ->
          List.map (fun r -> (None, r)) (workload_reports which)
      | None ->
          let query =
            match query with
            | Some q -> q
            | None -> invalid_arg "check needs either --query or --workload"
          in
          let catalog, stats =
            match data with
            | None -> (None, None)
            | Some dir ->
                let c, s = catalog_and_stats_of_dir dir in
                (Some c, Some s)
          in
          let dp =
            dp_of_options ~private_rel ~epsilon ~threshold_fraction ~ell
          in
          let source = query_text query in
          let report =
            if sql then
              match catalog with
              | Some catalog -> Analyzer.check_sql ~catalog ?stats ?dp source
              | None ->
                  raise (Sql.Sql_error "--sql check needs --data for the catalog")
            else Analyzer.check_source ?catalog ?stats ?dp source
          in
          [ (Some source, report) ]
    in
    List.iter (fun (source, r) -> print_report ?source ~json r) reports;
    if List.exists (fun (_, r) -> Diagnostic.has_errors r) reports then 1
    else 0
  with
  | Errors.Schema_error m | Errors.Data_error m ->
      Printf.eprintf "error: %s\n" m;
      2
  | Sql.Sql_error m ->
      Printf.eprintf "parse error: %s\n" m;
      2
  | Invalid_argument m ->
      Printf.eprintf "error: %s\n" m;
      2

let check_cmd =
  let query =
    Arg.(
      value
      & opt (some string) None
      & info [ "q"; "query" ] ~docv:"QUERY"
          ~doc:
            "The conjunctive query in datalog syntax, or a path to a file \
             containing it.")
  in
  let data =
    Arg.(
      value
      & opt (some dir) None
      & info [ "d"; "data" ] ~docv:"DIR"
          ~doc:
            "CSV directory; enables catalog conformance checks and the \
             counter-saturation bound.")
  in
  let workload =
    Arg.(
      value
      & opt
          (some (enum [ ("tpch", `Tpch); ("facebook", `Facebook); ("all", `All) ]))
          None
      & info [ "workload" ] ~docv:"WHICH"
          ~doc:
            "Check the bundled evaluation queries ($(b,tpch), $(b,facebook) \
             or $(b,all)) with their DP setups instead of --query.")
  in
  let private_rel =
    Arg.(
      value
      & opt (some string) None
      & info [ "private" ] ~docv:"RELATION"
          ~doc:"The primary private relation (enables the DP checks).")
  in
  let epsilon =
    Arg.(
      value
      & opt (some float) None
      & info [ "epsilon" ] ~doc:"Privacy budget to validate.")
  in
  let threshold_fraction =
    Arg.(
      value
      & opt (some float) None
      & info [ "threshold-fraction" ]
          ~doc:"Share of epsilon spent learning the truncation threshold.")
  in
  let ell =
    Arg.(
      value
      & opt (some int) None
      & info [ "ell" ] ~doc:"Public upper bound on tuple sensitivity.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit each report as a JSON object (one per line).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically analyze a query, plan and DP configuration without \
          executing anything. Exits 1 if any error-severity diagnostic is \
          reported, 2 on I/O problems.")
    Term.(
      const run_check $ query $ sql_flag $ data $ workload $ private_rel
      $ epsilon $ threshold_fraction $ ell $ json)

(* ------------------------------------------------------------------ *)
(* classify *)

let run_classify query sql data =
  handle_errors (fun () ->
      let cq, constraints =
        if sql then begin
          match data with
          | Some dir ->
              let t =
                Sql.translate ~catalog:(catalog_of_dir dir) (query_text query)
              in
              (t.Sql.query, t.Sql.constraints)
          | None ->
              raise (Sql.Sql_error "--sql classification needs --data for the catalog")
        end
        else load_query query
      in
      Format.printf "query: %a@." Cq.pp cq;
      if constraints <> [] then
        Format.printf "selections: %a@." Constraints.pp_list constraints;
      Format.printf "atoms: %d, variables: %d@." (Cq.atom_count cq)
        (Cq.var_count cq);
      Format.printf "shape: %a@." Classify.pp_shape (Classify.classify cq);
      List.iteri
        (fun i component ->
          Format.printf "component %d: %s@." (i + 1)
            (String.concat ", " (Cq.relation_names component));
          match Join_tree.of_cq component with
          | Some jt ->
              Format.printf "  join tree: %a (max degree %d)@." Join_tree.pp
                jt
                (Join_tree.max_degree jt)
          | None ->
              let ghd = Ghd.auto component in
              Format.printf "  cyclic; auto GHD: %a@." Ghd.pp ghd)
        (Cq.components cq))

let classify_cmd =
  let optional_data =
    Arg.(
      value
      & opt (some dir) None
      & info [ "d"; "data" ] ~docv:"DIR"
          ~doc:"CSV directory (only needed with --sql).")
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Print a query's structural classification.")
    Term.(const run_classify $ query_arg $ sql_flag $ optional_data)

(* ------------------------------------------------------------------ *)
(* sensitivity *)

let algorithm_arg =
  Arg.(
    value
    & opt (enum [ ("tsens", `Tsens); ("path", `Path); ("elastic", `Elastic);
                  ("naive", `Naive); ("topk", `Topk) ])
        `Tsens
    & info [ "a"; "algorithm" ] ~docv:"ALGO"
        ~doc:
          "One of tsens (default), path (Algorithm 1, path queries only), \
           elastic (the Flex upper bound), naive (exhaustive oracle, small \
           data only), topk (the top-k upper bound).")

let k_arg =
  Arg.(
    value & opt int 64
    & info [ "k" ] ~docv:"K" ~doc:"Table size for --algorithm topk.")

let tables_flag =
  Arg.(
    value & flag
    & info [ "tables" ] ~doc:"Also print every multiplicity table.")

let explain_flag =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:"Print intermediate topjoin/botjoin and table sizes.")

let run_sensitivity query data algorithm k tables explain sql jobs storage
    cache cache_stats stats trace =
  handle_errors (fun () ->
      apply_jobs jobs;
      apply_storage storage;
      apply_cache cache;
      with_cache_stats ~cache_stats @@ fun () ->
      with_observability ~stats ~trace @@ fun () ->
      let cq, constraints, db = prepare ~sql query data in
      let selection = Constraints.selection constraints in
      let need_selection_support name =
        if selection <> None then
          Errors.schema_errorf
            "algorithm %s does not support selection constraints; use tsens              or naive" name
      in
      let result =
        match algorithm with
        | `Tsens -> Tsens.local_sensitivity ?selection cq db
        | `Path ->
            need_selection_support "path";
            Path_sens.local_sensitivity cq db
        | `Elastic ->
            need_selection_support "elastic";
            Elastic.local_sensitivity cq db
        | `Naive -> Naive.local_sensitivity ?selection cq db
        | `Topk ->
            need_selection_support "topk";
            Approx.local_sensitivity ~k cq db
      in
      Format.printf "%a@." Sens_types.pp_result result;
      if explain then begin
        let analysis = Tsens.analyze ?selection cq db in
        Format.printf "@.%a@." Tsens.pp_statistics analysis
      end;
      if tables then begin
        let analysis = Tsens.analyze ?selection cq db in
        List.iter
          (fun r ->
            Format.printf "@.multiplicity table of %s:@.%a@." r Relation.pp
              (Tsens.multiplicity_table analysis r))
          (Cq.relation_names cq)
      end)

let sensitivity_cmd =
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Local sensitivity of a counting query over CSV relations.")
    Term.(
      const run_sensitivity $ query_arg $ data_dir_arg $ algorithm_arg $ k_arg
      $ tables_flag $ explain_flag $ sql_flag $ jobs_arg $ storage_arg
      $ cache_arg $ cache_stats_flag $ stats_arg $ trace_flag)

(* ------------------------------------------------------------------ *)
(* generate *)

let out_dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Output directory (created).")

let run_generate kind scale nodes edges circles out seed =
  handle_errors (fun () ->
      if not (Sys.file_exists out) then Sys.mkdir out 0o755;
      let db =
        match kind with
        | `Tpch -> Tpch.generate ~seed ~scale ()
        | `Facebook ->
            let data =
              Facebook.generate { Facebook.nodes; edges; circles; seed }
            in
            (* Write the four edge tables with generic column names plus
               the triangle table; queries rename columns as needed. *)
            Database.of_list
              (( "Triangles",
                 Facebook.triangle_relation data ~a:"X" ~b:"Y" ~c:"Z" )
              :: List.init 4 (fun i ->
                     ( Printf.sprintf "R%d" (i + 1),
                       Facebook.edge_relation data i ~x:"X" ~y:"Y" )))
      in
      Database.fold
        (fun name rel () ->
          let path = Filename.concat out (name ^ ".csv") in
          Csv.write_file path rel;
          Format.printf "wrote %s (%a)@." path Relation.pp_summary rel)
        db ())

let generate_cmd =
  let kind =
    Arg.(
      value
      & opt (enum [ ("tpch", `Tpch); ("facebook", `Facebook) ]) `Tpch
      & info [ "kind" ] ~docv:"KIND" ~doc:"tpch (default) or facebook.")
  in
  let scale =
    Arg.(value & opt float 0.001 & info [ "scale" ] ~doc:"TPC-H scale.")
  in
  let nodes =
    Arg.(value & opt int 225 & info [ "nodes" ] ~doc:"Ego-network nodes.")
  in
  let edges =
    Arg.(value & opt int 6400 & info [ "edges" ] ~doc:"Ego-network edges.")
  in
  let circles =
    Arg.(value & opt int 567 & info [ "circles" ] ~doc:"Ego-network circles.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Write a synthetic instance as CSV files.")
    Term.(
      const run_generate $ kind $ scale $ nodes $ edges $ circles $ out_dir_arg
      $ seed_arg)

(* ------------------------------------------------------------------ *)
(* dp *)

let run_dp query data private_relation epsilon ell seed sql jobs storage cache
    cache_stats stats trace =
  handle_errors (fun () ->
      apply_jobs jobs;
      apply_storage storage;
      apply_cache cache;
      with_cache_stats ~cache_stats @@ fun () ->
      with_observability ~stats ~trace @@ fun () ->
      let cq, constraints, db = prepare ~sql query data in
      let selection = Constraints.selection constraints in
      let analysis = Tsens.analyze ?selection cq db in
      let config =
        {
          (Mechanism.default_config ~ell ~private_relation) with
          Mechanism.epsilon;
        }
      in
      let rng = Prng.create seed in
      let report = Mechanism.run_with_analysis rng config analysis in
      Format.printf "released answer: %a@." Report.pp_value
        (Report.released report);
      Format.printf "%a@." Report.pp report)

let dp_cmd =
  let private_rel =
    Arg.(
      required
      & opt (some string) None
      & info [ "private" ] ~docv:"RELATION"
          ~doc:"The primary private relation.")
  in
  let epsilon =
    Arg.(value & opt float 1.0 & info [ "epsilon" ] ~doc:"Privacy budget.")
  in
  let ell =
    Arg.(
      value & opt int 100
      & info [ "ell" ] ~doc:"Public upper bound on tuple sensitivity.")
  in
  Cmd.v
    (Cmd.info "dp"
       ~doc:"Release the counting query's answer with TSensDP (epsilon-DP).")
    Term.(
      const run_dp $ query_arg $ data_dir_arg $ private_rel $ epsilon $ ell
      $ seed_arg $ sql_flag $ jobs_arg $ storage_arg $ cache_arg
      $ cache_stats_flag $ stats_arg $ trace_flag)

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "tsens"
      ~doc:
        "Local sensitivities of counting queries with joins (SIGMOD 2020), \
         and truncation-based differentially private releases."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ check_cmd; classify_cmd; sensitivity_cmd; generate_cmd; dp_cmd ]))
