(* The execution layer: pool unit tests plus the central determinism
   property — every parallel kernel returns results bit-identical to
   jobs=1 at any job count.

   The determinism properties force the partitioned code paths onto the
   small QCheck relations by dropping the sequential cutoff to 1 for the
   duration of each check. *)

open Tsens_relational
open Tsens_query
open Tsens_sensitivity

let with_cutoff n f =
  let saved = Exec.sequential_cutoff () in
  Exec.set_sequential_cutoff n;
  Fun.protect ~finally:(fun () -> Exec.set_sequential_cutoff saved) f

(* [f] produces the same value at jobs 2 and 4 as at jobs 1, with the
   cutoff lowered so even tiny inputs take the parallel paths. *)
let same_at_all_jobs equal f =
  with_cutoff 1 @@ fun () ->
  let reference = Exec.with_jobs 1 f in
  List.for_all (fun j -> equal reference (Exec.with_jobs j f)) [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Pool units *)

let test_empty_inputs () =
  Exec.with_jobs 4 @@ fun () ->
  Alcotest.(check (array int)) "map on empty" [||] (Exec.parallel_map succ [||]);
  Alcotest.(check (list int)) "map on nil" [] (Exec.parallel_map_list succ []);
  Exec.parallel_for 5 5 (fun _ -> Alcotest.fail "body on empty range");
  Exec.run_tasks [||]

let test_map_order () =
  Exec.with_jobs 4 @@ fun () ->
  let input = Array.init 1000 Fun.id in
  Alcotest.(check (array int))
    "parallel map matches sequential" (Array.map succ input)
    (Exec.parallel_map succ input)

let test_for_covers_range () =
  Exec.with_jobs 4 @@ fun () ->
  let hits = Array.make 1000 0 in
  Exec.parallel_for 0 1000 (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check bool) "each index exactly once" true
    (Array.for_all (( = ) 1) hits)

let test_exception_propagates () =
  Exec.with_jobs 2 @@ fun () ->
  match
    Exec.parallel_map (fun i -> if i = 37 then failwith "boom" else i)
      (Array.init 100 Fun.id)
  with
  | exception Failure m -> Alcotest.(check string) "message" "boom" m
  | _ -> Alcotest.fail "expected Failure"

(* A failing region must leave the pool usable. *)
let test_pool_survives_exception () =
  Exec.with_jobs 2 @@ fun () ->
  (try
     Exec.parallel_for 0 100 (fun i -> if i mod 10 = 3 then failwith "boom")
   with Failure _ -> ());
  Alcotest.(check (array int)) "next region runs" [| 1; 2; 3 |]
    (Exec.parallel_map succ [| 0; 1; 2 |])

let test_nested_calls () =
  Exec.with_jobs 4 @@ fun () ->
  let expected =
    Array.init 20 (fun i ->
        Array.fold_left ( + ) 0 (Array.init 20 (fun j -> i * j)))
  in
  let got =
    Exec.parallel_map
      (fun i ->
        (* Runs inside a region task: must fall back to sequential
           execution instead of deadlocking on the pool. *)
        Array.fold_left ( + ) 0
          (Exec.parallel_map (fun j -> i * j) (Array.init 20 Fun.id)))
      (Array.init 20 Fun.id)
  in
  Alcotest.(check (array int)) "nested map correct" expected got

let test_with_jobs_restores () =
  let before = Exec.jobs () in
  Exec.with_jobs 3 (fun () ->
      Alcotest.(check int) "inside" 3 (Exec.jobs ()));
  Alcotest.(check int) "restored" before (Exec.jobs ());
  (try Exec.with_jobs 3 (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "restored after exception" before (Exec.jobs ())

let test_jobs_clamped () =
  Exec.with_jobs 0 (fun () ->
      Alcotest.(check int) "floor at 1" 1 (Exec.jobs ()));
  Exec.with_jobs 1000 (fun () ->
      Alcotest.(check int) "ceiling at 64" 64 (Exec.jobs ()))

let test_pays_off_gating () =
  with_cutoff 10 @@ fun () ->
  Exec.with_jobs 4 (fun () ->
      Alcotest.(check bool) "below cutoff" false (Exec.pays_off 9);
      Alcotest.(check bool) "at cutoff" true (Exec.pays_off 10));
  Exec.with_jobs 1 (fun () ->
      Alcotest.(check bool) "never at one job" false (Exec.pays_off 1000))

(* ------------------------------------------------------------------ *)
(* Determinism of the relational kernels *)

let prop_natural_join_jobs =
  Tgen.qtest "natural_join identical across jobs" Tgen.joinable_pair_gen
    Tgen.print_relation_pair (fun (a, b) ->
      same_at_all_jobs Relation.equal (fun () -> Join.natural_join a b))

let prop_merge_join_jobs =
  Tgen.qtest "merge_join identical across jobs" Tgen.joinable_pair_gen
    Tgen.print_relation_pair (fun (a, b) ->
      same_at_all_jobs Relation.equal (fun () -> Join.merge_join a b))

let prop_join_project_jobs =
  Tgen.qtest "join_project identical across jobs" Tgen.joinable_pair_gen
    Tgen.print_relation_pair (fun (a, b) ->
      let group = Schema.inter (Relation.schema a) (Relation.schema b) in
      same_at_all_jobs Relation.equal (fun () ->
          Join.join_project ~group a b))

let prop_count_join_jobs =
  Tgen.qtest "count_join identical across jobs" Tgen.joinable_pair_gen
    Tgen.print_relation_pair (fun (a, b) ->
      same_at_all_jobs Count.equal (fun () -> Join.count_join a b))

let prop_join_project_all_jobs =
  Tgen.qtest "join_project_all identical across jobs" Tgen.joinable_pair_gen
    Tgen.print_relation_pair (fun (a, b) ->
      let group = Schema.inter (Relation.schema a) (Relation.schema b) in
      same_at_all_jobs Relation.equal (fun () ->
          Join.join_project_all ~group [ a; b; a ]))

let prop_project_jobs =
  Tgen.qtest "project identical across jobs" Tgen.relation_gen
    Tgen.print_relation (fun r ->
      let target =
        match Schema.attrs (Relation.schema r) with
        | first :: _ -> Schema.of_list [ first ]
        | [] -> Schema.empty
      in
      same_at_all_jobs Relation.equal (fun () -> Relation.project target r))

(* ------------------------------------------------------------------ *)
(* Determinism of the sensitivity algorithms *)

let result_equal (a : Sens_types.result) (b : Sens_types.result) =
  let witness_equal w1 w2 =
    match (w1, w2) with
    | None, None -> true
    | Some w1, Some w2 ->
        String.equal w1.Sens_types.relation w2.Sens_types.relation
        && Schema.equal w1.Sens_types.schema w2.Sens_types.schema
        && Tuple.equal w1.Sens_types.tuple w2.Sens_types.tuple
        && Count.equal w1.Sens_types.sensitivity w2.Sens_types.sensitivity
    | _ -> false
  in
  Count.equal a.local_sensitivity b.local_sensitivity
  && witness_equal a.witness b.witness
  && List.equal
       (fun (r1, c1) (r2, c2) -> String.equal r1 r2 && Count.equal c1 c2)
       a.per_relation b.per_relation

(* A fixed two-atom path query over generated instances: small enough
   for the naive oracle, joined enough to exercise every kernel. *)
let path_cq =
  Cq.make ~name:"qexec"
    [ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]) ]

let path_db_gen =
  QCheck2.Gen.(
    Tgen.relation_of_schema_gen (Schema.of_list [ "A"; "B" ]) >>= fun r ->
    Tgen.relation_of_schema_gen (Schema.of_list [ "B"; "C" ]) >>= fun s ->
    return (Database.of_list [ ("R", r); ("S", s) ]))

let print_db db =
  Database.fold
    (fun name rel acc ->
      acc ^ Format.asprintf "%s:@.%a@." name Relation.pp rel)
    db ""

let prop_tsens_jobs =
  Tgen.qtest ~count:60 "tsens identical across jobs" path_db_gen print_db
    (fun db ->
      same_at_all_jobs result_equal (fun () ->
          Tsens.local_sensitivity path_cq db))

let prop_naive_jobs =
  Tgen.qtest ~count:25 "naive identical across jobs" path_db_gen print_db
    (fun db ->
      same_at_all_jobs result_equal (fun () ->
          Naive.local_sensitivity path_cq db))

let prop_elastic_jobs =
  Tgen.qtest ~count:60 "elastic identical across jobs" path_db_gen print_db
    (fun db ->
      same_at_all_jobs result_equal (fun () ->
          Elastic.local_sensitivity path_cq db))

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "empty inputs" `Quick test_empty_inputs;
          Alcotest.test_case "map order" `Quick test_map_order;
          Alcotest.test_case "for covers range" `Quick test_for_covers_range;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "pool survives exception" `Quick
            test_pool_survives_exception;
          Alcotest.test_case "nested calls" `Quick test_nested_calls;
          Alcotest.test_case "with_jobs restores" `Quick
            test_with_jobs_restores;
          Alcotest.test_case "jobs clamped" `Quick test_jobs_clamped;
          Alcotest.test_case "pays_off gating" `Quick test_pays_off_gating;
        ] );
      ( "determinism",
        [
          prop_natural_join_jobs;
          prop_merge_join_jobs;
          prop_join_project_jobs;
          prop_count_join_jobs;
          prop_join_project_all_jobs;
          prop_project_jobs;
        ] );
      ( "sensitivity",
        [ prop_tsens_jobs; prop_naive_jobs; prop_elastic_jobs ] );
    ]
