(* Tests for the static analyzer: every diagnostic code with a positive
   and a clean case, source spans on the fixtures the checks point at,
   and the JSON round-trip. *)

open Tsens_relational
open Tsens_query
open Tsens_analysis

let codes (r : Diagnostic.report) =
  List.map (fun d -> d.Diagnostic.code) r.Diagnostic.items

let has code r = Diagnostic.find_code code r <> []

let only code r =
  match Diagnostic.find_code code r with
  | [ d ] -> d
  | ds ->
      Alcotest.failf "expected exactly one %s, got %d" code (List.length ds)

let span_text source (d : Diagnostic.t) =
  match d.Diagnostic.span with
  | None -> Alcotest.failf "%s carries no span" d.Diagnostic.code
  | Some span -> Srcspan.extract source span

let no_errors name r =
  Alcotest.(check (list string)) name [] (codes { r with Diagnostic.items = Diagnostic.errors r })

let dp_ok =
  {
    Analyzer.epsilon = 1.0;
    threshold_fraction = 0.5;
    ell = 10;
    private_relation = None;
  }

let triangle_cq =
  Cq.make ~name:"triangle"
    [ ("R1", [ "A"; "B" ]); ("R2", [ "B"; "C" ]); ("R3", [ "C"; "A" ]) ]

let path2_cq =
  Cq.make ~name:"path2" [ ("R1", [ "A"; "B" ]); ("R2", [ "B"; "C" ]) ]

(* ------------------------------------------------------------------ *)
(* TS001: syntax errors *)

let test_ts001 () =
  let src = "Q(*) :- R1(A B)." in
  let r = Analyzer.check_source src in
  let d = only "TS001" r in
  Alcotest.(check bool) "is error" true (d.Diagnostic.severity = Diagnostic.Error);
  Alcotest.(check bool) "has span" true (d.Diagnostic.span <> None);
  (* SQL translation failures surface as TS001 too. *)
  let r =
    Analyzer.check_sql
      ~catalog:[ ("R", [ "A"; "B" ]) ]
      "SELECT COUNT(*) FROM R WHERE nope = 1"
  in
  Alcotest.(check bool) "sql unknown column" true (has "TS001" r);
  no_errors "clean" (Analyzer.check_source "Q(*) :- R1(A,B).")

(* ------------------------------------------------------------------ *)
(* TS002/TS003: catalog conformance *)

let catalog = [ ("R1", [ "A"; "B" ]); ("R2", [ "B"; "C" ]) ]

let test_ts002 () =
  let src = "Q(*) :- R1(A,B), Nope(B,C)." in
  let r = Analyzer.check_source ~catalog src in
  let d = only "TS002" r in
  Alcotest.(check string) "span names the atom" "Nope" (span_text src d);
  (* SQL surface: unknown table with the FROM-item span. *)
  let sql = "SELECT COUNT(*) FROM R1, Nope" in
  let d = only "TS002" (Analyzer.check_sql ~catalog sql) in
  Alcotest.(check string) "sql span" "Nope" (span_text sql d);
  no_errors "clean" (Analyzer.check_source ~catalog "Q(*) :- R1(A,B), R2(B,C).")

let test_ts003 () =
  let src = "Q(*) :- R1(A,B,Z), R2(B,C)." in
  let r = Analyzer.check_source ~catalog src in
  let d = only "TS003" r in
  Alcotest.(check string) "span covers the atom" "R1(A,B,Z)" (span_text src d);
  (* Attribute order does not matter (schemas are sets). *)
  no_errors "order-insensitive"
    (Analyzer.check_source ~catalog "Q(*) :- R1(B,A), R2(C,B).");
  (* check_cq takes the same catalog. *)
  Alcotest.(check bool) "cq surface" true
    (has "TS003"
       (Analyzer.check_cq ~catalog
          (Cq.make [ ("R1", [ "A"; "X" ]); ("R2", [ "X"; "C" ]) ])))

(* ------------------------------------------------------------------ *)
(* TS004/TS005: structure the engines reject at construction time *)

let test_ts004 () =
  let src = "Q(*) :- R1(A,A), R2(A,B)." in
  let r = Analyzer.check_source src in
  let d = only "TS004" r in
  Alcotest.(check string) "span" "R1(A,A)" (span_text src d);
  Alcotest.(check bool) "message names the variable" true
    (String.length d.Diagnostic.message > 0
    && has "TS004" r
    &&
    let msg = d.Diagnostic.message in
    String.length msg >= 1
    && Option.is_some (String.index_opt msg 'A'));
  no_errors "clean" (Analyzer.check_source "Q(*) :- R1(A,B), R2(A,B).")

let test_ts005 () =
  let src = "Q(*) :- R1(A,B), R1(B,C)." in
  let d = only "TS005" (Analyzer.check_source src) in
  Alcotest.(check string) "span is the second occurrence" "R1(B,C)"
    (span_text src d);
  let sql = "SELECT COUNT(*) FROM R1 AS a, R1 AS b" in
  let d = only "TS005" (Analyzer.check_sql ~catalog sql) in
  Alcotest.(check string) "sql span" "R1 AS b" (span_text sql d);
  no_errors "clean" (Analyzer.check_source "Q(*) :- R1(A,B), R2(B,C).")

(* ------------------------------------------------------------------ *)
(* TS006/TS007: binding errors *)

let test_ts006 () =
  let src = "Q(*) :- R1(A,B), Z > 5." in
  let d = only "TS006" (Analyzer.check_source src) in
  Alcotest.(check string) "span" "Z > 5" (span_text src d);
  no_errors "clean" (Analyzer.check_source "Q(*) :- R1(A,B), A > 5.");
  (* check_cq with explicit constraints. *)
  Alcotest.(check bool) "cq surface" true
    (has "TS006"
       (Analyzer.check_cq
          ~constraints:
            [ { Constraints.var = "Z"; op = Constraints.Gt; value = Value.int 5 } ]
          path2_cq))

let test_ts007 () =
  let src = "Q(A) :- R1(A,B)." in
  let d = only "TS007" (Analyzer.check_source src) in
  Alcotest.(check bool) "names the missing variable" true
    (Option.is_some (String.index_opt d.Diagnostic.message 'B'));
  Alcotest.(check bool) "has span" true (d.Diagnostic.span <> None);
  no_errors "clean" (Analyzer.check_source "Q(A,B) :- R1(A,B).");
  no_errors "star head" (Analyzer.check_source "Q(*) :- R1(A,B).")

(* ------------------------------------------------------------------ *)
(* TS008–TS010: shape *)

let test_ts008 () =
  let src = "Q(*) :- R1(A,B), R2(X,Y)." in
  let r = Analyzer.check_source src in
  let d = only "TS008" r in
  Alcotest.(check bool) "warning" true
    (d.Diagnostic.severity = Diagnostic.Warning);
  Alcotest.(check bool) "still no errors" false (Diagnostic.has_errors r);
  Alcotest.(check bool) "connected is clean" false
    (has "TS008" (Analyzer.check_source "Q(*) :- R1(A,B), R2(B,C)."))

let test_ts009 () =
  let msg src =
    (only "TS009" (Analyzer.check_source src)).Diagnostic.message
  in
  let contains needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "path report" true
    (contains "path (R1 - R2)" (msg "Q(*) :- R1(A,B), R2(B,C)."));
  Alcotest.(check bool) "doubly acyclic report" true
    (contains "doubly acyclic"
       (msg "Q(*) :- R1(A,B,C), R2(A,B,D), R3(A,E), R4(B,F)."));
  Alcotest.(check bool) "acyclic report has degree" true
    (contains "max tree degree d = 3"
       (msg "Q(*) :- Rt(A,B,C), R1(A,B), R2(B,C), R3(C,A)."));
  Alcotest.(check bool) "cyclic report has width" true
    (contains "auto width 2" (msg "Q(*) :- R1(A,B), R2(B,C), R3(C,A)."))

let test_ts010 () =
  let src = "Q(*) :- R0(X,A), R1(A,B), R2(B,C), R3(C,A)." in
  let d = only "TS010" (Analyzer.check_source src) in
  (* The residual witness is the stuck triangle, not the ear R0. *)
  Alcotest.(check string) "span covers the residual atoms"
    "R1(A,B), R2(B,C), R3(C,A)" (span_text src d);
  Alcotest.(check bool) "names the residual" true
    (let msg = d.Diagnostic.message in
     let has_sub needle =
       let nl = String.length needle and hl = String.length msg in
       let rec go i = i + nl <= hl && (String.sub msg i nl = needle || go (i + 1)) in
       go 0
     in
     has_sub "{R1, R2, R3}" && not (has_sub "R0"));
  Alcotest.(check bool) "acyclic is clean" false
    (has "TS010" (Analyzer.check_source "Q(*) :- R1(A,B), R2(B,C)."))

(* ------------------------------------------------------------------ *)
(* TS011: unsatisfiable constraints *)

let test_ts011 () =
  let src = "Q(*) :- R1(A,B), A > 5, A < 3." in
  let d = only "TS011" (Analyzer.check_source src) in
  Alcotest.(check string) "span joins the contradicting constraints"
    "A > 5, A < 3" (span_text src d);
  no_errors "still runnable" (Analyzer.check_source src);
  Alcotest.(check bool) "satisfiable is clean" false
    (has "TS011" (Analyzer.check_source "Q(*) :- R1(A,B), A > 3, A < 5."));
  Alcotest.(check bool) "eq contradiction" true
    (has "TS011" (Analyzer.check_source "Q(*) :- R1(A,B), A = 1, A = 2."))

(* ------------------------------------------------------------------ *)
(* TS012–TS015: DP configuration *)

let test_dp_codes () =
  let check name config expected =
    Alcotest.(check (list string))
      name expected
      (List.map
         (fun d -> d.Diagnostic.code)
         (Analyzer.check_dp_config config))
  in
  check "valid" dp_ok [];
  check "bad epsilon" { dp_ok with Analyzer.epsilon = 0.0 } [ "TS012" ];
  check "nan epsilon" { dp_ok with Analyzer.epsilon = Float.nan } [ "TS012" ];
  check "bad fraction"
    { dp_ok with Analyzer.threshold_fraction = 1.0 }
    [ "TS013" ];
  check "bad ell" { dp_ok with Analyzer.ell = 0 } [ "TS014" ];
  check "everything wrong, stable order"
    { Analyzer.epsilon = -1.0; threshold_fraction = 2.0; ell = 0;
      private_relation = None }
    [ "TS012"; "TS013"; "TS014" ];
  (* The exact messages are the mechanism's historical error strings. *)
  let messages config =
    List.map
      (fun d -> d.Diagnostic.message)
      (Analyzer.check_dp_config config)
  in
  Alcotest.(check (list string))
    "legacy messages"
    [
      "non-positive epsilon";
      "threshold_fraction must be in (0, 1)";
      "ell must be at least 1";
    ]
    (messages
       { Analyzer.epsilon = 0.0; threshold_fraction = 0.0; ell = 0;
         private_relation = None })

let test_ts015 () =
  let dp r = { dp_ok with Analyzer.private_relation = Some r } in
  let ds = Analyzer.check_dp_config ~query:triangle_cq (dp "R9") in
  Alcotest.(check (list string)) "absent relation" [ "TS015" ]
    (List.map (fun d -> d.Diagnostic.code) ds);
  Alcotest.(check (list string)) "member is clean" []
    (List.map
       (fun d -> d.Diagnostic.code)
       (Analyzer.check_dp_config ~query:triangle_cq (dp "R2")));
  (* No query in scope: membership cannot be checked, not an error. *)
  Alcotest.(check (list string)) "no query" []
    (List.map (fun d -> d.Diagnostic.code) (Analyzer.check_dp_config (dp "R9")))

(* DP config checks run even when structural errors block Cq
   construction (only TS015 needs the query). *)
let test_dp_with_structural_errors () =
  let r =
    Analyzer.check_source
      ~dp:{ dp_ok with Analyzer.epsilon = 0.0 }
      "Q(*) :- R1(A,B), R1(B,C)."
  in
  Alcotest.(check bool) "TS005 present" true (has "TS005" r);
  Alcotest.(check bool) "TS012 present" true (has "TS012" r)

(* The bad-epsilon fixture carries the query's span end to end. *)
let test_dp_span_through_source () =
  let src = "Q(*) :- R1(A,B), R2(B,C)." in
  let r =
    Analyzer.check_source
      ~dp:{ dp_ok with Analyzer.epsilon = -2.0; private_relation = Some "R9" }
      src
  in
  let d12 = only "TS012" r and d15 = only "TS015" r in
  Alcotest.(check string) "TS012 spans the query" src (span_text src d12);
  Alcotest.(check string) "TS015 spans the query" src (span_text src d15)

(* ------------------------------------------------------------------ *)
(* TS016: saturation risk *)

let test_ts016 () =
  let big = 1 lsl 21 in
  let stats = [ ("R1", big); ("R2", big); ("R3", big) ] in
  let r = Analyzer.check_cq ~stats triangle_cq in
  let d = only "TS016" r in
  Alcotest.(check bool) "warning" true
    (d.Diagnostic.severity = Diagnostic.Warning);
  (* Small instances are clean. *)
  Alcotest.(check bool) "small is clean" false
    (has "TS016"
       (Analyzer.check_cq ~stats:[ ("R1", 10); ("R2", 10); ("R3", 10) ]
          triangle_cq));
  (* Missing statistics for an atom: no bound, no warning. *)
  Alcotest.(check bool) "partial stats skip" false
    (has "TS016"
       (Analyzer.check_cq ~stats:[ ("R1", big); ("R2", big) ] triangle_cq))

let test_stats_of_database () =
  let rel rows =
    Relation.of_rows ~schema:(Schema.of_list [ "A" ])
      (List.map (fun v -> [ Value.int v ]) rows)
  in
  let db = Database.of_list [ ("R1", rel [ 1; 2; 3 ]); ("R2", rel [ 7 ]) ] in
  Alcotest.(check (list (pair string int)))
    "cardinalities"
    [ ("R1", 3); ("R2", 1) ]
    (Analyzer.stats_of_database db)

(* ------------------------------------------------------------------ *)
(* Reports: ordering, rendering, JSON round-trip *)

let test_report_ordering () =
  let r =
    Analyzer.check_source ~catalog
      "Q(*) :- R1(A,B), Nope(B,C), X > 1, X < 0."
  in
  (* Errors first, then warnings, then the info shape report last. *)
  let sevs = List.map (fun d -> d.Diagnostic.severity) r.Diagnostic.items in
  let ranks =
    List.map
      (function Diagnostic.Error -> 0 | Warning -> 1 | Info -> 2)
      sevs
  in
  Alcotest.(check (list int)) "sorted" (List.sort compare ranks) ranks

let test_json_round_trip () =
  let reports =
    [
      Analyzer.check_source "Q(*) :- R1(A B).";
      Analyzer.check_source ~catalog "Q(*) :- R1(A,A), Nope(B,C), Z > 5.";
      Analyzer.check_source ~dp:{ dp_ok with Analyzer.epsilon = 0.0 }
        "Q(*) :- R1(A,B), R2(X,Y).";
      Analyzer.check_cq ~stats:[ ("R1", 5); ("R2", 5); ("R3", 5) ] triangle_cq;
      Diagnostic.report [];
    ]
  in
  List.iteri
    (fun i r ->
      match Diagnostic.report_of_json (Diagnostic.report_to_json r) with
      | Ok r' ->
          Alcotest.(check bool)
            (Printf.sprintf "report %d round-trips" i)
            true
            (Diagnostic.equal_report r r')
      | Error e -> Alcotest.failf "report %d: %s" i e)
    reports

let test_json_values () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd");
        ("n", Json.Int (-42));
        ("f", Json.Float 2.5);
        ("l", Json.List [ Json.Null; Json.Bool true; Json.Obj [] ]);
      ]
  in
  (match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "value round-trips" true (Json.equal v v')
  | Error e -> Alcotest.fail e);
  (match Json.of_string "{\"a\": 1} trailing" with
  | Ok _ -> Alcotest.fail "trailing content accepted"
  | Error _ -> ());
  match Json.of_string "[1, 2" with
  | Ok _ -> Alcotest.fail "unterminated list accepted"
  | Error _ -> ()

let test_pretty_rendering () =
  let src = "Q(*) :- R1(A,B), R1(B,C)." in
  let out =
    Format.asprintf "%a" (Diagnostic.pp_report ~source:src)
      (Analyzer.check_source src)
  in
  let contains needle =
    let nl = String.length needle and hl = String.length out in
    let rec go i = i + nl <= hl && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "code" true (contains "TS005");
  Alcotest.(check bool) "line:col position" true (contains "at 1:18");
  Alcotest.(check bool) "caret underline" true (contains "^^^^^^^");
  Alcotest.(check bool) "summary" true (contains "1 error, 0 warnings, 0 notes")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "analysis"
    [
      ( "syntax",
        [
          Alcotest.test_case "TS001 syntax errors" `Quick test_ts001;
          Alcotest.test_case "TS002 unknown relation" `Quick test_ts002;
          Alcotest.test_case "TS003 schema mismatch" `Quick test_ts003;
          Alcotest.test_case "TS004 duplicate variable" `Quick test_ts004;
          Alcotest.test_case "TS005 self-join" `Quick test_ts005;
          Alcotest.test_case "TS006 unbound constraint" `Quick test_ts006;
          Alcotest.test_case "TS007 head mismatch" `Quick test_ts007;
        ] );
      ( "shape",
        [
          Alcotest.test_case "TS008 disconnected" `Quick test_ts008;
          Alcotest.test_case "TS009 shape report" `Quick test_ts009;
          Alcotest.test_case "TS010 cyclic witness" `Quick test_ts010;
          Alcotest.test_case "TS011 unsatisfiable" `Quick test_ts011;
        ] );
      ( "dp",
        [
          Alcotest.test_case "TS012-TS014 config" `Quick test_dp_codes;
          Alcotest.test_case "TS015 private relation" `Quick test_ts015;
          Alcotest.test_case "dp with structural errors" `Quick
            test_dp_with_structural_errors;
          Alcotest.test_case "span through source" `Quick
            test_dp_span_through_source;
        ] );
      ( "stats",
        [
          Alcotest.test_case "TS016 saturation" `Quick test_ts016;
          Alcotest.test_case "stats_of_database" `Quick test_stats_of_database;
        ] );
      ( "reports",
        [
          Alcotest.test_case "ordering" `Quick test_report_ordering;
          Alcotest.test_case "json round trip" `Quick test_json_round_trip;
          Alcotest.test_case "json values" `Quick test_json_values;
          Alcotest.test_case "pretty rendering" `Quick test_pretty_rendering;
        ] );
    ]
