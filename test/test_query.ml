(* Tests for conjunctive queries, GYO decomposition, join trees, GHDs,
   classification, and the datalog parser. *)

open Tsens_relational
open Tsens_query

let schema l = Schema.of_list l

(* The paper's running example (Figure 1 / Figure 2). *)
let fig1_cq =
  Cq.make ~name:"fig1"
    [
      ("R1", [ "A"; "B"; "C" ]);
      ("R2", [ "A"; "B"; "D" ]);
      ("R3", [ "A"; "E" ]);
      ("R4", [ "B"; "F" ]);
    ]

let path4_cq =
  Cq.make ~name:"path4"
    [
      ("R1", [ "A"; "B" ]);
      ("R2", [ "B"; "C" ]);
      ("R3", [ "C"; "D" ]);
      ("R4", [ "D"; "E" ]);
    ]

let triangle_cq =
  Cq.make ~name:"triangle"
    [ ("R1", [ "A"; "B" ]); ("R2", [ "B"; "C" ]); ("R3", [ "C"; "A" ]) ]

let square_cq =
  Cq.make ~name:"square"
    [
      ("R1", [ "A"; "B" ]);
      ("R2", [ "B"; "C" ]);
      ("R3", [ "C"; "D" ]);
      ("R4", [ "D"; "A" ]);
    ]

(* The paper's "star" query q*: triangle relation joined with its edges —
   acyclic but not doubly acyclic (Section 5.2's hard example). *)
let star_cq =
  Cq.make ~name:"star"
    [
      ("Rt", [ "A"; "B"; "C" ]);
      ("R1", [ "A"; "B" ]);
      ("R2", [ "B"; "C" ]);
      ("R3", [ "C"; "A" ]);
    ]

let disconnected_cq =
  Cq.make ~name:"disc"
    [ ("R1", [ "A"; "B" ]); ("R2", [ "B"; "C" ]); ("R3", [ "X"; "Y" ]) ]

(* ------------------------------------------------------------------ *)
(* Cq *)

let test_cq_validation () =
  Alcotest.check_raises "empty body" (Errors.Schema_error "CQ Q has no atoms")
    (fun () -> ignore (Cq.make []));
  Alcotest.check_raises "self join"
    (Errors.Schema_error
       "relation R appears twice in CQ Q (self-joins are unsupported)")
    (fun () -> ignore (Cq.make [ ("R", [ "A" ]); ("R", [ "B" ]) ]))

let test_cq_vars () =
  Alcotest.(check (list string))
    "vars in first-occurrence order"
    [ "A"; "B"; "C"; "D"; "E"; "F" ]
    (Cq.vars fig1_cq);
  Alcotest.(check int) "var count" 6 (Cq.var_count fig1_cq);
  Alcotest.(check (list string))
    "atoms with A" [ "R1"; "R2"; "R3" ]
    (Cq.atoms_with fig1_cq "A");
  Alcotest.(check (list string))
    "shared vars" [ "A"; "B" ] (Cq.shared_vars fig1_cq);
  Alcotest.(check (list string))
    "lonely vars" [ "C"; "D"; "E"; "F" ]
    (Cq.lonely_vars fig1_cq)

let test_cq_components () =
  Alcotest.(check bool) "fig1 connected" true (Cq.is_connected fig1_cq);
  Alcotest.(check bool) "disc not connected" false
    (Cq.is_connected disconnected_cq);
  let comps = Cq.components disconnected_cq in
  Alcotest.(check int) "two components" 2 (List.length comps);
  Alcotest.(check (list (list string)))
    "component atoms"
    [ [ "R1"; "R2" ]; [ "R3" ] ]
    (List.map Cq.relation_names comps)

let test_cq_restrict () =
  let sub = Cq.restrict fig1_cq ~keep:(fun r -> r = "R1" || r = "R3") in
  Alcotest.(check (list string)) "kept" [ "R1"; "R3" ] (Cq.relation_names sub);
  Alcotest.check_raises "empty restriction"
    (Errors.Schema_error "restriction of CQ fig1 keeps no atom") (fun () ->
      ignore (Cq.restrict fig1_cq ~keep:(fun _ -> false)))

let test_cq_project_onto_shared () =
  let projected = Cq.project_onto_shared fig1_cq in
  Alcotest.check Tgen.schema_testable "R1 loses C"
    (schema [ "A"; "B" ])
    (Cq.schema_of projected "R1");
  Alcotest.check Tgen.schema_testable "R3 loses E" (schema [ "A" ])
    (Cq.schema_of projected "R3");
  (* A single-atom query keeps a stand-in attribute. *)
  let single = Cq.make [ ("R", [ "A"; "B" ]) ] in
  Alcotest.check Tgen.schema_testable "stand-in attr" (schema [ "A" ])
    (Cq.schema_of (Cq.project_onto_shared single) "R")

let test_cq_check_database () =
  let db =
    Database.of_list
      [ ("R1", Relation.empty (schema [ "A"; "B" ])) ]
  in
  let q = Cq.make [ ("R1", [ "A"; "B" ]) ] in
  Cq.check_database q db;
  let q_bad = Cq.make [ ("R1", [ "A"; "Z" ]) ] in
  Alcotest.check_raises "schema mismatch"
    (Errors.Schema_error
       "relation R1 has schema (A, B) but CQ Q expects (A, Z)") (fun () ->
      Cq.check_database q_bad db);
  let q_missing = Cq.make [ ("R9", [ "A" ]) ] in
  Alcotest.check_raises "missing relation"
    (Errors.Schema_error "database lacks relation R9 required by CQ Q")
    (fun () -> Cq.check_database q_missing db)

(* ------------------------------------------------------------------ *)
(* Gyo *)

let test_gyo_fig1_acyclic () =
  match Gyo.decompose fig1_cq with
  | Gyo.Acyclic steps ->
      Alcotest.(check int) "all atoms eliminated" 4 (List.length steps);
      let roots =
        List.filter (fun s -> s.Gyo.witness = None) steps
      in
      Alcotest.(check int) "exactly one root" 1 (List.length roots)
  | Gyo.Cyclic _ -> Alcotest.fail "fig1 should be acyclic"

let test_gyo_cyclic () =
  (match Gyo.decompose triangle_cq with
  | Gyo.Cyclic residual ->
      Alcotest.(check int) "triangle residual" 3 (List.length residual)
  | Gyo.Acyclic _ -> Alcotest.fail "triangle should be cyclic");
  Alcotest.(check bool) "square cyclic" false (Gyo.is_acyclic square_cq);
  Alcotest.(check bool) "path acyclic" true (Gyo.is_acyclic path4_cq);
  Alcotest.(check bool) "star acyclic" true (Gyo.is_acyclic star_cq)

let test_gyo_elimination_raises () =
  Alcotest.check_raises "elimination on cyclic"
    (Errors.Schema_error "CQ triangle is cyclic (residual atoms: R1, R2, R3)")
    (fun () -> ignore (Gyo.elimination triangle_cq))

(* ------------------------------------------------------------------ *)
(* Join_tree *)

let test_join_tree_of_cq () =
  match Join_tree.of_cq fig1_cq with
  | None -> Alcotest.fail "fig1 should have a join tree"
  | Some jt ->
      Alcotest.(check int) "4 nodes" 4 (List.length (Join_tree.nodes jt));
      (* post-order visits children before parents. *)
      let post = Join_tree.post_order jt in
      Alcotest.(check string)
        "root last" (Join_tree.root jt)
        (List.nth post (List.length post - 1));
      let pre = Join_tree.pre_order jt in
      Alcotest.(check string) "root first" (Join_tree.root jt) (List.hd pre);
      Alcotest.(check int)
        "pre and post visit all" (List.length post) (List.length pre)

let test_join_tree_triangle_none () =
  Alcotest.(check bool) "no join tree for triangle" true
    (Join_tree.of_cq triangle_cq = None)

let test_join_tree_paper_shape () =
  (* The paper's Figure 2 join tree: R1 root with R2, R3, R4 children. *)
  let jt =
    Join_tree.make fig1_cq ~root:"R1"
      ~parents:[ ("R2", "R1"); ("R3", "R1"); ("R4", "R1") ]
  in
  Alcotest.(check string) "root" "R1" (Join_tree.root jt);
  Alcotest.(check (list string))
    "children" [ "R2"; "R3"; "R4" ]
    (Join_tree.children jt "R1");
  Alcotest.(check (list string)) "siblings of R3" [ "R2"; "R4" ]
    (Join_tree.siblings jt "R3");
  Alcotest.check Tgen.schema_testable "link of R3" (schema [ "A" ])
    (Join_tree.link_schema jt "R3");
  Alcotest.check Tgen.schema_testable "link of root" Schema.empty
    (Join_tree.link_schema jt "R1");
  Alcotest.(check int) "max degree" 3 (Join_tree.max_degree jt);
  Alcotest.(check bool) "not a path" false (Join_tree.is_path jt)

let test_join_tree_invalid_raises () =
  (* Hanging R3(A,E) off R4(B,F) breaks running intersection: R3 and R1
     share A but the R3-R4 link carries nothing. *)
  Alcotest.(check bool) "invalid tree rejected" true
    (match
       Join_tree.make fig1_cq ~root:"R1"
         ~parents:[ ("R2", "R1"); ("R4", "R1"); ("R3", "R4") ]
     with
    | exception Errors.Schema_error _ -> true
    | _ -> false);
  (* Not spanning: R4 unreachable. *)
  Alcotest.(check bool) "non-spanning rejected" true
    (match
       Join_tree.make fig1_cq ~root:"R1"
         ~parents:[ ("R2", "R1"); ("R3", "R1") ]
     with
    | exception Errors.Schema_error _ -> true
    | _ -> false)

let test_join_tree_two_parents () =
  Alcotest.check_raises "two parents rejected"
    (Errors.Schema_error "join tree gives R2 two parents") (fun () ->
      ignore
        (Join_tree.make fig1_cq ~root:"R1"
           ~parents:[ ("R2", "R1"); ("R2", "R3"); ("R3", "R1"); ("R4", "R1") ]));
  Alcotest.check_raises "root with a parent"
    (Errors.Schema_error "join tree root R1 has a parent") (fun () ->
      ignore
        (Join_tree.make fig1_cq ~root:"R1"
           ~parents:
             [ ("R1", "R2"); ("R2", "R1"); ("R3", "R1"); ("R4", "R1") ]))

let test_join_tree_path_shape () =
  let jt = Join_tree.of_cq_exn path4_cq in
  Alcotest.(check bool) "path tree is a chain" true (Join_tree.is_path jt);
  Alcotest.(check int) "chain degree 2" 2 (Join_tree.max_degree jt)

(* ------------------------------------------------------------------ *)
(* Ghd *)

let test_ghd_of_join_tree () =
  let g = Ghd.of_join_tree (Join_tree.of_cq_exn fig1_cq) in
  Alcotest.(check int) "width 1" 1 (Ghd.width g);
  Alcotest.(check (list string)) "bag of R2" [ "R2" ] (Ghd.members g "R2");
  Alcotest.(check string) "owner" "R3" (Ghd.bag_of g "R3")

let test_ghd_auto_triangle () =
  let g = Ghd.auto triangle_cq in
  Alcotest.(check int) "width 2" 2 (Ghd.width g);
  Alcotest.(check bool) "bag cq acyclic" true (Gyo.is_acyclic (Ghd.bag_cq g));
  (* Every atom is in exactly one bag. *)
  let all = List.concat_map (Ghd.members g) (Ghd.bag_names g) in
  Alcotest.(check (list string))
    "partition"
    [ "R1"; "R2"; "R3" ]
    (List.sort String.compare all)

let test_ghd_auto_square () =
  (* Paper Figure 5b: q□ decomposes into R1R2(A,B,C) and R3R4(C,D,A). *)
  let g = Ghd.auto square_cq in
  Alcotest.(check int) "width 2" 2 (Ghd.width g);
  Alcotest.(check int) "two bags" 2 (List.length (Ghd.bag_names g))

let test_ghd_manual () =
  let g =
    Ghd.make square_cq
      ~bags:[ ("top", [ "R1"; "R2" ]); ("bottom", [ "R3"; "R4" ]) ]
      ~root:"top"
      ~parents:[ ("bottom", "top") ]
  in
  Alcotest.(check int) "width" 2 (Ghd.width g);
  Alcotest.check Tgen.schema_testable "bag schema"
    (schema [ "A"; "B"; "C" ])
    (Cq.schema_of (Ghd.bag_cq g) "top")

let test_ghd_manual_invalid () =
  Alcotest.(check bool) "atom in two bags" true
    (match
       Ghd.make triangle_cq
         ~bags:[ ("x", [ "R1"; "R2" ]); ("y", [ "R2"; "R3" ]) ]
         ~root:"x" ~parents:[ ("y", "x") ]
     with
    | exception Errors.Schema_error _ -> true
    | _ -> false);
  Alcotest.(check bool) "atom in no bag" true
    (match
       Ghd.make triangle_cq
         ~bags:[ ("x", [ "R1"; "R2" ]) ]
         ~root:"x" ~parents:[]
     with
    | exception Errors.Schema_error _ -> true
    | _ -> false)

let test_ghd_auto_disconnected_raises () =
  Alcotest.check_raises "auto needs connectivity"
    (Errors.Schema_error
       "Ghd.auto: CQ disc is disconnected; decompose components separately")
    (fun () -> ignore (Ghd.auto disconnected_cq))

(* ------------------------------------------------------------------ *)
(* Classify *)

let test_classify_path () =
  (match Classify.path_order path4_cq with
  | Some order ->
      Alcotest.(check (list string))
        "order" [ "R1"; "R2"; "R3"; "R4" ] order
  | None -> Alcotest.fail "path4 is a path");
  Alcotest.(check bool) "fig1 not a path" true
    (Classify.path_order fig1_cq = None);
  Alcotest.(check bool) "triangle not a path" true
    (Classify.path_order triangle_cq = None);
  (* Two atoms sharing one attribute form a path. *)
  let two = Cq.make [ ("S", [ "A"; "B" ]); ("T", [ "B"; "C" ]) ] in
  Alcotest.(check bool) "two-atom path" true (Classify.path_order two <> None)

let test_classify_shapes () =
  let check name expected cq =
    Alcotest.(check string)
      name expected
      (Format.asprintf "%a" Classify.pp_shape (Classify.classify cq))
  in
  check "path4" "path (R1 - R2 - R3 - R4)" path4_cq;
  check "fig1 doubly acyclic" "doubly acyclic" fig1_cq;
  check "star acyclic only" "acyclic" star_cq;
  check "triangle cyclic" "cyclic" triangle_cq;
  check "square cyclic" "cyclic" square_cq;
  (* Disconnected: classified by the most general component. *)
  check "disconnected" "path (R1 - R2)" disconnected_cq

let test_classify_edge_cases () =
  let shape cq = Format.asprintf "%a" Classify.pp_shape (Classify.classify cq) in
  (* A single atom is the degenerate one-relation path. *)
  Alcotest.(check string) "single atom" "path (R)"
    (shape (Cq.make [ ("R", [ "A"; "B" ]) ]));
  (* Lonely attributes (bound by one atom only) do not break path shape:
     q1's Lineitem carries SK and PK the same way. *)
  Alcotest.(check string) "path with lonely attributes" "path (R1 - R2)"
    (shape (Cq.make [ ("R1", [ "A"; "B"; "X"; "Y" ]); ("R2", [ "B"; "C" ]) ]));
  (* Disconnected query with a cyclic component: the most general
     component decides the class. *)
  Alcotest.(check string) "disconnected cyclic component" "cyclic"
    (shape
       (Cq.make
          [
            ("S", [ "U"; "V" ]);
            ("R1", [ "A"; "B" ]);
            ("R2", [ "B"; "C" ]);
            ("R3", [ "C"; "A" ]);
          ]));
  (* The GYO failure witness: ears are stripped, the stuck core remains. *)
  let lollipop =
    Cq.make
      [
        ("Ear", [ "X"; "A" ]);
        ("R1", [ "A"; "B" ]);
        ("R2", [ "B"; "C" ]);
        ("R3", [ "C"; "A" ]);
      ]
  in
  (match Gyo.decompose lollipop with
  | Gyo.Cyclic residual ->
      Alcotest.(check (list string))
        "residual excludes the ear" [ "R1"; "R2"; "R3" ]
        (List.sort String.compare residual)
  | Gyo.Acyclic _ -> Alcotest.fail "lollipop should be cyclic");
  match Gyo.decompose square_cq with
  | Gyo.Cyclic residual ->
      Alcotest.(check (list string))
        "square residual is all four atoms"
        [ "R1"; "R2"; "R3"; "R4" ]
        (List.sort String.compare residual)
  | Gyo.Acyclic _ -> Alcotest.fail "square should be cyclic"

let test_classify_doubly_acyclic () =
  Alcotest.(check bool) "fig1 paper tree doubly acyclic" true
    (Classify.is_doubly_acyclic
       (Join_tree.make fig1_cq ~root:"R1"
          ~parents:[ ("R2", "R1"); ("R3", "R1"); ("R4", "R1") ]));
  (* q*'s join tree roots the triangle relation over the three edges:
     the children form a cyclic sub-query. *)
  let jt =
    Join_tree.make star_cq ~root:"Rt"
      ~parents:[ ("R1", "Rt"); ("R2", "Rt"); ("R3", "Rt") ]
  in
  Alcotest.(check bool) "star not doubly acyclic" false
    (Classify.is_doubly_acyclic jt)

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parser_round_trip () =
  let q = Parser.parse "Q(A,B,C) :- R1(A,B), R2(B,C)." in
  Alcotest.(check string) "name" "Q" (Cq.name q);
  Alcotest.(check (list string)) "atoms" [ "R1"; "R2" ] (Cq.relation_names q);
  Alcotest.check Tgen.schema_testable "R1 schema"
    (schema [ "A"; "B" ])
    (Cq.schema_of q "R1");
  (* pp output parses back to an equal query. *)
  let q2 = Parser.parse (Cq.to_string q) in
  Alcotest.(check bool) "round trip" true (Cq.equal q q2)

let test_parser_star_head () =
  let q = Parser.parse "Path(*) :- R1(A,B), R2(B,C)" in
  Alcotest.(check string) "name" "Path" (Cq.name q);
  let q' = Parser.parse "Bare :- R1(A,B), R2(B,C)" in
  Alcotest.(check string) "bare head" "Bare" (Cq.name q')

let test_parser_comments_whitespace () =
  let q =
    Parser.parse
      "Q(*) :- % the first atom\n  R1(A, B),\n  R2(B, C). % done\n"
  in
  Alcotest.(check int) "two atoms" 2 (Cq.atom_count q)

let test_parser_errors () =
  let fails input =
    match Parser.parse input with
    | exception (Parser.Parse_error _ | Errors.Schema_error _) -> true
    | _ -> false
  in
  Alcotest.(check bool) "missing body" true (fails "Q(A) :- ");
  Alcotest.(check bool) "bad token" true (fails "Q(A) :- R1(A$B)");
  Alcotest.(check bool) "missing turnstile" true (fails "Q(A) R1(A)");
  Alcotest.(check bool) "head mismatch" true (fails "Q(A) :- R1(A,B)");
  Alcotest.(check bool) "trailing junk" true (fails "Q(A) :- R1(A). extra");
  Alcotest.(check bool) "self join" true (fails "Q(*) :- R(A), R(B)");
  Alcotest.(check bool) "parse_opt none" true
    (Parser.parse_opt "Q(A) :-" = None)

let test_parser_head_order_insensitive () =
  let q = Parser.parse "Q(C,A,B) :- R1(A,B), R2(B,C)." in
  Alcotest.(check int) "accepted" 2 (Cq.atom_count q)

let test_parser_constraints () =
  let cq, cs =
    Parser.parse_full
      "Q(*) :- R1(A,B), R2(B,C), B = 'b1', A < 10, C != 3, A >= -2."
  in
  Alcotest.(check int) "atoms" 2 (Cq.atom_count cq);
  Alcotest.(check int) "constraints" 4 (List.length cs);
  Alcotest.(check string)
    "rendering" "B = b1, A < 10, C != 3, A >= -2"
    (Format.asprintf "%a" Constraints.pp_list cs);
  (* parse rejects constrained queries. *)
  Alcotest.(check bool) "parse refuses constraints" true
    (match Parser.parse "Q(*) :- R1(A,B), A = 1" with
    | exception Errors.Schema_error _ -> true
    | _ -> false);
  (* constraints must mention body variables. *)
  Alcotest.(check bool) "unknown variable rejected" true
    (match Parser.parse_full "Q(*) :- R1(A,B), Z = 1" with
    | exception Errors.Schema_error _ -> true
    | _ -> false);
  (* literal forms *)
  let _, cs = Parser.parse_full "Q(*) :- R1(A,B), A = true, B = 'x y'" in
  Alcotest.(check int) "bool and spaced string" 2 (List.length cs)

let test_constraints_holds () =
  let open Constraints in
  let v = Value.int in
  Alcotest.(check bool) "eq" true (holds { var = "A"; op = Eq; value = v 3 } (v 3));
  Alcotest.(check bool) "neq" true (holds { var = "A"; op = Neq; value = v 3 } (v 4));
  Alcotest.(check bool) "lt" true (holds { var = "A"; op = Lt; value = v 3 } (v 2));
  Alcotest.(check bool) "le fails" false
    (holds { var = "A"; op = Le; value = v 3 } (v 4));
  Alcotest.(check bool) "ge" true (holds { var = "A"; op = Ge; value = v 3 } (v 3));
  Alcotest.(check bool) "gt strings" true
    (holds { var = "A"; op = Gt; value = Value.str "a" } (Value.str "b"))

let test_constraints_selection () =
  let _, cs = Parser.parse_full "Q(*) :- R1(A,B), R2(B,C), A = 1, C < 5" in
  let pred = Option.get (Constraints.selection cs) in
  let v = Value.int in
  let s_r1 = Schema.of_list [ "A"; "B" ] in
  let s_r2 = Schema.of_list [ "B"; "C" ] in
  (* Constraints apply only through the attributes a relation has. *)
  Alcotest.(check bool) "R1 passes" true
    (pred "R1" s_r1 (Tuple.of_list [ v 1; v 9 ]));
  Alcotest.(check bool) "R1 fails on A" false
    (pred "R1" s_r1 (Tuple.of_list [ v 2; v 9 ]));
  Alcotest.(check bool) "R2 ignores A" true
    (pred "R2" s_r2 (Tuple.of_list [ v 9; v 4 ]));
  Alcotest.(check bool) "R2 fails on C" false
    (pred "R2" s_r2 (Tuple.of_list [ v 9; v 5 ]));
  Alcotest.(check bool) "empty list is None" true
    (Constraints.selection [] = None)

let test_constraints_satisfying_value () =
  let open Constraints in
  let v = Value.int in
  (* Prefers an admissible candidate. *)
  Alcotest.(check (option Tgen.value_testable))
    "first passing candidate" (Some (v 4))
    (satisfying_value
       [ { var = "A"; op = Gt; value = v 3 } ]
       "A" [ v 1; v 4; v 9 ]);
  (* Synthesizes when no candidate passes. *)
  (match
     satisfying_value [ { var = "A"; op = Eq; value = v 42 } ] "A" [ v 1 ]
   with
  | Some x -> Alcotest.check Tgen.value_testable "synthesized eq" (v 42) x
  | None -> Alcotest.fail "expected a value");
  (* Contradictions yield None. *)
  Alcotest.(check bool) "contradiction" true
    (satisfying_value
       [
         { var = "A"; op = Eq; value = v 1 }; { var = "A"; op = Eq; value = v 2 };
       ]
       "A" []
    = None);
  (* Unconstrained attributes take the first candidate. *)
  Alcotest.(check (option Tgen.value_testable))
    "unconstrained" (Some (v 7))
    (satisfying_value [] "B" [ v 7 ])

let () =
  Alcotest.run "query"
    [
      ( "cq",
        [
          Alcotest.test_case "validation" `Quick test_cq_validation;
          Alcotest.test_case "vars" `Quick test_cq_vars;
          Alcotest.test_case "components" `Quick test_cq_components;
          Alcotest.test_case "restrict" `Quick test_cq_restrict;
          Alcotest.test_case "project onto shared" `Quick
            test_cq_project_onto_shared;
          Alcotest.test_case "check database" `Quick test_cq_check_database;
        ] );
      ( "gyo",
        [
          Alcotest.test_case "fig1 acyclic" `Quick test_gyo_fig1_acyclic;
          Alcotest.test_case "cyclic detection" `Quick test_gyo_cyclic;
          Alcotest.test_case "elimination raises" `Quick
            test_gyo_elimination_raises;
        ] );
      ( "join_tree",
        [
          Alcotest.test_case "of_cq" `Quick test_join_tree_of_cq;
          Alcotest.test_case "triangle none" `Quick test_join_tree_triangle_none;
          Alcotest.test_case "paper shape" `Quick test_join_tree_paper_shape;
          Alcotest.test_case "invalid trees" `Quick
            test_join_tree_invalid_raises;
          Alcotest.test_case "two parents" `Quick test_join_tree_two_parents;
          Alcotest.test_case "path shape" `Quick test_join_tree_path_shape;
        ] );
      ( "ghd",
        [
          Alcotest.test_case "of_join_tree" `Quick test_ghd_of_join_tree;
          Alcotest.test_case "auto triangle" `Quick test_ghd_auto_triangle;
          Alcotest.test_case "auto square" `Quick test_ghd_auto_square;
          Alcotest.test_case "manual" `Quick test_ghd_manual;
          Alcotest.test_case "manual invalid" `Quick test_ghd_manual_invalid;
          Alcotest.test_case "auto disconnected" `Quick
            test_ghd_auto_disconnected_raises;
        ] );
      ( "classify",
        [
          Alcotest.test_case "path order" `Quick test_classify_path;
          Alcotest.test_case "shapes" `Quick test_classify_shapes;
          Alcotest.test_case "edge cases" `Quick test_classify_edge_cases;
          Alcotest.test_case "doubly acyclic" `Quick
            test_classify_doubly_acyclic;
        ] );
      ( "parser",
        [
          Alcotest.test_case "round trip" `Quick test_parser_round_trip;
          Alcotest.test_case "star head" `Quick test_parser_star_head;
          Alcotest.test_case "comments" `Quick test_parser_comments_whitespace;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "head order" `Quick
            test_parser_head_order_insensitive;
          Alcotest.test_case "constraints" `Quick test_parser_constraints;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "holds" `Quick test_constraints_holds;
          Alcotest.test_case "selection" `Quick test_constraints_selection;
          Alcotest.test_case "satisfying value" `Quick
            test_constraints_satisfying_value;
        ] );
    ]
