(* The storage layer: row/columnar equivalence properties (the columnar
   kernels must be bit-identical to the row oracle, at every job count
   and with the cache on), plus units for the dictionary, the columnar
   boundary, the integer-key tables and the hash-quality regressions
   that the columnar radix partitioning leans on. *)

open Tsens_relational
open Tsens_query
open Tsens_sensitivity

let with_cutoff n f =
  let saved = Exec.sequential_cutoff () in
  Exec.set_sequential_cutoff n;
  Fun.protect ~finally:(fun () -> Exec.set_sequential_cutoff saved) f

let with_cache enabled f =
  let saved = Cache.enabled () in
  Cache.set_enabled enabled;
  Fun.protect ~finally:(fun () -> Cache.set_enabled saved) f

(* Columnar [f] equals row-mode [f] at jobs 1, 2 and 4, with the
   sequential cutoff dropped so tiny QCheck relations still take the
   partition-parallel kernels. The row reference runs at jobs=1; the
   exec suite separately pins row-mode determinism across jobs. *)
let columnar_matches_row equal f =
  with_cutoff 1 @@ fun () ->
  let reference = Storage.with_mode Storage.Row (fun () -> Exec.with_jobs 1 f) in
  List.for_all
    (fun j ->
      equal reference
        (Storage.with_mode Storage.Columnar (fun () -> Exec.with_jobs j f)))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Kernel equivalence properties *)

let prop_natural_join_modes =
  Tgen.qtest "natural_join columnar = row" Tgen.joinable_pair_gen
    Tgen.print_relation_pair (fun (a, b) ->
      columnar_matches_row Relation.equal (fun () -> Join.natural_join a b))

let prop_join_project_modes =
  Tgen.qtest "join_project columnar = row" Tgen.joinable_pair_gen
    Tgen.print_relation_pair (fun (a, b) ->
      let group = Schema.inter (Relation.schema a) (Relation.schema b) in
      columnar_matches_row Relation.equal (fun () ->
          Join.join_project ~group a b))

(* Group key outside the join key: forces the cross-partition group
   merge in the columnar parallel path. *)
let prop_join_project_wide_group =
  Tgen.qtest "join_project full-schema group columnar = row"
    Tgen.joinable_pair_gen Tgen.print_relation_pair (fun (a, b) ->
      let group = Schema.union (Relation.schema a) (Relation.schema b) in
      columnar_matches_row Relation.equal (fun () ->
          Join.join_project ~group a b))

let prop_count_join_modes =
  Tgen.qtest "count_join columnar = row" Tgen.joinable_pair_gen
    Tgen.print_relation_pair (fun (a, b) ->
      columnar_matches_row Count.equal (fun () -> Join.count_join a b))

let prop_project_modes =
  Tgen.qtest "project columnar = row" Tgen.relation_gen Tgen.print_relation
    (fun r ->
      let target =
        match Schema.attrs (Relation.schema r) with
        | first :: _ -> Schema.of_list [ first ]
        | [] -> Schema.empty
      in
      columnar_matches_row Relation.equal (fun () -> Relation.project target r))

(* ------------------------------------------------------------------ *)
(* Sensitivity equivalence (the kernels composed end to end) *)

let result_equal (a : Sens_types.result) (b : Sens_types.result) =
  let witness_equal w1 w2 =
    match (w1, w2) with
    | None, None -> true
    | Some w1, Some w2 ->
        String.equal w1.Sens_types.relation w2.Sens_types.relation
        && Schema.equal w1.Sens_types.schema w2.Sens_types.schema
        && Tuple.equal w1.Sens_types.tuple w2.Sens_types.tuple
        && Count.equal w1.Sens_types.sensitivity w2.Sens_types.sensitivity
    | _ -> false
  in
  Count.equal a.local_sensitivity b.local_sensitivity
  && witness_equal a.witness b.witness
  && List.equal
       (fun (r1, c1) (r2, c2) -> String.equal r1 r2 && Count.equal c1 c2)
       a.per_relation b.per_relation

let path_cq = Cq.make ~name:"qstore" [ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]) ]

let path_db_gen =
  QCheck2.Gen.(
    Tgen.relation_of_schema_gen (Schema.of_list [ "A"; "B" ]) >>= fun r ->
    Tgen.relation_of_schema_gen (Schema.of_list [ "B"; "C" ]) >>= fun s ->
    return (Database.of_list [ ("R", r); ("S", s) ]))

let print_db db =
  Database.fold
    (fun name rel acc ->
      acc ^ Format.asprintf "%s:@.%a@." name Relation.pp rel)
    db ""

let prop_tsens_modes =
  Tgen.qtest ~count:60 "tsens columnar = row" path_db_gen print_db (fun db ->
      columnar_matches_row result_equal (fun () ->
          Tsens.local_sensitivity path_cq db))

let prop_tsens_modes_cached =
  Tgen.qtest ~count:40 "tsens columnar = row with cache" path_db_gen print_db
    (fun db ->
      with_cache true @@ fun () ->
      columnar_matches_row result_equal (fun () ->
          Tsens.local_sensitivity path_cq db))

let prop_elastic_modes =
  Tgen.qtest ~count:60 "elastic columnar = row" path_db_gen print_db (fun db ->
      columnar_matches_row result_equal (fun () ->
          Elastic.local_sensitivity path_cq db))

(* ------------------------------------------------------------------ *)
(* Dictionary units *)

let v_int n = Value.Int n
let v_str s = Value.Str s

let test_dict_intern_stable () =
  let id1 = Dict.intern (v_str "storage-test-a") in
  let id2 = Dict.intern (v_str "storage-test-a") in
  Alcotest.(check int) "same id on re-intern" id1 id2;
  Alcotest.(check bool)
    "distinct values, distinct ids" true
    (Dict.intern (v_str "storage-test-b") <> id1);
  Alcotest.(check bool)
    "decode inverts intern" true
    (Value.equal (v_str "storage-test-a") (Dict.value id1))

let test_dict_find_opt () =
  let id = Dict.intern (v_int 123456) in
  Alcotest.(check (option int)) "present" (Some id) (Dict.find_opt (v_int 123456));
  Alcotest.(check (option int))
    "absent without interning" None
    (Dict.find_opt (v_str "storage-test-never-interned"));
  Alcotest.(check (option int))
    "still absent" None
    (Dict.find_opt (v_str "storage-test-never-interned"))

(* Typed distinctly from equal-looking values of other constructors. *)
let test_dict_constructors_distinct () =
  let i = Dict.intern (v_int 1) in
  let s = Dict.intern (v_str "1") in
  let b = Dict.intern (Value.Bool true) in
  Alcotest.(check bool) "int/str" true (i <> s);
  Alcotest.(check bool) "int/bool" true (i <> b);
  Alcotest.(check bool) "str/bool" true (s <> b)

let test_dict_generation_reset () =
  let g0 = Dict.generation () in
  let r =
    Relation.of_rows
      ~schema:(Schema.of_attrs [ "A" ])
      [ [ v_int 7 ]; [ v_int 8 ] ]
  in
  let c0 = Relation.encoded r in
  Alcotest.(check int) "encoding stamped" g0 (Colrel.generation c0);
  Dict.reset ();
  Alcotest.(check bool) "generation bumped" true (Dict.generation () > g0);
  (* The memoized encoding is stale: [encoded] must rebuild under the
     new generation rather than decode through the wrong mapping. *)
  let c1 = Relation.encoded r in
  Alcotest.(check int) "rebuilt under new generation" (Dict.generation ())
    (Colrel.generation c1);
  Alcotest.check Tgen.relation_testable "round-trips after reset" r
    (Relation.of_encoded c1)

(* ------------------------------------------------------------------ *)
(* Columnar boundary *)

let prop_encode_roundtrip =
  Tgen.qtest "of_encoded (encoded r) = r" Tgen.relation_gen
    Tgen.print_relation (fun r ->
      Relation.equal r (Relation.of_encoded (Relation.encoded r)))

let prop_index_modes =
  Tgen.qtest "index probes columnar = row" Tgen.joinable_pair_gen
    Tgen.print_relation_pair (fun (a, b) ->
      let key = Schema.inter (Relation.schema a) (Relation.schema b) in
      let probe idx =
        (* Probe with every key of [a], present or not in [b]. *)
        Relation.fold
          (fun tup _ acc ->
            let k =
              Tuple.project (Schema.positions ~sub:key (Relation.schema a)) tup
            in
            (Index.group_count idx k, Array.length (Index.lookup idx k)) :: acc)
          a []
      in
      let run mode =
        Storage.with_mode mode (fun () -> probe (Index.build ~key b))
      in
      List.equal
        (fun (c1, n1) (c2, n2) -> Count.equal c1 c2 && n1 = n2)
        (run Storage.Row) (run Storage.Columnar))

(* ------------------------------------------------------------------ *)
(* Hash quality regressions *)

(* Sequential keys must spread evenly over any partition count: the *31
   accumulator this replaced put consecutive single-attribute tuples in
   consecutive buckets only when parts divided 31 cleanly, and composite
   keys skewed badly. Allow max 2x the ideal bucket load. *)
let bucket_skew_ok tuples parts =
  let counts = Array.make parts 0 in
  List.iter
    (fun t ->
      let b = Tuple.bucket t parts in
      counts.(b) <- counts.(b) + 1)
    tuples;
  let n = List.length tuples in
  let mean = float_of_int n /. float_of_int parts in
  Array.for_all (fun c -> float_of_int c <= (2.0 *. mean) +. 1.0) counts

let test_tuple_bucket_skew () =
  let n = 4096 in
  let singles = List.init n (fun i -> Tuple.of_list [ v_int i ]) in
  let pairs_seq =
    List.init n (fun i -> Tuple.of_list [ v_int i; v_int (i + 1) ])
  in
  let pairs_const =
    List.init n (fun i -> Tuple.of_list [ v_int 7; v_int i ])
  in
  List.iter
    (fun parts ->
      Alcotest.(check bool)
        (Printf.sprintf "singles spread over %d parts" parts)
        true
        (bucket_skew_ok singles parts);
      Alcotest.(check bool)
        (Printf.sprintf "sequential pairs spread over %d parts" parts)
        true
        (bucket_skew_ok pairs_seq parts);
      Alcotest.(check bool)
        (Printf.sprintf "constant-prefix pairs spread over %d parts" parts)
        true
        (bucket_skew_ok pairs_const parts))
    [ 2; 3; 4; 7; 8; 16 ]

let test_intkey_mix_spread () =
  let parts = 8 and n = 4096 in
  let counts = Array.make parts 0 in
  for i = 0 to n - 1 do
    let b = Intkey.mix i mod parts in
    counts.(b) <- counts.(b) + 1
  done;
  let mean = float_of_int n /. float_of_int parts in
  Alcotest.(check bool)
    "mixed sequential ids spread evenly" true
    (Array.for_all (fun c -> float_of_int c <= 2.0 *. mean) counts);
  Alcotest.(check bool)
    "mix is non-negative" true
    (List.for_all (fun x -> Intkey.mix x >= 0) [ 0; 1; max_int; -1; -max_int ])

let test_value_hash_constructors () =
  Alcotest.(check bool)
    "equal values hash equal" true
    (Value.hash (v_int 42) = Value.hash (v_int 42));
  (* Not guaranteed for arbitrary hashes, but deterministic here: the
     constructor tags must keep these common collision shapes apart. *)
  Alcotest.(check bool)
    "Int 1 vs Str \"1\"" true
    (Value.hash (v_int 1) <> Value.hash (v_str "1"));
  Alcotest.(check bool)
    "Int 0 vs Bool false" true
    (Value.hash (v_int 0) <> Value.hash (Value.Bool false))

(* ------------------------------------------------------------------ *)
(* Itab / Keydict units *)

let test_itab_basics () =
  let t = Intkey.Itab.create 4 in
  Alcotest.(check int) "absent" (-1) (Intkey.Itab.find t 5 ~default:(-1));
  (* Grow well past the initial hint. *)
  for k = 0 to 99 do
    Intkey.Itab.set t k (k * k)
  done;
  Alcotest.(check int) "length" 100 (Intkey.Itab.length t);
  Alcotest.(check int) "find after grow" 81 (Intkey.Itab.find t 9 ~default:0);
  Alcotest.(check int) "exchange returns old" 81
    (Intkey.Itab.exchange t 9 7 ~default:0);
  Alcotest.(check int) "exchange stored new" 7 (Intkey.Itab.find t 9 ~default:0);
  let sum = Intkey.Itab.fold (fun _ v acc -> acc + v) t 0 in
  let expected =
    List.fold_left ( + ) 0 (List.init 100 (fun k -> k * k)) - 81 + 7
  in
  Alcotest.(check int) "fold visits everything" expected sum

let test_itab_add_count_saturates () =
  let t = Intkey.Itab.create 4 in
  Intkey.Itab.add_count t 1 (Count.max_count - 1);
  Intkey.Itab.add_count t 1 5;
  Alcotest.(check bool)
    "saturates like Count.add" true
    (Count.is_saturated (Intkey.Itab.find t 1 ~default:0))

let test_keydict_basics () =
  let kd = Intkey.Keydict.create ~arity:2 4 in
  let id_ab = Intkey.Keydict.lookup_or_add kd [| 1; 2 |] in
  let id_ba = Intkey.Keydict.lookup_or_add kd [| 2; 1 |] in
  Alcotest.(check bool) "order matters" true (id_ab <> id_ba);
  Alcotest.(check int) "stable" id_ab (Intkey.Keydict.lookup_or_add kd [| 1; 2 |]);
  Alcotest.(check int) "lookup finds" id_ab (Intkey.Keydict.lookup kd [| 1; 2 |]);
  Alcotest.(check int) "lookup misses" (-1) (Intkey.Keydict.lookup kd [| 9; 9 |]);
  Alcotest.(check int) "component recall" 2 (Intkey.Keydict.get kd id_ab 1);
  (* The caller's scratch array is copied, not captured. *)
  let scratch = [| 5; 6 |] in
  let id = Intkey.Keydict.lookup_or_add kd scratch in
  scratch.(0) <- 99;
  Alcotest.(check int) "scratch mutation harmless" id
    (Intkey.Keydict.lookup kd [| 5; 6 |]);
  Alcotest.(check int) "length" 3 (Intkey.Keydict.length kd)

let () =
  Alcotest.run "storage"
    [
      ( "equivalence",
        [
          prop_natural_join_modes;
          prop_join_project_modes;
          prop_join_project_wide_group;
          prop_count_join_modes;
          prop_project_modes;
        ] );
      ( "sensitivity",
        [ prop_tsens_modes; prop_tsens_modes_cached; prop_elastic_modes ] );
      ( "dict",
        [
          Alcotest.test_case "intern stable" `Quick test_dict_intern_stable;
          Alcotest.test_case "find_opt" `Quick test_dict_find_opt;
          Alcotest.test_case "constructors distinct" `Quick
            test_dict_constructors_distinct;
          Alcotest.test_case "generation reset" `Quick
            test_dict_generation_reset;
        ] );
      ( "boundary", [ prop_encode_roundtrip; prop_index_modes ] );
      ( "hashing",
        [
          Alcotest.test_case "tuple bucket skew" `Quick test_tuple_bucket_skew;
          Alcotest.test_case "intkey mix spread" `Quick test_intkey_mix_spread;
          Alcotest.test_case "value hash constructors" `Quick
            test_value_hash_constructors;
        ] );
      ( "intkey",
        [
          Alcotest.test_case "itab basics" `Quick test_itab_basics;
          Alcotest.test_case "itab add_count saturates" `Quick
            test_itab_add_count_saturates;
          Alcotest.test_case "keydict basics" `Quick test_keydict_basics;
        ] );
    ]
