(* Tests for the observability sink: span nesting and aggregation,
   counter/gauge totals, the disabled path, and the JSON rendering. *)

let with_sink f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let find_span report path =
  List.find_opt
    (fun s -> String.equal s.Obs.Report.path path)
    report.Obs.Report.spans

let find_total totals name =
  List.find_opt (fun t -> String.equal t.Obs.Report.name name) totals

let test_span_nesting () =
  let report =
    with_sink (fun () ->
        Obs.span "outer" (fun () ->
            Obs.span "inner" (fun () -> ());
            Obs.span "inner" (fun () -> ()));
        Obs.span "outer" (fun () -> ());
        Obs.Report.capture ())
  in
  let outer = Option.get (find_span report "outer") in
  Alcotest.(check int) "outer calls" 2 outer.Obs.Report.calls;
  let inner = Option.get (find_span report "outer/inner") in
  Alcotest.(check int) "inner calls aggregate under the path" 2
    inner.Obs.Report.calls;
  Alcotest.(check bool) "no top-level inner" true
    (find_span report "inner" = None);
  Alcotest.(check bool) "total covers children" true
    (outer.Obs.Report.seconds >= inner.Obs.Report.seconds);
  Alcotest.(check bool) "self <= total" true
    (outer.Obs.Report.self_seconds <= outer.Obs.Report.seconds
    && outer.Obs.Report.self_seconds >= 0.0)

let test_span_passes_value_and_exceptions () =
  with_sink (fun () ->
      Alcotest.(check int) "returns the closure's value" 41
        (Obs.span "v" (fun () -> 41));
      Alcotest.check_raises "re-raises" Exit (fun () ->
          Obs.span "raiser" (fun () -> raise Exit));
      (* The raising span still gets recorded, and the stack unwound. *)
      let report = Obs.Report.capture () in
      let raiser = Option.get (find_span report "raiser") in
      Alcotest.(check int) "raising span recorded" 1 raiser.Obs.Report.calls;
      Alcotest.(check bool) "not nested under raiser" true
        (find_span report "raiser/v" = None))

let test_counter_totals () =
  let c = Obs.counter "test.rows" in
  let report =
    with_sink (fun () ->
        Obs.add c 3;
        Obs.tick c;
        Obs.count "test.rows" 6;
        Obs.count "test.other" 2;
        Obs.Report.capture ())
  in
  let rows = Option.get (find_total report.Obs.Report.counters "test.rows") in
  Alcotest.(check int) "handle and name share the total" 10
    rows.Obs.Report.total;
  let other = Option.get (find_total report.Obs.Report.counters "test.other") in
  Alcotest.(check int) "independent counter" 2 other.Obs.Report.total

let test_gauge_keeps_max () =
  let g = Obs.gauge "test.peak" in
  let report =
    with_sink (fun () ->
        Obs.observe g 4;
        Obs.observe g 9;
        Obs.observe g 2;
        Obs.Report.capture ())
  in
  let peak = Option.get (find_total report.Obs.Report.gauges "test.peak") in
  Alcotest.(check int) "high-water mark" 9 peak.Obs.Report.total

let test_disabled_records_nothing () =
  Obs.reset ();
  let c = Obs.counter "test.disabled" in
  Alcotest.(check bool) "disabled by default" false (Obs.enabled ());
  Obs.add c 5;
  Obs.span "test.disabled_span" (fun () -> ());
  let report = Obs.Report.capture () in
  Alcotest.(check bool) "no counters" true
    (find_total report.Obs.Report.counters "test.disabled" = None);
  Alcotest.(check bool) "no spans" true
    (find_span report "test.disabled_span" = None)

let test_reset_clears_but_keeps_handles () =
  let c = Obs.counter "test.reset" in
  Obs.reset ();
  Obs.enable ();
  Obs.add c 7;
  Obs.reset ();
  Obs.add c 2;
  Obs.disable ();
  let report = Obs.Report.capture () in
  let t = Option.get (find_total report.Obs.Report.counters "test.reset") in
  Alcotest.(check int) "handle survives reset with a fresh total" 2
    t.Obs.Report.total;
  Obs.reset ()

(* The sink feeds dashboards and BENCH_obs.json; keep the rendering
   stable without parsing: shape-check the JSON by substring. *)
let test_json_shape () =
  let json =
    with_sink (fun () ->
        Obs.span "a" (fun () -> Obs.count "test.c\"quoted\"" 1);
        Obs.Report.to_json (Obs.Report.capture ()))
  in
  let contains sub =
    let n = String.length json and m = String.length sub in
    let rec loop i =
      i + m <= n && (String.equal (String.sub json i m) sub || loop (i + 1))
    in
    loop 0
  in
  Alcotest.(check bool) "spans array" true (contains "\"spans\":[");
  Alcotest.(check bool) "span fields" true (contains "{\"path\":\"a\",\"calls\":1");
  Alcotest.(check bool) "counters array" true (contains "\"counters\":[");
  Alcotest.(check bool) "escaped quote" true
    (contains "\"test.c\\\"quoted\\\"\"");
  Alcotest.(check bool) "gauges array" true (contains "\"gauges\":[")

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting aggregates by path" `Quick
            test_span_nesting;
          Alcotest.test_case "values and exceptions" `Quick
            test_span_passes_value_and_exceptions;
        ] );
      ( "counters",
        [
          Alcotest.test_case "totals" `Quick test_counter_totals;
          Alcotest.test_case "gauge keeps max" `Quick test_gauge_keeps_max;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "reset keeps handles" `Quick
            test_reset_clears_but_keeps_handles;
        ] );
      ( "report",
        [ Alcotest.test_case "json shape" `Quick test_json_shape ] );
    ]
