(* Tests for the differential privacy layer: Laplace, SVT, the TSens
   truncation operator and its global-sensitivity guarantee, TSensDP and
   the PrivSQL baseline. *)

open Tsens_relational
open Tsens_query
open Tsens_sensitivity
open Tsens_dp

let s = Value.str
let tup l = Tuple.of_list l
let schema l = Schema.of_list l

(* Figure 3 fixture (shared with test_sensitivity). *)
let fig3_cq =
  Cq.make ~name:"path4"
    [
      ("R1", [ "A"; "B" ]);
      ("R2", [ "B"; "C" ]);
      ("R3", [ "C"; "D" ]);
      ("R4", [ "D"; "E" ]);
    ]

let fig3_db =
  Database.of_list
    [
      ( "R1",
        Relation.create ~schema:(schema [ "A"; "B" ])
          [
            (tup [ s "a1"; s "b1" ], 1);
            (tup [ s "a1"; s "b2" ], 1);
            (tup [ s "a2"; s "b2" ], 2);
          ] );
      ( "R2",
        Relation.create ~schema:(schema [ "B"; "C" ])
          [
            (tup [ s "b1"; s "c1" ], 1);
            (tup [ s "b1"; s "c2" ], 1);
            (tup [ s "b2"; s "c1" ], 2);
          ] );
      ( "R3",
        Relation.create ~schema:(schema [ "C"; "D" ])
          [
            (tup [ s "c1"; s "d1" ], 2);
            (tup [ s "c2"; s "d1" ], 1);
            (tup [ s "c2"; s "d2" ], 1);
          ] );
      ( "R4",
        Relation.create ~schema:(schema [ "D"; "E" ])
          [
            (tup [ s "d1"; s "e1" ], 1);
            (tup [ s "d1"; s "e2" ], 1);
            (tup [ s "d1"; s "e3" ], 1);
            (tup [ s "d2"; s "e4" ], 1);
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Laplace *)

let test_laplace_statistics () =
  let rng = Prng.create 5 in
  let n = 20_000 in
  let samples = List.init n (fun _ -> Laplace.sample rng ~scale:2.0) in
  let mean = List.fold_left ( +. ) 0.0 samples /. float_of_int n in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.1);
  let var =
    List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 samples /. float_of_int n
  in
  (* Lap(2) has variance 8. *)
  Alcotest.(check bool) "variance near 8" true (Float.abs (var -. 8.0) < 1.0);
  Alcotest.(check (float 1e-9)) "variance formula" 8.0
    (Laplace.variance ~epsilon:1.0 ~sensitivity:2.0)

let test_laplace_mechanism_edges () =
  let rng = Prng.create 1 in
  Alcotest.(check (float 0.0)) "zero sensitivity is exact" 42.0
    (Laplace.mechanism rng ~epsilon:1.0 ~sensitivity:0.0 42.0);
  Alcotest.check_raises "bad epsilon"
    (Invalid_argument "Laplace.mechanism: non-positive epsilon") (fun () ->
      ignore (Laplace.mechanism rng ~epsilon:0.0 ~sensitivity:1.0 0.0));
  Alcotest.check_raises "bad scale"
    (Invalid_argument "Laplace.sample: non-positive scale") (fun () ->
      ignore (Laplace.sample rng ~scale:0.0))

let test_laplace_deterministic () =
  let a = Prng.create 9 and b = Prng.create 9 in
  let xa = List.init 10 (fun _ -> Laplace.sample a ~scale:1.0) in
  let xb = List.init 10 (fun _ -> Laplace.sample b ~scale:1.0) in
  Alcotest.(check (list (float 0.0))) "same seed same noise" xa xb

(* ------------------------------------------------------------------ *)
(* SVT *)

let test_svt_finds_crossing () =
  (* With a huge budget the noise is negligible: the first query above
     the threshold is reported exactly. *)
  let rng = Prng.create 3 in
  let queries i = float_of_int i -. 4.5 in
  Alcotest.(check (option int))
    "crossing at 5" (Some 5)
    (Svt.above_threshold rng ~epsilon:1e9 ~sensitivity:1.0 ~threshold:0.0
       ~queries ~count:10);
  Alcotest.(check (option int))
    "no crossing" None
    (Svt.above_threshold rng ~epsilon:1e9 ~sensitivity:1.0 ~threshold:1e12
       ~queries ~count:10);
  Alcotest.(check (option int))
    "empty stream" None
    (Svt.above_threshold rng ~epsilon:1.0 ~sensitivity:1.0 ~threshold:0.0
       ~queries ~count:0)

let test_svt_validation () =
  let rng = Prng.create 3 in
  Alcotest.check_raises "bad epsilon"
    (Invalid_argument "Svt.above_threshold: non-positive epsilon") (fun () ->
      ignore
        (Svt.above_threshold rng ~epsilon:0.0 ~sensitivity:1.0 ~threshold:0.0
           ~queries:(fun _ -> 0.0) ~count:1))

(* ------------------------------------------------------------------ *)
(* Truncation *)

let test_truncation_profile_fig3 () =
  (* R2's tuples: (b1,c1) δ=6 ×1, (b1,c2) δ=4 ×1, (b2,c1) δ=18 ×2.
     Prefix answers: 0 | 4 | 10 | 46. *)
  let analysis = Tsens.analyze fig3_cq fig3_db in
  let p = Truncation.profile analysis "R2" in
  Alcotest.(check int) "max tuple sensitivity" 18
    (Truncation.max_tuple_sensitivity p);
  let answers = List.map (Truncation.truncated_answer p) [ 0; 3; 4; 5; 6; 17; 18; 100 ] in
  Alcotest.(check (list int)) "prefix answers"
    [ 0; 0; 4; 4; 10; 10; 46; 46 ]
    answers;
  let dropped = List.map (Truncation.tuples_dropped p) [ 0; 4; 6; 18 ] in
  Alcotest.(check (list int)) "dropped mass" [ 4; 3; 2; 0 ] dropped

let test_truncate_database_consistent () =
  let analysis = Tsens.analyze fig3_cq fig3_db in
  let p = Truncation.profile analysis "R2" in
  List.iter
    (fun i ->
      let truncated = Truncation.truncate_database analysis "R2" i fig3_db in
      Alcotest.(check int)
        (Printf.sprintf "threshold %d" i)
        (Truncation.truncated_answer p i)
        (Yannakakis.count fig3_cq truncated))
    [ 0; 1; 4; 5; 6; 7; 17; 18; 50 ]

(* The Definition 6.4 guarantee: adding any private tuple changes the
   truncated answer by at most the threshold. *)
let prop_truncation_global_sensitivity =
  let gen =
    QCheck2.Gen.(
      (* Random small path instance + random candidate tuple + threshold *)
      let rel_gen attrs =
        list_size (int_range 0 5)
          (pair
             (map Tuple.of_list
                (list_repeat 2 (map Value.int (int_range 0 3))))
             (int_range 1 2))
        >>= fun rows ->
        return (Relation.create ~schema:(Schema.of_list attrs) rows)
      in
      rel_gen [ "A"; "B" ] >>= fun r1 ->
      rel_gen [ "B"; "C" ] >>= fun r2 ->
      rel_gen [ "C"; "D" ] >>= fun r3 ->
      pair (map Value.int (int_range 0 3)) (map Value.int (int_range 0 3))
      >>= fun (x, y) ->
      int_range 0 6 >>= fun threshold ->
      return
        ( Database.of_list [ ("R1", r1); ("R2", r2); ("R3", r3) ],
          Tuple.of_list [ x; y ],
          threshold ))
  in
  let cq =
    Cq.make ~name:"p3"
      [ ("R1", [ "A"; "B" ]); ("R2", [ "B"; "C" ]); ("R3", [ "C"; "D" ]) ]
  in
  Tgen.qtest ~count:100 "truncated query has GS tau" gen
    (fun (db, t, i) ->
      Format.asprintf "%a@.tuple %a, threshold %d" Database.pp db Tuple.pp t i)
    (fun (db, t, threshold) ->
      let private_relation = "R2" in
      let answer_on db =
        let analysis = Tsens.analyze cq db in
        let p = Truncation.profile analysis private_relation in
        Truncation.truncated_answer p threshold
      in
      let base = answer_on db in
      let db' =
        Database.update ~name:private_relation (Relation.add t) db
      in
      abs (answer_on db' - base) <= threshold)

(* Linear-scan oracle for the binary-search thresholding: recompute the
   truncated answer and dropped mass directly from per-tuple
   sensitivities, without sorting or prefix sums. *)
let oracle_truncated analysis relation threshold =
  Relation.fold
    (fun t cnt acc ->
      let d = Tsens.tuple_sensitivity analysis relation t in
      if d <= threshold then Count.add acc (Count.mul cnt d) else acc)
    (Tsens.instance_relation analysis relation)
    Count.zero

let oracle_dropped analysis relation threshold =
  Relation.fold
    (fun t cnt acc ->
      let d = Tsens.tuple_sensitivity analysis relation t in
      if d > threshold then Count.add acc cnt else acc)
    (Tsens.instance_relation analysis relation)
    Count.zero

let p3_cq =
  Cq.make ~name:"p3"
    [ ("R1", [ "A"; "B" ]); ("R2", [ "B"; "C" ]); ("R3", [ "C"; "D" ]) ]

let test_truncation_boundaries () =
  (* Duplicate-sensitivity runs: every R2 tuple has δ = 1, so the
     profile is one run of three equal entries. last_kept must land on
     the rightmost entry of the run (a complete prefix), not on the
     first binary-search hit inside it. *)
  let db =
    Database.of_list
      [
        ( "R1",
          Relation.create ~schema:(schema [ "A"; "B" ])
            [ (tup [ s "a"; s "b1" ], 1) ] );
        ( "R2",
          Relation.create ~schema:(schema [ "B"; "C" ])
            [
              (tup [ s "b1"; s "c1" ], 1);
              (tup [ s "b1"; s "c2" ], 1);
              (tup [ s "b1"; s "c3" ], 1);
            ] );
        ( "R3",
          Relation.create ~schema:(schema [ "C"; "D" ])
            [
              (tup [ s "c1"; s "d" ], 1);
              (tup [ s "c2"; s "d" ], 1);
              (tup [ s "c3"; s "d" ], 1);
            ] );
      ]
  in
  let analysis = Tsens.analyze p3_cq db in
  let p = Truncation.profile analysis "R2" in
  Alcotest.(check int) "all-exceed: nothing kept" (-1) (Truncation.last_kept p 0);
  Alcotest.(check int) "all-exceed: answer 0" 0 (Truncation.truncated_answer p 0);
  Alcotest.(check int) "all-exceed: everything dropped" 3
    (Truncation.tuples_dropped p 0);
  Alcotest.(check int) "run end, not first hit" 2 (Truncation.last_kept p 1);
  Alcotest.(check int) "complete prefix over the run" 3
    (Truncation.truncated_answer p 1);
  Alcotest.(check int) "past the maximum" 2 (Truncation.last_kept p 100);
  (* Tuples with δ = 0 (no join partner) are kept even at threshold 0
     but contribute nothing. *)
  let db0 =
    Database.update ~name:"R2" (Relation.add (tup [ s "zz"; s "zz" ])) db
  in
  let a0 = Tsens.analyze p3_cq db0 in
  let p0 = Truncation.profile a0 "R2" in
  Alcotest.(check int) "zero-δ entry kept at 0" 0 (Truncation.last_kept p0 0);
  Alcotest.(check int) "zero-δ contributes nothing" 0
    (Truncation.truncated_answer p0 0);
  Alcotest.(check int) "zero-δ not dropped" 3 (Truncation.tuples_dropped p0 0)

let test_truncation_empty_profile () =
  let db =
    Database.of_list
      [
        ( "R1",
          Relation.create ~schema:(schema [ "A"; "B" ])
            [ (tup [ s "a"; s "b" ], 1) ] );
        ("R2", Relation.empty (schema [ "B"; "C" ]));
        ( "R3",
          Relation.create ~schema:(schema [ "C"; "D" ])
            [ (tup [ s "c"; s "d" ], 1) ] );
      ]
  in
  let p = Truncation.profile (Tsens.analyze p3_cq db) "R2" in
  List.iter
    (fun i ->
      Alcotest.(check int) "empty: last_kept" (-1) (Truncation.last_kept p i);
      Alcotest.(check int) "empty: answer" 0 (Truncation.truncated_answer p i);
      Alcotest.(check int) "empty: dropped" 0 (Truncation.tuples_dropped p i))
    [ 0; 1; 7 ]

(* Every threshold from 0 past the maximum sensitivity, on random
   instances, against the linear oracle. Exercises exact-match,
   between-runs, below-minimum and above-maximum thresholds (many of
   the random instances have duplicate-δ runs by construction: values
   are drawn from a 4-element domain). *)
let prop_truncation_matches_oracle =
  let gen =
    QCheck2.Gen.(
      let rel_gen attrs =
        list_size (int_range 0 6)
          (pair
             (map Tuple.of_list (list_repeat 2 (map Value.int (int_range 0 3))))
             (int_range 1 3))
        >>= fun rows ->
        return (Relation.create ~schema:(Schema.of_list attrs) rows)
      in
      rel_gen [ "A"; "B" ] >>= fun r1 ->
      rel_gen [ "B"; "C" ] >>= fun r2 ->
      rel_gen [ "C"; "D" ] >>= fun r3 ->
      return (Database.of_list [ ("R1", r1); ("R2", r2); ("R3", r3) ]))
  in
  Tgen.qtest ~count:150 "truncation matches linear oracle" gen
    (Format.asprintf "%a" Database.pp)
    (fun db ->
      let analysis = Tsens.analyze p3_cq db in
      let p = Truncation.profile analysis "R2" in
      let top = Truncation.max_tuple_sensitivity p + 2 in
      let ok = ref true in
      for i = 0 to top do
        if
          Truncation.truncated_answer p i <> oracle_truncated analysis "R2" i
          || Truncation.tuples_dropped p i <> oracle_dropped analysis "R2" i
        then ok := false
      done;
      !ok)

let test_truncate_database_preserves_column_order () =
  (* The stored column order of R2 is (C, B) — the reverse of the atom
     order the DP probes in. truncate_database must hand back the
     relation in its stored order, or every later consumer of the
     database reads transposed columns. *)
  let r2_swapped =
    Relation.create ~schema:(schema [ "C"; "B" ])
      [
        (tup [ s "c1"; s "b1" ], 1);
        (tup [ s "c2"; s "b1" ], 1);
        (tup [ s "c1"; s "b2" ], 2);
      ]
  in
  let db = Database.update ~name:"R2" (fun _ -> r2_swapped) fig3_db in
  let analysis = Tsens.analyze fig3_cq db in
  let p = Truncation.profile analysis "R2" in
  List.iter
    (fun i ->
      let truncated = Truncation.truncate_database analysis "R2" i db in
      let r2' = Database.find "R2" truncated in
      Alcotest.(check bool)
        (Printf.sprintf "threshold %d keeps stored schema" i)
        true
        (Schema.equal (Relation.schema r2_swapped) (Relation.schema r2'));
      Alcotest.(check int)
        (Printf.sprintf "threshold %d count agrees" i)
        (Truncation.truncated_answer p i)
        (Yannakakis.count fig3_cq truncated))
    [ 0; 4; 6; 18; 50 ]

(* ------------------------------------------------------------------ *)
(* Saturation reporting *)

(* A path-4 instance whose counts multiply past Count.max_count: every
   per-tuple sensitivity and the true answer saturate. The report must
   carry the saturated flag and render "overflow", never the raw
   max_int. *)
let saturated_db =
  let big = 1 lsl 31 in
  Database.of_list
    [
      ( "R1",
        Relation.create ~schema:(schema [ "A"; "B" ])
          [ (tup [ s "a"; s "b" ], big) ] );
      ( "R2",
        Relation.create ~schema:(schema [ "B"; "C" ])
          [ (tup [ s "b"; s "c" ], 1) ] );
      ( "R3",
        Relation.create ~schema:(schema [ "C"; "D" ])
          [ (tup [ s "c"; s "d" ], big) ] );
      ( "R4",
        Relation.create ~schema:(schema [ "D"; "E" ])
          [ (tup [ s "d"; s "e" ], big) ] );
    ]

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_saturated_report () =
  let analysis = Tsens.analyze fig3_cq saturated_db in
  Alcotest.(check bool) "output size saturates" true
    (Count.is_saturated (Tsens.output_size analysis));
  let rng = Prng.create 11 in
  let config = Mechanism.default_config ~ell:4 ~private_relation:"R2" in
  let report = Mechanism.run_with_analysis rng config analysis in
  Alcotest.(check bool) "report flagged" true report.Report.saturated;
  Alcotest.(check string) "true answer renders as overflow" "overflow"
    (Report.value_to_string report.Report.true_answer);
  let rendered = Format.asprintf "%a" Report.pp report in
  Alcotest.(check bool) "pp prints overflow" true
    (contains ~needle:"overflow" rendered);
  Alcotest.(check bool) "pp prints the marker" true
    (contains ~needle:"[saturated]" rendered);
  Alcotest.(check bool) "raw max_int never leaks" false
    (contains ~needle:(string_of_int max_int) rendered);
  let summary = Metrics.summarize [ { Metrics.report; seconds = 0.1 } ] in
  Alcotest.(check int) "summary counts the trial" 1 summary.Metrics.saturated_runs;
  let srendered = Format.asprintf "%a" Metrics.pp_summary summary in
  Alcotest.(check bool) "summary pp flags saturation" true
    (contains ~needle:"saturated" srendered);
  Alcotest.(check bool) "summary never leaks max_int" false
    (contains ~needle:(string_of_int max_int) srendered)

let test_unsaturated_report_unflagged () =
  let rng = Prng.create 12 in
  let config = Mechanism.default_config ~ell:18 ~private_relation:"R2" in
  let report = Mechanism.run rng config fig3_cq fig3_db in
  Alcotest.(check bool) "ordinary run unflagged" false report.Report.saturated;
  let rendered = Format.asprintf "%a" Report.pp report in
  Alcotest.(check bool) "no marker" false
    (contains ~needle:"[saturated]" rendered)

(* ------------------------------------------------------------------ *)
(* TSensDP *)

let test_tsens_dp_low_noise () =
  (* With a huge budget: τ converges to the largest in-instance tuple
     sensitivity (18), the truncated answer is exact and the noise is
     negligible. *)
  let rng = Prng.create 17 in
  let config =
    {
      Mechanism.epsilon = 1e9;
      threshold_fraction = 0.5;
      ell = 25;
      private_relation = "R2";
    }
  in
  let report = Mechanism.run rng config fig3_cq fig3_db in
  Alcotest.(check int) "tau" 18 report.Report.threshold;
  Alcotest.(check (float 1e-3)) "true answer" 46.0 report.Report.true_answer;
  Alcotest.(check (float 1e-3)) "no bias" 46.0 report.Report.truncated_answer;
  Alcotest.(check bool) "tiny error" true (Report.relative_error report < 1e-3)

let test_tsens_dp_budget_accounting () =
  let rng = Prng.create 4 in
  let config =
    {
      Mechanism.epsilon = 2.0;
      threshold_fraction = 0.25;
      ell = 20;
      private_relation = "R2";
    }
  in
  let report = Mechanism.run rng config fig3_cq fig3_db in
  Alcotest.(check (float 1e-9)) "epsilon" 2.0 report.Report.epsilon;
  Alcotest.(check (float 1e-9)) "threshold share" 0.5
    report.Report.epsilon_threshold;
  Alcotest.(check bool) "tau within [1, ell]" true
    (report.Report.threshold >= 1 && report.Report.threshold <= 20)

let test_tsens_dp_deterministic () =
  let config = Mechanism.default_config ~ell:25 ~private_relation:"R2" in
  let r1 = Mechanism.run (Prng.create 8) config fig3_cq fig3_db in
  let r2 = Mechanism.run (Prng.create 8) config fig3_cq fig3_db in
  Alcotest.(check (float 0.0))
    "same seed same release" r1.Report.noisy_answer r2.Report.noisy_answer

let test_tsens_dp_validation () =
  let rng = Prng.create 1 in
  let base = Mechanism.default_config ~ell:10 ~private_relation:"R2" in
  Alcotest.check_raises "epsilon" (Invalid_argument "TsensDp: non-positive epsilon")
    (fun () ->
      ignore (Mechanism.run rng { base with epsilon = 0.0 } fig3_cq fig3_db));
  Alcotest.check_raises "fraction"
    (Invalid_argument "TsensDp: threshold_fraction must be in (0, 1)")
    (fun () ->
      ignore
        (Mechanism.run rng { base with threshold_fraction = 1.0 } fig3_cq
           fig3_db));
  Alcotest.check_raises "ell" (Invalid_argument "TsensDp: ell must be at least 1")
    (fun () -> ignore (Mechanism.run rng { base with ell = 0 } fig3_cq fig3_db))

let test_tsens_dp_median_error_reasonable () =
  (* 30 trials at ε = 20 on the tiny Figure 3 instance (|Q| = 46, LS =
     21: the noise scale is a large fraction of the answer at small ε, so
     a moderate budget is needed for a stable assertion). *)
  let rng = Prng.create 99 in
  let config =
    { (Mechanism.default_config ~ell:25 ~private_relation:"R2") with epsilon = 20.0 }
  in
  let analysis = Tsens.analyze fig3_cq fig3_db in
  let trials =
    List.init 30 (fun _ ->
        let report, seconds =
          Metrics.time (fun () -> Mechanism.run_with_analysis rng config analysis)
        in
        { Metrics.report; seconds })
  in
  let summary = Metrics.summarize trials in
  Alcotest.(check bool) "median error < 30%" true
    (summary.Metrics.median_error < 0.3);
  Alcotest.(check int) "30 runs" 30 summary.Metrics.runs

(* ------------------------------------------------------------------ *)
(* PrivSQL baseline *)

let test_privsql_no_cascade () =
  (* No foreign keys: no truncation, zero bias, elastic-style GS. *)
  let rng = Prng.create 21 in
  let config =
    Privsql.default_config ~ell:30 ~private_relation:"R2" ~cascade:[]
  in
  let config = { config with Privsql.epsilon = 1e9 } in
  let report = Privsql.run rng config fig3_cq fig3_db in
  Alcotest.(check (float 1e-9)) "zero bias" 46.0 report.Report.truncated_answer;
  let elastic = Elastic.local_sensitivity fig3_cq fig3_db in
  let expected =
    float_of_int (List.assoc "R2" elastic.Sens_types.per_relation)
  in
  Alcotest.(check (float 1e-9)) "elastic GS" expected
    report.Report.global_sensitivity;
  Alcotest.(check bool) "GS looser than TSens tau" true
    (report.Report.global_sensitivity >= 18.0)

let test_privsql_cascade_truncates () =
  (* Force a frequency cap of 1: both B-keys of R2 have bag frequency 2,
     so everything is truncated — the over-truncation failure mode the
     paper observes for PrivSQL on q2. *)
  let rng = Prng.create 22 in
  let config =
    {
      (Privsql.default_config ~ell:1 ~private_relation:"R1"
         ~cascade:[ ("R2", "B") ])
      with
      Privsql.epsilon = 1e9;
    }
  in
  let report = Privsql.run rng config fig3_cq fig3_db in
  Alcotest.(check (float 1e-9)) "everything truncated" 0.0
    report.Report.truncated_answer;
  Alcotest.(check (float 1e-9)) "bias is total" 1.0
    (Report.relative_bias report);
  (* With room for the real frequencies the cap is learned exactly and
     nothing is dropped. *)
  let config2 = { config with Privsql.ell = 5 } in
  let report2 = Privsql.run rng config2 fig3_cq fig3_db in
  Alcotest.(check (float 1e-9)) "cap 2 keeps all" 46.0
    report2.Report.truncated_answer;
  Alcotest.(check int) "learned cap" 2 report2.Report.threshold

let test_privsql_cascade_validation () =
  let rng = Prng.create 2 in
  let config =
    Privsql.default_config ~ell:5 ~private_relation:"R1"
      ~cascade:[ ("R2", "Z") ]
  in
  Alcotest.check_raises "unknown cascade attr"
    (Errors.Schema_error "Privsql: R2 has no attribute Z") (fun () ->
      ignore (Privsql.run rng config fig3_cq fig3_db))

(* ------------------------------------------------------------------ *)
(* Empirical ε-indistinguishability *)

(* Histogram of mechanism outputs over many runs. *)
let histogram ~bin_width ~runs mech =
  let table = Hashtbl.create 64 in
  for _ = 1 to runs do
    let x = mech () in
    let bin = int_of_float (Float.floor (x /. bin_width)) in
    Hashtbl.replace table bin
      (1 + Option.value ~default:0 (Hashtbl.find_opt table bin))
  done;
  table

(* max over sufficiently-populated bins of |ln (p_bin / p'_bin)|. *)
let max_log_ratio ~min_count h1 h2 =
  let ratio = ref 0.0 in
  Hashtbl.iter
    (fun bin c1 ->
      match Hashtbl.find_opt h2 bin with
      | Some c2 when c1 >= min_count && c2 >= min_count ->
          ratio :=
            Float.max !ratio
              (Float.abs (log (float_of_int c1 /. float_of_int c2)))
      | _ -> ())
    h1;
  !ratio

let test_laplace_indistinguishability () =
  (* Lap(1/eps) on adjacent answers x and x+1 must have likelihood ratios
     bounded by e^eps everywhere. *)
  let epsilon = 0.5 in
  let rng = Prng.create 31 in
  let mech x () = Laplace.mechanism rng ~epsilon ~sensitivity:1.0 x in
  let runs = 60_000 in
  let h0 = histogram ~bin_width:0.5 ~runs (mech 10.0) in
  let h1 = histogram ~bin_width:0.5 ~runs (mech 11.0) in
  let worst = max_log_ratio ~min_count:300 h0 h1 in
  Alcotest.(check bool)
    (Printf.sprintf "log ratio %.3f within eps + sampling slack" worst)
    true
    (worst <= epsilon +. 0.25)

let test_tsens_dp_indistinguishability () =
  (* End-to-end: the whole TSensDP pipeline (Q-hat release + SVT + final
     Laplace) on two neighbouring databases — D and D minus one private
     tuple — must keep empirical output likelihood ratios within e^eps,
     up to sampling slack. Catches budget double-spending and missing
     noise scalings. *)
  let epsilon = 0.7 in
  let config =
    {
      (Mechanism.default_config ~ell:20 ~private_relation:"R2") with
      Mechanism.epsilon;
    }
  in
  let neighbour_db =
    Database.update ~name:"R2"
      (Relation.remove (tup [ s "b2"; s "c1" ]))
      fig3_db
  in
  let runs = 40_000 in
  let run_on db seed =
    let analysis = Tsens.analyze fig3_cq db in
    let rng = Prng.create seed in
    histogram ~bin_width:8.0 ~runs (fun () ->
        Report.released (Mechanism.run_with_analysis rng config analysis))
  in
  let h = run_on fig3_db 101 in
  let h' = run_on neighbour_db 102 in
  let worst = max_log_ratio ~min_count:400 h h' in
  Alcotest.(check bool)
    (Printf.sprintf "log ratio %.3f within eps + sampling slack" worst)
    true
    (worst <= epsilon +. 0.3)

(* ------------------------------------------------------------------ *)
(* Accountant *)

let test_accountant () =
  let acc = Accountant.create ~epsilon:1.0 in
  Alcotest.(check (float 1e-9)) "fresh" 1.0 (Accountant.remaining acc);
  Accountant.spend acc 0.4;
  Alcotest.(check (float 1e-9)) "after spend" 0.6 (Accountant.remaining acc);
  let x = Accountant.charge acc ~epsilon:0.6 (fun () -> 42) in
  Alcotest.(check int) "charged computation runs" 42 x;
  Alcotest.(check (float 1e-9)) "exhausted" 0.0 (Accountant.remaining acc);
  Alcotest.(check bool) "over-spend refused" true
    (match Accountant.spend acc 0.1 with
    | exception Accountant.Budget_exhausted _ -> true
    | _ -> false);
  Alcotest.(check bool) "non-positive spend" true
    (match Accountant.spend (Accountant.create ~epsilon:1.0) 0.0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* Float rounding across many small spends is absorbed. *)
  let acc = Accountant.create ~epsilon:1.0 in
  for _ = 1 to 10 do
    Accountant.spend acc 0.1
  done;
  Alcotest.(check bool) "ten tenths fit" true (Accountant.spent acc > 0.99)

let test_accountant_with_mechanisms () =
  (* Answer the same query twice under one budget; a third release is
     refused. *)
  let analysis = Tsens.analyze fig3_cq fig3_db in
  let acc = Accountant.create ~epsilon:2.0 in
  let rng = Prng.create 55 in
  let release () =
    Accountant.charge acc ~epsilon:1.0 (fun () ->
        Mechanism.run_with_analysis rng
          { (Mechanism.default_config ~ell:20 ~private_relation:"R2") with
            Mechanism.epsilon = 1.0 }
          analysis)
  in
  let r1 = release () and r2 = release () in
  Alcotest.(check bool) "two releases differ" true
    (r1.Report.noisy_answer <> r2.Report.noisy_answer);
  Alcotest.(check bool) "third refused" true
    (match release () with
    | exception Accountant.Budget_exhausted _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_median_mean () =
  Alcotest.(check (float 1e-9)) "median odd" 2.0 (Metrics.median [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "median even takes lower" 2.0
    (Metrics.median [ 4.0; 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Metrics.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.check_raises "empty median"
    (Invalid_argument "Metrics.median: empty list") (fun () ->
      ignore (Metrics.median []))

let () =
  Alcotest.run "dp"
    [
      ( "laplace",
        [
          Alcotest.test_case "statistics" `Quick test_laplace_statistics;
          Alcotest.test_case "mechanism edges" `Quick
            test_laplace_mechanism_edges;
          Alcotest.test_case "deterministic" `Quick test_laplace_deterministic;
        ] );
      ( "svt",
        [
          Alcotest.test_case "finds crossing" `Quick test_svt_finds_crossing;
          Alcotest.test_case "validation" `Quick test_svt_validation;
        ] );
      ( "truncation",
        [
          Alcotest.test_case "profile fig3" `Quick test_truncation_profile_fig3;
          Alcotest.test_case "boundaries" `Quick test_truncation_boundaries;
          Alcotest.test_case "empty profile" `Quick
            test_truncation_empty_profile;
          prop_truncation_matches_oracle;
          Alcotest.test_case "column order preserved" `Quick
            test_truncate_database_preserves_column_order;
          Alcotest.test_case "database consistency" `Quick
            test_truncate_database_consistent;
          prop_truncation_global_sensitivity;
        ] );
      ( "tsens_dp",
        [
          Alcotest.test_case "low noise regime" `Quick test_tsens_dp_low_noise;
          Alcotest.test_case "budget accounting" `Quick
            test_tsens_dp_budget_accounting;
          Alcotest.test_case "deterministic" `Quick test_tsens_dp_deterministic;
          Alcotest.test_case "validation" `Quick test_tsens_dp_validation;
          Alcotest.test_case "median error" `Quick
            test_tsens_dp_median_error_reasonable;
        ] );
      ( "indistinguishability",
        [
          Alcotest.test_case "laplace mechanism" `Slow
            test_laplace_indistinguishability;
          Alcotest.test_case "tsens dp end to end" `Slow
            test_tsens_dp_indistinguishability;
        ] );
      ( "privsql",
        [
          Alcotest.test_case "no cascade" `Quick test_privsql_no_cascade;
          Alcotest.test_case "cascade truncates" `Quick
            test_privsql_cascade_truncates;
          Alcotest.test_case "cascade validation" `Quick
            test_privsql_cascade_validation;
        ] );
      ( "accountant",
        [
          Alcotest.test_case "budget arithmetic" `Quick test_accountant;
          Alcotest.test_case "with mechanisms" `Quick
            test_accountant_with_mechanisms;
        ] );
      ("metrics", [ Alcotest.test_case "median/mean" `Quick test_metrics_median_mean ]);
      ( "saturation",
        [
          Alcotest.test_case "saturated report" `Quick test_saturated_report;
          Alcotest.test_case "unsaturated report" `Quick
            test_unsaturated_report_unflagged;
        ] );
    ]
