(* Tests for the versioned memoization layer: LRU mechanics, store
   hit/miss behavior, version-keyed index invalidation, the elastic
   mutation-then-query regression, analysis reuse, and the headline
   property — cached results are bit-identical to uncached ones across
   random insert/delete sequences at jobs ∈ {1, 2, 4}. *)

open Tsens_relational
open Tsens_query
open Tsens_sensitivity
open Tsens_dp

let s = Value.str
let tup l = Tuple.of_list l
let schema l = Schema.of_list l

(* Run one thunk with the cache toggle forced, restoring the previous
   setting and clearing every store afterwards so tests stay
   order-independent (and independent of the TSENS_CACHE env var). *)
let with_cache on f =
  let before = Cache.enabled () in
  Cache.set_enabled on;
  Cache.reset ();
  Fun.protect
    ~finally:(fun () ->
      Cache.reset ();
      Cache.set_enabled before)
    f

(* Compute a reference value with the cache bypassed, without touching
   the stores — for use inside a [with_cache true] block where warm
   entries must survive for later assertions. *)
let uncached f =
  let before = Cache.enabled () in
  Cache.set_enabled false;
  Fun.protect ~finally:(fun () -> Cache.set_enabled before) f

let store_stats name =
  match List.find_opt (fun s -> String.equal s.Cache.store name) (Cache.stats ()) with
  | Some s -> s
  | None -> Alcotest.failf "no cache store named %s" name

(* ------------------------------------------------------------------ *)
(* LRU *)

let test_lru_basics () =
  let l = Lru.create ~capacity:2 () in
  Alcotest.(check int) "capacity" 2 (Lru.capacity l);
  Alcotest.(check (option int)) "miss on empty" None (Lru.find l "a");
  let evicted = Lru.add l "a" 1 in
  Alcotest.(check int) "no eviction below capacity" 0 evicted;
  Alcotest.(check (option int)) "hit" (Some 1) (Lru.find l "a");
  let st = Lru.stats l in
  Alcotest.(check int) "one hit" 1 st.Lru.hits;
  Alcotest.(check int) "one miss" 1 st.Lru.misses;
  Alcotest.(check int) "one entry" 1 st.Lru.entries

let test_lru_eviction_order () =
  let l = Lru.create ~capacity:2 () in
  ignore (Lru.add l "a" 1);
  ignore (Lru.add l "b" 2);
  (* Promote "a": "b" becomes the LRU entry and is evicted by "c". *)
  ignore (Lru.find l "a");
  let evicted = Lru.add l "c" 3 in
  Alcotest.(check int) "one eviction" 1 evicted;
  Alcotest.(check (option int)) "b evicted" None (Lru.find l "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Lru.find l "a");
  Alcotest.(check (option int)) "c present" (Some 3) (Lru.find l "c");
  Alcotest.(check int) "eviction counted" 1 (Lru.stats l).Lru.evictions

let test_lru_replace_and_remove () =
  let l = Lru.create ~weight:(fun v -> v) ~capacity:3 () in
  ignore (Lru.add l "a" 10);
  ignore (Lru.add l "a" 20);
  Alcotest.(check (option int)) "replaced" (Some 20) (Lru.find l "a");
  Alcotest.(check int) "replace keeps one entry" 1 (Lru.stats l).Lru.entries;
  Alcotest.(check int) "bytes follow replacement" 20
    (Lru.stats l).Lru.approx_bytes;
  Lru.remove l "a";
  Alcotest.(check (option int)) "removed" None (Lru.find l "a");
  Alcotest.(check int) "bytes released" 0 (Lru.stats l).Lru.approx_bytes;
  Lru.remove l "ghost" (* absent keys are ignored *)

let test_lru_clear () =
  let l = Lru.create ~capacity:4 () in
  ignore (Lru.add l "a" 1);
  ignore (Lru.add l "b" 2);
  ignore (Lru.find l "a");
  Lru.clear l;
  let st = Lru.stats l in
  Alcotest.(check int) "no entries" 0 st.Lru.entries;
  Alcotest.(check int) "clear is not an eviction" 0 st.Lru.evictions;
  Alcotest.(check int) "hit totals preserved" 1 st.Lru.hits;
  Lru.reset_stats l;
  Alcotest.(check int) "reset zeroes hits" 0 (Lru.stats l).Lru.hits

let test_lru_capacity_one () =
  let l = Lru.create ~capacity:1 () in
  for i = 0 to 9 do
    ignore (Lru.add l (string_of_int i) i)
  done;
  Alcotest.(check int) "single survivor" 1 (Lru.stats l).Lru.entries;
  Alcotest.(check (option int)) "latest wins" (Some 9) (Lru.find l "9");
  Alcotest.(check int) "nine evictions" 9 (Lru.stats l).Lru.evictions;
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Lru.create: capacity < 1") (fun () ->
      ignore (Lru.create ~capacity:0 ()))

(* ------------------------------------------------------------------ *)
(* Store *)

let test_store_hit_miss () =
  with_cache true @@ fun () ->
  let store = Cache.Store.create ~name:"test.store" ~capacity:4 () in
  let calls = ref 0 in
  let compute () = incr calls; [| 1; 2; 3 |] in
  let a = Cache.Store.find_or_add store "k" compute in
  let b = Cache.Store.find_or_add store "k" compute in
  Alcotest.(check int) "computed once" 1 !calls;
  Alcotest.(check bool) "hit returns the same value" true (a == b);
  let st = Cache.Store.stats store in
  Alcotest.(check int) "one hit" 1 st.Cache.hits;
  Alcotest.(check int) "one miss" 1 st.Cache.misses

let test_store_disabled_bypass () =
  with_cache false @@ fun () ->
  let store = Cache.Store.create ~name:"test.bypass" ~capacity:4 () in
  let calls = ref 0 in
  let compute () = incr calls; !calls in
  Alcotest.(check int) "first call computes" 1
    (Cache.Store.find_or_add store "k" compute);
  Alcotest.(check int) "second call computes again" 2
    (Cache.Store.find_or_add store "k" compute);
  let st = Cache.Store.stats store in
  Alcotest.(check int) "no hits recorded" 0 st.Cache.hits;
  Alcotest.(check int) "no misses recorded" 0 st.Cache.misses;
  Alcotest.(check int) "nothing stored" 0 st.Cache.entries

let test_store_registry_reset () =
  with_cache true @@ fun () ->
  let store = Cache.Store.create ~name:"test.reset" ~capacity:4 () in
  ignore (Cache.Store.find_or_add store "k" (fun () -> 1));
  Alcotest.(check int) "visible in global stats" 1
    (store_stats "test.reset").Cache.misses;
  Cache.reset ();
  let st = Cache.Store.stats store in
  Alcotest.(check int) "reset clears entries" 0 st.Cache.entries;
  Alcotest.(check int) "reset zeroes misses" 0 st.Cache.misses

let test_key_parts_cannot_collide () =
  Alcotest.(check bool) "separator keeps parts apart" false
    (String.equal (Cache.Key.of_parts [ "ab"; "c" ]) (Cache.Key.of_parts [ "a"; "bc" ]));
  Alcotest.(check string) "versions render" "R1=3;R2=7"
    (Cache.Key.versions [ ("R1", 3); ("R2", 7) ])

(* ------------------------------------------------------------------ *)
(* Version stamps *)

let r1 () =
  Relation.create ~schema:(schema [ "A"; "B" ])
    [ (tup [ s "a"; s "b" ], 1); (tup [ s "a"; s "c" ], 2) ]

let test_version_stamps () =
  let r = r1 () in
  let r' = r1 () in
  Alcotest.(check bool) "equal bags, distinct stamps" false
    (Relation.version r = Relation.version r');
  Alcotest.(check bool) "monotone" true
    (Relation.version r' > Relation.version r);
  let mutated = Relation.add (tup [ s "x"; s "y" ]) r in
  Alcotest.(check bool) "mutation bumps" true
    (Relation.version mutated > Relation.version r);
  (* reorder to the stored schema is the identity — same stamp. *)
  let same = Relation.reorder (schema [ "A"; "B" ]) r in
  Alcotest.(check int) "identity reorder keeps the stamp"
    (Relation.version r) (Relation.version same);
  let permuted = Relation.reorder (schema [ "B"; "A" ]) r in
  Alcotest.(check bool) "real reorder restamps" true
    (Relation.version permuted <> Relation.version r)

let test_database_versions () =
  let a = r1 () and b = r1 () in
  let db = Database.of_list [ ("R1", a); ("R2", b) ] in
  Alcotest.(check (list (pair string int)))
    "name-sorted version list"
    [ ("R1", Relation.version a); ("R2", Relation.version b) ]
    (Database.versions db);
  let db' = Database.update ~name:"R1" (Relation.add (tup [ s "q"; s "r" ])) db in
  Alcotest.(check bool) "update changes the list" false
    (Database.versions db = Database.versions db')

(* ------------------------------------------------------------------ *)
(* Cached indexes: sharing and version-keyed invalidation *)

let test_cached_index_shared_and_invalidated () =
  with_cache true @@ fun () ->
  let rel = r1 () in
  let key = schema [ "A" ] in
  let i1 = Cache.index ~key rel in
  let i2 = Cache.index ~key rel in
  (* The hit returns the very same frozen index: lookup arrays are
     aliased across all callers, which is why Index.lookup's
     no-mutation contract is load-bearing. *)
  Alcotest.(check bool) "same physical index" true (i1 == i2);
  Alcotest.(check bool) "lookup arrays aliased" true
    (Index.lookup i1 (tup [ s "a" ]) == Index.lookup i2 (tup [ s "a" ]));
  Alcotest.(check int) "group content" 3
    (Index.group_count i1 (tup [ s "a" ]));
  (* Mutating yields a new version: the cached index is not served for
     the new relation, and the fresh one sees the new rows. *)
  let rel' = Relation.add ~count:5 (tup [ s "a"; s "z" ]) rel in
  let i3 = Cache.index ~key rel' in
  Alcotest.(check bool) "version bump invalidates" true (not (i3 == i1));
  Alcotest.(check int) "fresh groups" 8 (Index.group_count i3 (tup [ s "a" ]));
  (* The old relation's entry is untouched. *)
  Alcotest.(check int) "old index unchanged" 3
    (Index.group_count (Cache.index ~key rel) (tup [ s "a" ]));
  (* Distinct key schemas do not collide on one relation. *)
  let ib = Cache.index ~key:(schema [ "B" ]) rel in
  Alcotest.(check bool) "different key schema, different index" true
    (not (ib == i1));
  Alcotest.(check int) "B-group" 1 (Index.group_count ib (tup [ s "b" ]))

let test_cached_index_matches_fresh_build () =
  (* Same groups as an uncached build, for every key of a random-ish
     relation — the cached index must be indistinguishable from a fresh
     one. *)
  with_cache true @@ fun () ->
  let rng = Prng.create 7 in
  let rows =
    List.init 40 (fun _ ->
        (tup [ Value.int (Prng.int rng 5); Value.int (Prng.int rng 5) ],
         1 + Prng.int rng 3))
  in
  let rel = Relation.create ~schema:(schema [ "A"; "B" ]) rows in
  let key = schema [ "B" ] in
  let cached = Cache.index ~key rel in
  let fresh = Index.build ~key rel in
  List.iter
    (fun v ->
      let k = tup [ v ] in
      Alcotest.(check int)
        (Format.asprintf "group %a" Tuple.pp k)
        (Index.group_count fresh k)
        (Index.group_count cached k))
    (Relation.active_domain "B" rel)

(* ------------------------------------------------------------------ *)
(* Fixtures shared with test_dp: the Figure 3 path-4 instance. *)

let fig3_cq =
  Cq.make ~name:"path4"
    [
      ("R1", [ "A"; "B" ]);
      ("R2", [ "B"; "C" ]);
      ("R3", [ "C"; "D" ]);
      ("R4", [ "D"; "E" ]);
    ]

let fig3_db =
  Database.of_list
    [
      ( "R1",
        Relation.create ~schema:(schema [ "A"; "B" ])
          [
            (tup [ s "a1"; s "b1" ], 1);
            (tup [ s "a1"; s "b2" ], 1);
            (tup [ s "a2"; s "b2" ], 2);
          ] );
      ( "R2",
        Relation.create ~schema:(schema [ "B"; "C" ])
          [
            (tup [ s "b1"; s "c1" ], 1);
            (tup [ s "b1"; s "c2" ], 1);
            (tup [ s "b2"; s "c1" ], 2);
          ] );
      ( "R3",
        Relation.create ~schema:(schema [ "C"; "D" ])
          [
            (tup [ s "c1"; s "d1" ], 2);
            (tup [ s "c2"; s "d1" ], 1);
            (tup [ s "c2"; s "d2" ], 1);
          ] );
      ( "R4",
        Relation.create ~schema:(schema [ "D"; "E" ])
          [
            (tup [ s "d1"; s "e1" ], 1);
            (tup [ s "d1"; s "e2" ], 1);
            (tup [ s "d1"; s "e3" ], 1);
            (tup [ s "d2"; s "e4" ], 1);
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Analysis reuse *)

let test_analysis_reuse_and_invalidation () =
  with_cache true @@ fun () ->
  let a1 = Tsens.analyze fig3_cq fig3_db in
  let a2 = Tsens.analyze fig3_cq fig3_db in
  Alcotest.(check int) "warm analyze returns the same DP run"
    (Tsens.analysis_id a1) (Tsens.analysis_id a2);
  Alcotest.(check int) "analysis store hit" 1
    (store_stats "tsens.analysis").Cache.hits;
  (* The profile keyed by the shared id is also reused. *)
  let p1 = Truncation.profile a1 "R2" in
  let p2 = Truncation.profile a2 "R2" in
  Alcotest.(check bool) "profile reused" true (p1 == p2);
  (* Mutation invalidates: new versions, fresh run, correct answer. *)
  let db' =
    Database.update ~name:"R2"
      (Relation.remove (tup [ s "b2"; s "c1" ]))
      fig3_db
  in
  let a3 = Tsens.analyze fig3_cq db' in
  Alcotest.(check bool) "new versions, new run" true
    (Tsens.analysis_id a3 <> Tsens.analysis_id a1);
  let fresh =
    uncached (fun () -> Tsens.local_sensitivity fig3_cq db')
  in
  Alcotest.(check int) "post-mutation LS matches uncached"
    fresh.Sens_types.local_sensitivity
    (Tsens.result a3).Sens_types.local_sensitivity

(* ------------------------------------------------------------------ *)
(* Elastic mutation-then-query regression *)

let test_elastic_mutation_then_query () =
  (* A warm mf store must never answer for a mutated database: the new
     relation's stamp keys a fresh computation. Before version keying, a
     (cq, db)-closure memo reused across calls would serve the stale
     bound. *)
  with_cache true @@ fun () ->
  let warm = Elastic.local_sensitivity fig3_cq fig3_db in
  let db' =
    Database.update ~name:"R2"
      (Relation.add ~count:10 (tup [ s "b2"; s "c1" ]))
      fig3_db
  in
  let cached = Elastic.local_sensitivity fig3_cq db' in
  let fresh = uncached (fun () -> Elastic.local_sensitivity fig3_cq db') in
  Alcotest.(check int) "mutated db gets fresh bounds"
    fresh.Sens_types.local_sensitivity cached.Sens_types.local_sensitivity;
  Alcotest.(check bool) "and the bound actually moved" true
    (cached.Sens_types.local_sensitivity > warm.Sens_types.local_sensitivity);
  (* Unchanged database: the second call is served from the store. *)
  let before = (store_stats "elastic.mf").Cache.hits in
  let again = Elastic.local_sensitivity fig3_cq db' in
  Alcotest.(check int) "same result" cached.Sens_types.local_sensitivity
    again.Sens_types.local_sensitivity;
  Alcotest.(check bool) "warm mf hits" true
    ((store_stats "elastic.mf").Cache.hits > before)

(* ------------------------------------------------------------------ *)
(* Yannakakis count store *)

let test_count_store () =
  with_cache true @@ fun () ->
  let c1 = Yannakakis.count fig3_cq fig3_db in
  let c2 = Yannakakis.count fig3_cq fig3_db in
  Alcotest.(check int) "same count" c1 c2;
  Alcotest.(check int) "second call hits" 1
    (store_stats "yannakakis.count").Cache.hits;
  let db' =
    Database.update ~name:"R4" (Relation.remove (tup [ s "d1"; s "e1" ])) fig3_db
  in
  let fresh = uncached (fun () -> Yannakakis.count fig3_cq db') in
  Alcotest.(check int) "mutated db recounted" fresh
    (Yannakakis.count fig3_cq db')

(* ------------------------------------------------------------------ *)
(* The headline property: cached == uncached under random mutation
   sequences, at jobs ∈ {1, 2, 4}. *)

let result_equal (a : Sens_types.result) (b : Sens_types.result) =
  Count.equal a.local_sensitivity b.local_sensitivity
  && List.equal
       (fun (r1, c1) (r2, c2) -> String.equal r1 r2 && Count.equal c1 c2)
       a.per_relation b.per_relation
  && Option.equal
       (fun (w1 : Sens_types.witness) w2 ->
         String.equal w1.relation w2.relation
         && Schema.equal w1.schema w2.schema
         && Tuple.equal w1.tuple w2.tuple
         && Count.equal w1.sensitivity w2.sensitivity)
       a.witness b.witness

let path3_cq =
  Cq.make ~name:"p3"
    [ ("R1", [ "A"; "B" ]); ("R2", [ "B"; "C" ]); ("R3", [ "C"; "D" ]) ]

let random_tuple rng = tup [ Value.int (Prng.int rng 4); Value.int (Prng.int rng 4) ]

let random_db rng =
  let rel () =
    let rows =
      List.init (Prng.int rng 8) (fun _ -> (random_tuple rng, 1 + Prng.int rng 2))
    in
    (* Distinct schemas per atom don't matter for the DP: the instance
       reorders to atom order. Use atom order directly. *)
    rows
  in
  Database.of_list
    [
      ("R1", Relation.create ~schema:(schema [ "A"; "B" ]) (rel ()));
      ("R2", Relation.create ~schema:(schema [ "B"; "C" ]) (rel ()));
      ("R3", Relation.create ~schema:(schema [ "C"; "D" ]) (rel ()));
    ]

let mutate rng db =
  let name = Prng.choose rng [| "R1"; "R2"; "R3" |] in
  let t = random_tuple rng in
  Database.update ~name
    (fun rel ->
      if Prng.bool rng then Relation.add ~count:(1 + Prng.int rng 2) t rel
      else Relation.remove t rel)
    db

(* Everything we assert bit-identity over, computed fresh. *)
let observe cq db =
  let analysis = Tsens.analyze cq db in
  let profile = Truncation.profile analysis "R2" in
  ( Tsens.result analysis,
    Tsens.output_size analysis,
    List.map (Truncation.truncated_answer profile) [ 0; 1; 2; 5; 100 ],
    Elastic.local_sensitivity cq db,
    Yannakakis.count cq db )

let observation_equal (r1, o1, t1, e1, c1) (r2, o2, t2, e2, c2) =
  result_equal r1 r2 && Count.equal o1 o2
  && List.equal Count.equal t1 t2
  && result_equal e1 e2 && Count.equal c1 c2

let test_cached_equals_uncached_random_sequences () =
  let rng = Prng.create 1234 in
  for round = 1 to 8 do
    let db = ref (random_db rng) in
    for step = 1 to 6 do
      db := mutate rng !db;
      let reference =
        uncached (fun () -> Exec.with_jobs 1 (fun () -> observe path3_cq !db))
      in
      List.iter
        (fun jobs ->
          let uncached =
            uncached (fun () ->
                Exec.with_jobs jobs (fun () -> observe path3_cq !db))
          in
          (* Cached twice: the first call fills every store (cold), the
             second must be served warm — both bit-identical to the
             uncached reference. *)
          let cold, warm =
            with_cache true (fun () ->
                Exec.with_jobs jobs (fun () ->
                    let cold = observe path3_cq !db in
                    (cold, observe path3_cq !db)))
          in
          let ctx what =
            Printf.sprintf "round %d step %d jobs %d: %s" round step jobs what
          in
          Alcotest.(check bool) (ctx "uncached matches jobs=1") true
            (observation_equal reference uncached);
          Alcotest.(check bool) (ctx "cold cache matches") true
            (observation_equal reference cold);
          Alcotest.(check bool) (ctx "warm cache matches") true
            (observation_equal reference warm))
        [ 1; 2; 4 ]
    done
  done

(* The warm path must actually hit: analyze twice, then check counters. *)
let test_warm_hit_counters () =
  with_cache true @@ fun () ->
  let _ = observe fig3_cq fig3_db in
  let misses = (store_stats "tsens.analysis").Cache.misses in
  let _ = observe fig3_cq fig3_db in
  let st = store_stats "tsens.analysis" in
  Alcotest.(check int) "no new misses" misses st.Cache.misses;
  Alcotest.(check bool) "warm analysis hits" true (st.Cache.hits >= 1);
  Alcotest.(check bool) "warm profile hits" true
    ((store_stats "truncation.profile").Cache.hits >= 1)

let () =
  Alcotest.run "cache"
    [
      ( "lru",
        [
          Alcotest.test_case "basics" `Quick test_lru_basics;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "replace and remove" `Quick
            test_lru_replace_and_remove;
          Alcotest.test_case "clear" `Quick test_lru_clear;
          Alcotest.test_case "capacity one" `Quick test_lru_capacity_one;
        ] );
      ( "store",
        [
          Alcotest.test_case "hit/miss" `Quick test_store_hit_miss;
          Alcotest.test_case "disabled bypass" `Quick test_store_disabled_bypass;
          Alcotest.test_case "registry reset" `Quick test_store_registry_reset;
          Alcotest.test_case "key separation" `Quick test_key_parts_cannot_collide;
        ] );
      ( "versions",
        [
          Alcotest.test_case "relation stamps" `Quick test_version_stamps;
          Alcotest.test_case "database versions" `Quick test_database_versions;
        ] );
      ( "index",
        [
          Alcotest.test_case "shared and invalidated" `Quick
            test_cached_index_shared_and_invalidated;
          Alcotest.test_case "matches fresh build" `Quick
            test_cached_index_matches_fresh_build;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "reuse and invalidation" `Quick
            test_analysis_reuse_and_invalidation;
          Alcotest.test_case "warm hit counters" `Quick test_warm_hit_counters;
        ] );
      ( "elastic",
        [
          Alcotest.test_case "mutation then query" `Quick
            test_elastic_mutation_then_query;
        ] );
      ( "yannakakis",
        [ Alcotest.test_case "count store" `Quick test_count_store ] );
      ( "identity",
        [
          Alcotest.test_case "cached == uncached over mutations, jobs 1/2/4"
            `Quick test_cached_equals_uncached_random_sequences;
        ] );
    ]
