(* Unit and property tests for the relational layer. *)

open Tsens_relational

let v = Value.int
let s = Value.str
let tup l = Tuple.of_list l
let schema l = Schema.of_list l

(* ------------------------------------------------------------------ *)
(* Count *)

let test_count_saturating_add () =
  Alcotest.(check int) "normal" 5 (Count.add 2 3);
  Alcotest.(check bool) "saturates" true
    (Count.is_saturated (Count.add Count.max_count 1));
  Alcotest.(check bool) "near-saturation" true
    (Count.is_saturated (Count.add (Count.max_count - 1) 2))

let test_count_saturating_mul () =
  Alcotest.(check int) "normal" 6 (Count.mul 2 3);
  Alcotest.(check int) "zero absorbs" 0 (Count.mul 0 Count.max_count);
  Alcotest.(check bool) "saturates" true
    (Count.is_saturated (Count.mul (Count.max_count / 2) 3));
  Alcotest.(check bool) "saturated times one stays" true
    (Count.is_saturated (Count.mul Count.max_count 1))

let test_count_pow () =
  Alcotest.(check int) "2^10" 1024 (Count.pow 2 10);
  Alcotest.(check int) "x^0" 1 (Count.pow 7 0);
  Alcotest.(check bool) "big pow saturates" true
    (Count.is_saturated (Count.pow 10 40));
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Count.pow: negative exponent") (fun () ->
      ignore (Count.pow 2 (-1)))

let test_count_of_int () =
  Alcotest.check_raises "negatives raise"
    (Invalid_argument "Count.of_int: negative multiplicity -5") (fun () ->
      ignore (Count.of_int (-5)));
  Alcotest.(check int) "keeps zero" 0 (Count.of_int 0);
  Alcotest.(check int) "keeps positives" 5 (Count.of_int 5)

(* Exact behaviour one step either side of the saturation point: results
   strictly below max_count stay exact, anything that reaches it sticks
   there. *)
let test_count_boundary () =
  let m = Count.max_count in
  Alcotest.(check int) "add below boundary exact" (m - 1)
    (Count.add (m - 2) 1);
  Alcotest.(check bool) "add reaching boundary saturates" true
    (Count.is_saturated (Count.add (m - 1) 1));
  Alcotest.(check bool) "saturated add absorbs" true
    (Count.is_saturated (Count.add m m));
  Alcotest.(check int) "mul below boundary exact" (m - 1)
    (Count.mul ((m - 1) / 2) 2);
  Alcotest.(check bool) "mul crossing boundary saturates" true
    (Count.is_saturated (Count.mul ((m / 2) + 1) 2));
  Alcotest.(check bool) "saturated mul absorbs" true
    (Count.is_saturated (Count.mul m 2));
  (* max_count = 2^62 - 1 on 64-bit: 2^61 is exact, 2^62 saturates. *)
  Alcotest.(check int) "pow below boundary exact" (1 lsl 61)
    (Count.pow 2 61);
  Alcotest.(check bool) "pow crossing boundary saturates" true
    (Count.is_saturated (Count.pow 2 62));
  Alcotest.(check int) "pow of saturated zero exponent" Count.one
    (Count.pow m 0)

(* ------------------------------------------------------------------ *)
(* Value *)

let test_value_order () =
  Alcotest.(check bool) "int < str" true (Value.compare (v 99) (s "a") < 0);
  Alcotest.(check bool) "str < bool" true
    (Value.compare (s "z") (Value.bool false) < 0);
  Alcotest.(check bool) "ints ordered" true (Value.compare (v 1) (v 2) < 0);
  Alcotest.(check bool) "equal ints" true (Value.equal (v 3) (v 3))

let test_value_round_trip () =
  let check x =
    Alcotest.check Tgen.value_testable "round trip" x
      (Value.of_string (Value.to_string x))
  in
  check (v 42);
  check (v (-7));
  check (s "hello_world");
  check (Value.bool true);
  check (Value.bool false)

let test_value_accessors () =
  Alcotest.(check (option int)) "as_int" (Some 5) (Value.as_int (v 5));
  Alcotest.(check (option int)) "as_int on str" None (Value.as_int (s "x"));
  Alcotest.(check (option string)) "as_str" (Some "x") (Value.as_str (s "x"));
  Alcotest.(check (option bool))
    "as_bool" (Some true)
    (Value.as_bool (Value.bool true))

(* ------------------------------------------------------------------ *)
(* Schema *)

let test_schema_duplicate () =
  Alcotest.check_raises "duplicate attr"
    (Errors.Schema_error "duplicate attribute A in schema") (fun () ->
      ignore (schema [ "A"; "B"; "A" ]))

let test_schema_set_ops () =
  let ab = schema [ "A"; "B" ] and bc = schema [ "B"; "C" ] in
  Alcotest.check Tgen.schema_testable "inter" (schema [ "B" ])
    (Schema.inter ab bc);
  Alcotest.check Tgen.schema_testable "union"
    (schema [ "A"; "B"; "C" ])
    (Schema.union ab bc);
  Alcotest.check Tgen.schema_testable "diff" (schema [ "A" ])
    (Schema.diff ab bc);
  Alcotest.(check bool) "subset yes" true (Schema.subset (schema [ "B" ]) ab);
  Alcotest.(check bool) "subset no" false (Schema.subset bc ab);
  Alcotest.(check bool) "disjoint" true
    (Schema.disjoint (schema [ "A" ]) (schema [ "C" ]))

let test_schema_positions () =
  let super = schema [ "A"; "B"; "C"; "D" ] in
  let positions = Schema.positions ~sub:(schema [ "C"; "A" ]) super in
  Alcotest.(check (array int)) "positions" [| 2; 0 |] positions;
  Alcotest.check_raises "missing attr"
    (Errors.Schema_error "attribute X not in schema") (fun () ->
      ignore (Schema.positions ~sub:(schema [ "X" ]) super))

let test_schema_rename () =
  let r = Schema.rename [ ("A", "X") ] (schema [ "A"; "B" ]) in
  Alcotest.check Tgen.schema_testable "renamed" (schema [ "X"; "B" ]) r;
  Alcotest.check_raises "rename collision"
    (Errors.Schema_error "duplicate attribute B in schema") (fun () ->
      ignore (Schema.rename [ ("A", "B") ] (schema [ "A"; "B" ])))

let test_schema_equal_as_sets () =
  Alcotest.(check bool) "permuted equal" true
    (Schema.equal_as_sets (schema [ "A"; "B" ]) (schema [ "B"; "A" ]));
  Alcotest.(check bool) "ordered unequal" false
    (Schema.equal (schema [ "A"; "B" ]) (schema [ "B"; "A" ]))

(* ------------------------------------------------------------------ *)
(* Tuple *)

let test_tuple_compare () =
  Alcotest.(check bool) "lexicographic" true
    (Tuple.compare (tup [ v 1; v 2 ]) (tup [ v 1; v 3 ]) < 0);
  Alcotest.(check bool) "shorter first" true
    (Tuple.compare (tup [ v 1 ]) (tup [ v 1; v 0 ]) < 0);
  Alcotest.(check bool) "equal" true
    (Tuple.equal (tup [ v 1; s "a" ]) (tup [ v 1; s "a" ]))

let test_tuple_project () =
  let t = tup [ v 10; v 20; v 30 ] in
  Alcotest.check Tgen.tuple_testable "projection"
    (tup [ v 30; v 10 ])
    (Tuple.project [| 2; 0 |] t)

(* ------------------------------------------------------------------ *)
(* Relation *)

let r1_fig1 =
  (* R1(A,B,C) from the paper's Figure 1. *)
  Relation.of_rows ~schema:(schema [ "A"; "B"; "C" ])
    [
      [ s "a1"; s "b1"; s "c1" ];
      [ s "a1"; s "b2"; s "c1" ];
      [ s "a2"; s "b1"; s "c1" ];
    ]

let test_relation_normalizes () =
  let r =
    Relation.create ~schema:(schema [ "A" ])
      [ (tup [ v 1 ], 2); (tup [ v 1 ], 3); (tup [ v 2 ], 1) ]
  in
  Alcotest.(check int) "distinct" 2 (Relation.distinct_count r);
  Alcotest.(check int) "cardinality" 6 (Relation.cardinality r);
  Alcotest.(check int) "merged count" 5 (Relation.count_of (tup [ v 1 ]) r)

let test_relation_create_validation () =
  Alcotest.check_raises "arity mismatch"
    (Errors.Data_error "row arity 1 does not match schema (A, B)") (fun () ->
      ignore
        (Relation.create ~schema:(schema [ "A"; "B" ]) [ (tup [ v 1 ], 1) ]));
  Alcotest.check_raises "zero count"
    (Errors.Data_error "non-positive multiplicity 0 for tuple (1)") (fun () ->
      ignore (Relation.create ~schema:(schema [ "A" ]) [ (tup [ v 1 ], 0) ]))

let test_relation_project_sums () =
  let grouped = Relation.project (schema [ "A" ]) r1_fig1 in
  Alcotest.(check int) "a1 multiplicity" 2
    (Relation.count_of (tup [ s "a1" ]) grouped);
  Alcotest.(check int) "a2 multiplicity" 1
    (Relation.count_of (tup [ s "a2" ]) grouped);
  (* Projecting on the empty schema yields a single nullary tuple carrying
     the bag cardinality. *)
  let total = Relation.project Schema.empty r1_fig1 in
  Alcotest.(check int) "nullary count" 3 (Relation.count_of (tup []) total)

let test_relation_filter () =
  let keep schema t =
    Value.equal (Tuple.get t (Schema.index "B" schema)) (s "b1")
  in
  let r = Relation.filter keep r1_fig1 in
  Alcotest.(check int) "two b1 rows" 2 (Relation.distinct_count r)

let test_relation_add_remove () =
  let t = tup [ s "a9"; s "b9"; s "c9" ] in
  let bigger = Relation.add t r1_fig1 in
  Alcotest.(check int) "added" 1 (Relation.count_of t bigger);
  let same = Relation.remove t bigger in
  Alcotest.(check bool) "add then remove restores" true
    (Relation.equal same r1_fig1);
  Alcotest.(check bool) "removing absent is identity" true
    (Relation.equal (Relation.remove t r1_fig1) r1_fig1);
  let existing = tup [ s "a1"; s "b1"; s "c1" ] in
  let smaller = Relation.remove existing r1_fig1 in
  Alcotest.(check int) "removed one copy" 0 (Relation.count_of existing smaller)

(* Pins the clamp semantics documented in relation.mli: removing more
   copies than are stored empties the row and leaves the rest of the
   relation untouched; only a non-positive count raises. *)
let test_relation_remove_clamp () =
  let sch = schema [ "A" ] in
  let x = tup [ s "x" ] and y = tup [ s "y" ] in
  let r = Relation.create ~schema:sch [ (x, 3); (y, 2) ] in
  let clamped = Relation.remove ~count:5 x r in
  Alcotest.(check int) "over-removal empties the row" 0
    (Relation.count_of x clamped);
  Alcotest.(check int) "other rows untouched" 2 (Relation.count_of y clamped);
  Alcotest.(check bool) "over-removal equals exact removal" true
    (Relation.equal clamped (Relation.remove ~count:3 x r));
  Alcotest.(check int) "partial removal subtracts" 1
    (Relation.count_of x (Relation.remove ~count:2 x r));
  (match Relation.remove ~count:0 x r with
  | exception Errors.Data_error _ -> ()
  | _ -> Alcotest.fail "count 0 should raise Data_error");
  match Relation.remove ~count:(-2) x r with
  | exception Errors.Data_error _ -> ()
  | _ -> Alcotest.fail "negative count should raise Data_error"

let test_relation_max_row () =
  let r =
    Relation.create ~schema:(schema [ "A" ])
      [ (tup [ v 2 ], 5); (tup [ v 1 ], 5); (tup [ v 3 ], 1) ]
  in
  (match Relation.max_row r with
  | Some (t, c) ->
      Alcotest.check Tgen.tuple_testable "tie broken by tuple order"
        (tup [ v 1 ]) t;
      Alcotest.(check int) "count" 5 c
  | None -> Alcotest.fail "expected a max row");
  Alcotest.(check bool) "empty has none" true
    (Relation.max_row (Relation.empty (schema [ "A" ])) = None)

let test_relation_max_frequency () =
  Alcotest.(check int) "mf over A" 2
    (Relation.max_frequency ~over:(schema [ "A" ]) r1_fig1);
  Alcotest.(check int) "mf over empty = cardinality" 3
    (Relation.max_frequency ~over:Schema.empty r1_fig1);
  Alcotest.(check int) "mf of empty relation" 0
    (Relation.max_frequency ~over:(schema [ "A" ])
       (Relation.empty (schema [ "A" ])))

let test_relation_active_domain () =
  Alcotest.(check (list string))
    "domain of A" [ "a1"; "a2" ]
    (List.filter_map Value.as_str (Relation.active_domain "A" r1_fig1))

let test_relation_reorder () =
  let r = Relation.of_rows ~schema:(schema [ "A"; "B" ]) [ [ v 1; v 2 ] ] in
  let r' = Relation.reorder (schema [ "B"; "A" ]) r in
  Alcotest.(check int) "value moved" 1 (Relation.count_of (tup [ v 2; v 1 ]) r');
  Alcotest.(check bool) "semantic equality" true (Relation.equal_semantic r r')

let test_relation_scale () =
  let r = Relation.of_rows ~schema:(schema [ "A" ]) [ [ v 1 ] ] in
  Alcotest.(check int) "scaled" 7 (Relation.cardinality (Relation.scale 7 r));
  Alcotest.check_raises "bad factor"
    (Errors.Data_error "scale: non-positive factor 0") (fun () ->
      ignore (Relation.scale 0 r))

let prop_project_preserves_cardinality =
  Tgen.qtest "project preserves bag cardinality" Tgen.relation_gen
    Tgen.print_relation (fun r ->
      let keep =
        Schema.restrict
          ~keep:(fun a -> Attr.equal a "A" || Attr.equal a "B")
          (Relation.schema r)
      in
      Relation.cardinality (Relation.project keep r) = Relation.cardinality r)

let prop_mem_matches_count =
  Tgen.qtest "mem agrees with count_of" Tgen.relation_gen Tgen.print_relation
    (fun r ->
      Relation.fold
        (fun t _ acc -> acc && Relation.mem t r && Relation.count_of t r > 0)
        r true)

let prop_add_remove_round_trip =
  Tgen.qtest "add then remove is identity" Tgen.relation_gen
    Tgen.print_relation (fun r ->
      let t =
        Tuple.of_list
          (List.map (fun _ -> v 99) (Schema.attrs (Relation.schema r)))
      in
      Relation.equal r (Relation.remove t (Relation.add t r)))

(* ------------------------------------------------------------------ *)
(* Join *)

let test_join_figure1 () =
  (* The full example of the paper's Figure 1: the natural join of the
     four relations is the single tuple (a1,b1,c1,d1,e1,f1). *)
  let r2 =
    Relation.of_rows ~schema:(schema [ "A"; "B"; "D" ])
      [ [ s "a1"; s "b1"; s "d1" ]; [ s "a2"; s "b2"; s "d2" ] ]
  in
  let r3 =
    Relation.of_rows ~schema:(schema [ "A"; "E" ])
      [ [ s "a1"; s "e1" ]; [ s "a2"; s "e1" ]; [ s "a2"; s "e2" ] ]
  in
  let r4 =
    Relation.of_rows ~schema:(schema [ "B"; "F" ])
      [ [ s "b1"; s "f1" ]; [ s "b2"; s "f1" ]; [ s "b2"; s "f2" ] ]
  in
  let out = Join.join_all [ r1_fig1; r2; r3; r4 ] in
  Alcotest.(check int) "single output tuple" 1 (Relation.cardinality out);
  let reordered =
    Relation.reorder (schema [ "A"; "B"; "C"; "D"; "E"; "F" ]) out
  in
  let expected =
    Tuple.of_list [ s "a1"; s "b1"; s "c1"; s "d1"; s "e1"; s "f1" ]
  in
  Alcotest.(check int) "expected tuple present" 1
    (Relation.count_of expected reordered)

let test_join_counts_multiply () =
  let a =
    Relation.create ~schema:(schema [ "A"; "B" ]) [ (tup [ v 1; v 2 ], 3) ]
  in
  let b =
    Relation.create ~schema:(schema [ "B"; "C" ]) [ (tup [ v 2; v 5 ], 4) ]
  in
  let out = Join.natural_join a b in
  Alcotest.(check int) "3*4" 12 (Relation.count_of (tup [ v 1; v 2; v 5 ]) out)

let test_join_cross_product () =
  let a = Relation.of_rows ~schema:(schema [ "A" ]) [ [ v 1 ]; [ v 2 ] ] in
  let b = Relation.of_rows ~schema:(schema [ "B" ]) [ [ v 3 ]; [ v 4 ] ] in
  Alcotest.(check int) "2x2 cross" 4
    (Relation.cardinality (Join.natural_join a b))

let test_semijoin () =
  let a =
    Relation.of_rows ~schema:(schema [ "A"; "B" ])
      [ [ v 1; v 1 ]; [ v 2; v 2 ] ]
  in
  let b = Relation.of_rows ~schema:(schema [ "B" ]) [ [ v 1 ] ] in
  let out = Join.semijoin a b in
  Alcotest.(check int) "only matching row" 1 (Relation.distinct_count out);
  Alcotest.(check int) "row preserved" 1
    (Relation.count_of (tup [ v 1; v 1 ]) out)

let prop_join_project_consistent =
  Tgen.qtest "join_project = project o natural_join" Tgen.joinable_pair_gen
    Tgen.print_relation_pair (fun (a, b) ->
      let group = Schema.inter (Relation.schema a) (Relation.schema b) in
      let fused = Join.join_project ~group a b in
      let naive = Relation.project group (Join.natural_join a b) in
      Relation.equal fused naive)

let prop_count_join_consistent =
  Tgen.qtest "count_join = |natural_join|" Tgen.joinable_pair_gen
    Tgen.print_relation_pair (fun (a, b) ->
      Join.count_join a b = Relation.cardinality (Join.natural_join a b))

let prop_join_commutes_on_counts =
  Tgen.qtest "join cardinality commutes" Tgen.joinable_pair_gen
    Tgen.print_relation_pair (fun (a, b) ->
      Relation.cardinality (Join.natural_join a b)
      = Relation.cardinality (Join.natural_join b a))

let prop_join_project_all_consistent =
  Tgen.qtest "join_project_all = project o join_all"
    QCheck2.Gen.(
      pair Tgen.joinable_pair_gen Tgen.relation_gen >>= fun ((a, b), c) ->
      return [ a; b; c ])
    (fun rels -> String.concat "\n---\n" (List.map Tgen.print_relation rels))
    (fun rels ->
      let group =
        Schema.inter
          (Relation.schema (List.nth rels 0))
          (Relation.schema (List.nth rels 1))
      in
      let fused = Join.join_project_all ~group rels in
      let naive = Relation.project group (Join.join_all rels) in
      Relation.equal fused naive)

let prop_merge_join_equals_hash_join =
  Tgen.qtest "merge join = hash join" Tgen.joinable_pair_gen
    Tgen.print_relation_pair (fun (a, b) ->
      Relation.equal (Join.merge_join a b) (Join.natural_join a b))

let prop_merge_join_cross_product =
  Tgen.qtest "merge join handles cross products" Tgen.relation_gen
    Tgen.print_relation (fun r ->
      (* Join against a disjoint-schema relation: both implementations
         degrade to the counted cross product. *)
      let other =
        Relation.create
          ~schema:(Schema.of_list [ "Z1"; "Z2" ])
          [
            (Tuple.of_list [ v 1; v 2 ], 2);
            (Tuple.of_list [ v 3; v 4 ], 1);
          ]
      in
      Relation.equal (Join.merge_join r other) (Join.natural_join r other))

let prop_semijoin_no_growth =
  Tgen.qtest "semijoin never grows" Tgen.joinable_pair_gen
    Tgen.print_relation_pair (fun (a, b) ->
      Relation.cardinality (Join.semijoin a b) <= Relation.cardinality a)

(* ------------------------------------------------------------------ *)
(* Index *)

let test_index_groups () =
  let idx = Index.build ~key:(schema [ "A" ]) r1_fig1 in
  Alcotest.(check int) "a1 group" 2 (Index.group_count idx (tup [ s "a1" ]));
  Alcotest.(check int) "a2 group" 1 (Index.group_count idx (tup [ s "a2" ]));
  Alcotest.(check int) "absent group" 0 (Index.group_count idx (tup [ s "zz" ]));
  Alcotest.(check int) "max group" 2 (Index.max_group_count idx);
  Alcotest.(check int) "a1 rows" 2
    (Array.length (Index.lookup idx (tup [ s "a1" ])))

let test_index_empty_key () =
  let idx = Index.build ~key:Schema.empty r1_fig1 in
  Alcotest.(check int) "everything in one group" 3
    (Index.group_count idx (tup []))

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_basics () =
  let h = Heap.of_list ~cmp:Int.compare [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  Alcotest.(check int) "size" 8 (Heap.size h);
  let rec drain h acc =
    match Heap.pop h with
    | None -> List.rev acc
    | Some (x, h) -> drain h (x :: acc)
  in
  Alcotest.(check (list int))
    "pops descending"
    [ 9; 6; 5; 4; 3; 2; 1; 1 ]
    (drain h []);
  Alcotest.(check bool) "empty" true (Heap.is_empty (Heap.empty ~cmp:Int.compare));
  Alcotest.(check bool) "pop empty" true
    (Heap.pop (Heap.empty ~cmp:Int.compare) = None)

let prop_heap_sorts =
  Tgen.qtest "heap drains in sorted order"
    QCheck2.Gen.(list_size (int_range 0 50) (int_range (-100) 100))
    (fun l -> String.concat "," (List.map string_of_int l))
    (fun l ->
      let rec drain h acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (x, h) -> drain h (x :: acc)
      in
      drain (Heap.of_list ~cmp:Int.compare l) []
      = List.sort (fun a b -> Int.compare b a) l)

(* ------------------------------------------------------------------ *)
(* Database *)

let test_database_basics () =
  let db = Database.of_list [ ("R1", r1_fig1) ] in
  Alcotest.(check (list string)) "names" [ "R1" ] (Database.names db);
  Alcotest.(check int) "total" 3 (Database.total_tuples db);
  Alcotest.(check bool) "mem" true (Database.mem "R1" db);
  let db = Database.update ~name:"R1" (Relation.scale 2) db in
  Alcotest.(check int) "updated" 6 (Database.total_tuples db);
  Alcotest.check_raises "unknown relation"
    (Errors.Data_error "unknown relation R9") (fun () ->
      ignore (Database.find "R9" db))

(* ------------------------------------------------------------------ *)
(* CSV *)

let prop_csv_round_trip =
  Tgen.qtest ~count:50 "csv round trip" Tgen.relation_gen Tgen.print_relation
    (fun r ->
      let path = Filename.temp_file "tsens" ".csv" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Csv.write_file path r;
          Relation.equal r (Csv.read_file path)))

let test_csv_schema_checks () =
  let path = Filename.temp_file "tsens" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.write_file path r1_fig1;
      (* Matching expected schema is accepted; a different one refused. *)
      let reread = Csv.read_file ~schema:(schema [ "A"; "B"; "C" ]) path in
      Alcotest.(check bool) "schema accepted" true
        (Relation.equal r1_fig1 reread);
      Alcotest.(check bool) "schema mismatch rejected" true
        (match Csv.read_file ~schema:(schema [ "X"; "Y"; "Z" ]) path with
        | exception Errors.Data_error _ -> true
        | _ -> false);
      (* Missing cnt column in the header. *)
      let oc = open_out path in
      output_string oc "A,B\n1,2\n";
      close_out oc;
      Alcotest.(check bool) "missing cnt column" true
        (match Csv.read_file path with
        | exception Errors.Data_error _ -> true
        | _ -> false))

let test_csv_rejects_garbage () =
  let path = Filename.temp_file "tsens" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "A,cnt\n1,notanumber\n";
      close_out oc;
      Alcotest.check_raises "invalid count"
        (Errors.Data_error
           "CSV row \"1,notanumber\" has invalid count \"notanumber\"")
        (fun () -> ignore (Csv.read_file path)))

let with_temp_csv f =
  let path = Filename.temp_file "tsens" ".csv" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let write_text path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

(* Input must preserve fields exactly as written in the file: only the
   line terminator (optionally '\r\n') is stripped, never field
   whitespace. The seed code trimmed the whole line, so " x" came back
   as "x". *)
let test_csv_input_preserves_edge_whitespace () =
  with_temp_csv (fun path ->
      write_text path "A,B,cnt\n x,y ,1\nu,\tv,2\n";
      let r = Csv.read_file path in
      Alcotest.check Tgen.relation_testable "fields kept verbatim"
        (Relation.create
           ~schema:(schema [ "A"; "B" ])
           [
             (tup [ s " x"; s "y " ], 1);
             (tup [ s "u"; s "\tv" ], 2);
           ])
        r)

let test_csv_input_strips_crlf () =
  with_temp_csv (fun path ->
      write_text path "A,cnt\r\n7,2\r\n";
      Alcotest.check Tgen.relation_testable "windows line endings"
        (Relation.create ~schema:(schema [ "A" ]) [ (tup [ v 7 ], 2) ])
        (Csv.read_file path))

(* Output refuses anything input could not hand back unchanged. *)
let test_csv_output_rejects_edge_whitespace () =
  with_temp_csv (fun path ->
      let r =
        Relation.create ~schema:(schema [ "A" ]) [ (tup [ s " x" ], 1) ]
      in
      Alcotest.(check bool) "whitespace field rejected" true
        (match Csv.write_file path r with
        | exception Errors.Data_error _ -> true
        | () -> false))

let test_csv_output_rejects_empty_header () =
  with_temp_csv (fun path ->
      let r = Relation.create ~schema:(schema [ "" ]) [ (tup [ v 1 ], 1) ] in
      Alcotest.(check bool) "empty attribute name rejected" true
        (match Csv.write_file path r with
        | exception Errors.Data_error _ -> true
        | () -> false))

(* A saturated count is only a lower bound; the seed wrote it as
   string_of_int max_int and a re-import silently believed it. *)
let test_csv_output_rejects_saturated_count () =
  with_temp_csv (fun path ->
      let r =
        Relation.create
          ~schema:(schema [ "A" ])
          [ (tup [ v 1 ], Count.max_count) ]
      in
      Alcotest.(check bool) "saturated count rejected" true
        (match Csv.write_file path r with
        | exception Errors.Data_error _ -> true
        | () -> false))

(* Zero counts are refused by both entrances: the reader's own check and
   Relation.check_row behind Relation.create. *)
let test_csv_zero_count_rejected () =
  with_temp_csv (fun path ->
      write_text path "A,cnt\n1,0\n";
      Alcotest.check_raises "reader rejects zero"
        (Errors.Data_error "CSV row \"1,0\" has invalid count \"0\"")
        (fun () -> ignore (Csv.read_file path)));
  Alcotest.(check bool) "check_row rejects zero" true
    (match Relation.create ~schema:(schema [ "A" ]) [ (tup [ v 1 ], 0) ] with
    | exception Errors.Data_error _ -> true
    | _ -> false)

(* The hardened round-trip property: for relations over tricky string
   values, export either succeeds and reads back identical, or raises
   Data_error — it never silently corrupts. *)
let tricky_relation_gen =
  QCheck2.Gen.(
    let tricky_value =
      oneof
        [
          map Value.int (int_range 0 4);
          map Value.str
            (oneofl [ " x"; "x"; "x "; "a b"; "\tq"; "r\t"; "" ]);
        ]
    in
    list_size (int_range 1 8)
      (pair (map Tuple.of_list (list_repeat 2 tricky_value)) (int_range 1 3))
    >>= fun rows ->
    return (Relation.create ~schema:(schema [ "A"; "B" ]) rows))

let prop_csv_round_trip_or_rejects =
  Tgen.qtest ~count:200 "csv round trips or rejects loudly"
    tricky_relation_gen Tgen.print_relation (fun r ->
      let path = Filename.temp_file "tsens" ".csv" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          match Csv.write_file path r with
          | exception Errors.Data_error _ -> true
          | () -> Relation.equal r (Csv.read_file path)))

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let seq_a = List.init 16 (fun _ -> Prng.int a 1000) in
  let seq_b = List.init 16 (fun _ -> Prng.int b 1000) in
  Alcotest.(check (list int)) "same seed same stream" seq_a seq_b;
  let c = Prng.create 43 in
  let seq_c = List.init 16 (fun _ -> Prng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (seq_a <> seq_c)

let test_prng_bounds () =
  let t = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.int t 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10);
    let y = Prng.int_in t 5 9 in
    Alcotest.(check bool) "int_in range" true (y >= 5 && y <= 9);
    let u = Prng.uniform t in
    Alcotest.(check bool) "uniform open interval" true (u > 0.0 && u < 1.0)
  done

let test_prng_shuffle_is_permutation () =
  let t = Prng.create 11 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_prng_split_independent () =
  let parent = Prng.create 1 in
  let child = Prng.split parent in
  let a = List.init 8 (fun _ -> Prng.int parent 100) in
  let b = List.init 8 (fun _ -> Prng.int child 100) in
  Alcotest.(check bool) "streams differ" true (a <> b)

let () =
  Alcotest.run "relational"
    [
      ( "count",
        [
          Alcotest.test_case "saturating add" `Quick test_count_saturating_add;
          Alcotest.test_case "saturating mul" `Quick test_count_saturating_mul;
          Alcotest.test_case "pow" `Quick test_count_pow;
          Alcotest.test_case "of_int" `Quick test_count_of_int;
          Alcotest.test_case "saturation boundary" `Quick test_count_boundary;
        ] );
      ( "value",
        [
          Alcotest.test_case "ordering" `Quick test_value_order;
          Alcotest.test_case "string round trip" `Quick test_value_round_trip;
          Alcotest.test_case "accessors" `Quick test_value_accessors;
        ] );
      ( "schema",
        [
          Alcotest.test_case "duplicates rejected" `Quick test_schema_duplicate;
          Alcotest.test_case "set operations" `Quick test_schema_set_ops;
          Alcotest.test_case "positions" `Quick test_schema_positions;
          Alcotest.test_case "rename" `Quick test_schema_rename;
          Alcotest.test_case "set equality" `Quick test_schema_equal_as_sets;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "compare" `Quick test_tuple_compare;
          Alcotest.test_case "project" `Quick test_tuple_project;
        ] );
      ( "relation",
        [
          Alcotest.test_case "normalization" `Quick test_relation_normalizes;
          Alcotest.test_case "validation" `Quick test_relation_create_validation;
          Alcotest.test_case "project sums counts" `Quick
            test_relation_project_sums;
          Alcotest.test_case "filter" `Quick test_relation_filter;
          Alcotest.test_case "add/remove" `Quick test_relation_add_remove;
          Alcotest.test_case "remove clamps" `Quick test_relation_remove_clamp;
          Alcotest.test_case "max_row" `Quick test_relation_max_row;
          Alcotest.test_case "max_frequency" `Quick test_relation_max_frequency;
          Alcotest.test_case "active_domain" `Quick test_relation_active_domain;
          Alcotest.test_case "reorder" `Quick test_relation_reorder;
          Alcotest.test_case "scale" `Quick test_relation_scale;
          prop_project_preserves_cardinality;
          prop_mem_matches_count;
          prop_add_remove_round_trip;
        ] );
      ( "join",
        [
          Alcotest.test_case "paper figure 1" `Quick test_join_figure1;
          Alcotest.test_case "counts multiply" `Quick test_join_counts_multiply;
          Alcotest.test_case "cross product" `Quick test_join_cross_product;
          Alcotest.test_case "semijoin" `Quick test_semijoin;
          prop_join_project_consistent;
          prop_count_join_consistent;
          prop_join_commutes_on_counts;
          prop_join_project_all_consistent;
          prop_merge_join_equals_hash_join;
          prop_merge_join_cross_product;
          prop_semijoin_no_growth;
        ] );
      ( "index",
        [
          Alcotest.test_case "groups" `Quick test_index_groups;
          Alcotest.test_case "empty key" `Quick test_index_empty_key;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basics" `Quick test_heap_basics;
          prop_heap_sorts;
        ] );
      ("database", [ Alcotest.test_case "basics" `Quick test_database_basics ]);
      ( "csv",
        [
          prop_csv_round_trip;
          Alcotest.test_case "schema checks" `Quick test_csv_schema_checks;
          Alcotest.test_case "rejects garbage" `Quick test_csv_rejects_garbage;
          Alcotest.test_case "input preserves edge whitespace" `Quick
            test_csv_input_preserves_edge_whitespace;
          Alcotest.test_case "input strips CRLF" `Quick
            test_csv_input_strips_crlf;
          Alcotest.test_case "output rejects edge whitespace" `Quick
            test_csv_output_rejects_edge_whitespace;
          Alcotest.test_case "output rejects empty header" `Quick
            test_csv_output_rejects_empty_header;
          Alcotest.test_case "output rejects saturated count" `Quick
            test_csv_output_rejects_saturated_count;
          Alcotest.test_case "zero count rejected" `Quick
            test_csv_zero_count_rejected;
          prop_csv_round_trip_or_rejects;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "shuffle permutes" `Quick
            test_prng_shuffle_is_permutation;
          Alcotest.test_case "split independence" `Quick
            test_prng_split_independent;
        ] );
    ]
