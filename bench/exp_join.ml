(* Row vs columnar join-kernel benchmark.

   Times the three binary kernels (count_join, natural_join,
   join_project) over a synthetic two-relation join at 10k and 100k rows
   per side, once per storage engine, checks the engines return
   bit-identical results, and writes BENCH_join.json. Rows/sec is
   (|R| + |S|) / seconds — the input volume a kernel consumes, which is
   comparable across kernels that materialize different amounts of
   output. host_cores is recorded because above the parallel cutoff both
   engines partition onto the pool, so absolute numbers depend on the
   machine.

   The data is a bowtie join: R(A,B) with A unique and B = i mod (n/2),
   S(B,C) with C unique and the same B distribution — every key matches,
   average fanout 2 per side, output about 2n rows. This keeps the probe
   loop (not allocation of a huge result) the measured cost. *)

open Tsens_relational

let sizes = [ 10_000; 100_000 ]

let best_seconds ~repeats f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let _, s = Bench_util.time f in
    if s < !best then best := s
  done;
  !best

let synth n =
  let keys = max 1 (n / 2) in
  let r =
    Relation.create
      ~schema:(Schema.of_attrs [ "A"; "B" ])
      (List.init n (fun i ->
           (Tuple.of_list [ Value.Int i; Value.Int (i mod keys) ], 1)))
  in
  let s =
    Relation.create
      ~schema:(Schema.of_attrs [ "B"; "C" ])
      (List.init n (fun j ->
           (Tuple.of_list [ Value.Int (j mod keys); Value.Int j ], 1)))
  in
  (r, s)

type measurement = {
  kernel : string;
  nrows : int; (* per side *)
  row_seconds : float;
  col_seconds : float;
  identical : bool;
}

let rows_per_sec n s = if s > 0.0 then float_of_int (2 * n) /. s else 0.0
let speedup m = if m.col_seconds > 0.0 then m.row_seconds /. m.col_seconds else 1.0

let measure ~repeats ~equal kernel nrows f =
  let timed mode = Storage.with_mode mode (fun () -> best_seconds ~repeats f) in
  let row_seconds = timed Storage.Row in
  let col_seconds = timed Storage.Columnar in
  let identical =
    equal
      (Storage.with_mode Storage.Row f)
      (Storage.with_mode Storage.Columnar f)
  in
  { kernel; nrows; row_seconds; col_seconds; identical }

let json_of_measurement m =
  Printf.sprintf
    "{\"kernel\":%S,\"rows_per_side\":%d,\"row_seconds\":%.9f,\
     \"columnar_seconds\":%.9f,\"row_rows_per_sec\":%.1f,\
     \"columnar_rows_per_sec\":%.1f,\"columnar_speedup\":%.3f,\
     \"identical\":%b}"
    m.kernel m.nrows m.row_seconds m.col_seconds
    (rows_per_sec m.nrows m.row_seconds)
    (rows_per_sec m.nrows m.col_seconds)
    (speedup m) m.identical

let run ~repeats ~out =
  Bench_util.print_heading "join: row vs columnar storage";
  let group = Schema.of_attrs [ "A" ] in
  let measurements =
    List.concat_map
      (fun n ->
        let a, b = synth n in
        [
          measure ~repeats ~equal:Count.equal "count_join" n (fun () ->
              Join.count_join a b);
          measure ~repeats ~equal:Relation.equal "natural_join" n (fun () ->
              Join.natural_join a b);
          measure ~repeats ~equal:Relation.equal "join_project" n (fun () ->
              Join.join_project ~group a b);
        ])
      sizes
  in
  Bench_util.print_table
    ~columns:[ "kernel"; "rows/side"; "row"; "columnar"; "speedup"; "identical" ]
    (List.map
       (fun m ->
         [
           m.kernel;
           string_of_int m.nrows;
           Bench_util.seconds_to_string m.row_seconds;
           Bench_util.seconds_to_string m.col_seconds;
           Printf.sprintf "%.2fx" (speedup m);
           string_of_bool m.identical;
         ])
       measurements);
  let json =
    Printf.sprintf "{\"host_cores\":%d,\"measurements\":[%s]}"
      (Domain.recommended_domain_count ())
      (String.concat "," (List.map json_of_measurement measurements))
  in
  Out_channel.with_open_text out (fun oc ->
      output_string oc json;
      output_char oc '\n');
  Printf.printf "wrote %s\n%!" out;
  if not (List.for_all (fun m -> m.identical) measurements) then
    failwith "join bench: row and columnar results differ"
