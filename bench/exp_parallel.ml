(* Jobs-sweep micro benchmark for the parallel execution layer.

   Runs the two hottest pipelines — join_project_all over the q1 TPC-H
   relations and a full TSens analysis — at jobs ∈ {1, 2, 4}, checks
   each job count returns results bit-identical to jobs=1, and writes
   BENCH_parallel.json with the wall-clock numbers. The JSON records
   host_cores because speedup is bounded by the physical core count:
   on a single-core host every job count measures the same work plus
   pool overhead. *)

open Tsens_relational
open Tsens_query
open Tsens_sensitivity
open Tsens_workload

let job_counts = [ 1; 2; 4 ]

(* Best-of-N wall clock: parallel benches are noisy and we want the
   steady-state cost, not scheduler warm-up. *)
let best_seconds ~repeats f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let _, s = Bench_util.time f in
    if s < !best then best := s
  done;
  !best

type sweep = {
  bench_name : string;
  times : (int * float) list; (* jobs, best seconds *)
  identical : bool; (* every job count matched jobs=1 *)
}

let sweep ~repeats ~equal name f =
  let reference = Exec.with_jobs 1 f in
  let times =
    List.map
      (fun j -> (j, Exec.with_jobs j (fun () -> best_seconds ~repeats f)))
      job_counts
  in
  let identical =
    List.for_all (fun j -> equal reference (Exec.with_jobs j f)) job_counts
  in
  { bench_name = name; times; identical }

let equal_result (a : Sens_types.result) (b : Sens_types.result) =
  Count.equal a.local_sensitivity b.local_sensitivity
  && List.equal
       (fun (r1, c1) (r2, c2) -> String.equal r1 r2 && Count.equal c1 c2)
       a.per_relation b.per_relation

let json_of_sweep { bench_name; times; identical } =
  let t1 = List.assoc 1 times in
  let entries =
    List.map
      (fun (j, s) ->
        Printf.sprintf
          "{\"jobs\":%d,\"seconds\":%.9f,\"speedup_vs_jobs1\":%.3f}" j s
          (if s > 0.0 then t1 /. s else 1.0))
      times
  in
  Printf.sprintf
    "{\"name\":%S,\"identical_to_jobs1\":%b,\"runs\":[%s]}" bench_name
    identical
    (String.concat "," entries)

let run ~seed ~scale ~repeats ~out =
  Bench_util.print_heading "parallel: jobs sweep";
  let db = Tpch.generate ~seed ~scale () in
  let q1_instance =
    List.map (fun (_, r) -> r) (Cq.instance Queries.q1 db)
  in
  let group =
    Schema.inter
      (Cq.schema_of Queries.q1 "Customer")
      (Cq.schema_of Queries.q1 "Orders")
  in
  let sweeps =
    [
      sweep ~repeats ~equal:Relation.equal "join_project_all/q1"
        (fun () -> Join.join_project_all ~group q1_instance);
      sweep ~repeats ~equal:equal_result "tsens/q1"
        (fun () ->
          Tsens.local_sensitivity ~plans:Queries.tpch_plans Queries.q1 db);
    ]
  in
  Bench_util.print_table
    ~columns:[ "bench"; "jobs"; "seconds"; "speedup"; "identical" ]
    (List.concat_map
       (fun s ->
         let t1 = List.assoc 1 s.times in
         List.map
           (fun (j, sec) ->
             [
               s.bench_name;
               string_of_int j;
               Bench_util.seconds_to_string sec;
               Printf.sprintf "%.2fx" (if sec > 0.0 then t1 /. sec else 1.0);
               string_of_bool s.identical;
             ])
           s.times)
       sweeps);
  let json =
    Printf.sprintf "{\"host_cores\":%d,\"scale\":%f,\"benchmarks\":[%s]}"
      (Domain.recommended_domain_count ())
      scale
      (String.concat "," (List.map json_of_sweep sweeps))
  in
  Out_channel.with_open_text out (fun oc ->
      output_string oc json;
      output_char oc '\n');
  Printf.printf "wrote %s\n%!" out;
  if not (List.for_all (fun s -> s.identical) sweeps) then
    failwith "parallel bench: results differ across job counts"
