(* Cold/warm sweep of the versioned memoization layer.

   Each pipeline runs three ways on an unchanged database: cache off
   (the baseline every other bench measures), cache on with empty
   stores (cold — pays the baseline cost plus keying), and cache on
   again (warm — every store hit). Results must be bit-identical in all
   three modes; warm runs must actually hit (the store counters are
   written to BENCH_cache.json as proof that the DP tables and indexes
   were not rebuilt). *)

open Tsens_relational
open Tsens_sensitivity
open Tsens_dp
open Tsens_workload

let best_seconds ~repeats f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let _, s = Bench_util.time f in
    if s < !best then best := s
  done;
  !best

type run = {
  pipeline : string;
  uncached_s : float;
  cold_s : float;
  warm_s : float;
  identical : bool; (* cold and warm results equal the uncached one *)
}

(* Warm timing keeps the stores filled by the cold run: the same
   (query, versions) keys recur, so every iteration is served from the
   stores. [equal] compares against the uncached reference. Returns the
   store counters as they stood right after the warm runs — each
   pipeline starts from freshly reset stores, so the snapshot is
   exactly this pipeline's hit/miss profile. *)
let measure ~repeats ~equal pipeline f =
  Cache.set_enabled false;
  let reference = f () in
  let uncached_s = best_seconds ~repeats f in
  Cache.set_enabled true;
  Cache.reset ();
  let cold_result, cold_s = Bench_util.time f in
  let warm_s = best_seconds ~repeats f in
  let warm_result = f () in
  ( {
      pipeline;
      uncached_s;
      cold_s;
      warm_s;
      identical = equal reference cold_result && equal reference warm_result;
    },
    Cache.stats () )

(* Per-pipeline snapshots merged by store: counters add up, the
   point-in-time gauges (entries, bytes) keep their maximum. *)
let merge_stats snapshots =
  let table = Hashtbl.create 8 in
  List.iter
    (List.iter (fun (s : Cache.stats) ->
         match Hashtbl.find_opt table s.Cache.store with
         | None -> Hashtbl.replace table s.Cache.store s
         | Some prev ->
             Hashtbl.replace table s.Cache.store
               {
                 s with
                 Cache.hits = prev.Cache.hits + s.Cache.hits;
                 misses = prev.Cache.misses + s.Cache.misses;
                 evictions = prev.Cache.evictions + s.Cache.evictions;
                 entries = max prev.Cache.entries s.Cache.entries;
                 approx_bytes = max prev.Cache.approx_bytes s.Cache.approx_bytes;
               }))
    snapshots;
  Hashtbl.fold (fun _ s acc -> s :: acc) table []
  |> List.sort (fun (a : Cache.stats) b ->
         String.compare a.Cache.store b.Cache.store)

let equal_result (a : Sens_types.result) (b : Sens_types.result) =
  Count.equal a.local_sensitivity b.local_sensitivity
  && List.equal
       (fun (r1, c1) (r2, c2) -> String.equal r1 r2 && Count.equal c1 c2)
       a.per_relation b.per_relation

let json_of_run r =
  Printf.sprintf
    "{\"name\":%S,\"uncached_s\":%.9f,\"cold_s\":%.9f,\"warm_s\":%.9f,\"speedup_warm\":%.3f,\"identical\":%b}"
    r.pipeline r.uncached_s r.cold_s r.warm_s
    (if r.warm_s > 0.0 then r.uncached_s /. r.warm_s else 1.0)
    r.identical

let json_of_store (s : Cache.stats) =
  Printf.sprintf
    "{\"name\":%S,\"hits\":%d,\"misses\":%d,\"evictions\":%d,\"entries\":%d,\"approx_bytes\":%d}"
    s.Cache.store s.Cache.hits s.Cache.misses s.Cache.evictions s.Cache.entries
    s.Cache.approx_bytes

let run ~seed ~scale ~repeats ~out =
  Bench_util.print_heading "cache: cold/warm sweep";
  let was_enabled = Cache.enabled () in
  let db = Tpch.generate ~seed ~scale () in
  let plans = Queries.tpch_plans in
  (* Sequential lets, not a list literal: each measure resets the
     stores, so the order must be the program order (OCaml evaluates
     list elements right to left). *)
  let tsens_run =
    measure ~repeats ~equal:equal_result "tsens/q1" (fun () ->
        Tsens.local_sensitivity ~plans Queries.q1 db)
  in
  let elastic_run =
    measure ~repeats ~equal:equal_result "elastic/q1" (fun () ->
        Elastic.local_sensitivity ~plans Queries.q1 db)
  in
  let truncation_run =
    measure ~repeats ~equal:(List.equal Count.equal) "truncation/q1"
      (fun () ->
        let analysis = Tsens.analyze ~plans Queries.q1 db in
        let profile = Truncation.profile analysis "Customer" in
        List.map (Truncation.truncated_answer profile) [ 1; 4; 16; 64 ])
  in
  let count_run =
    measure ~repeats ~equal:Count.equal "count/q1" (fun () ->
        Yannakakis.count ~plans Queries.q1 db)
  in
  let measured = [ tsens_run; elastic_run; truncation_run; count_run ] in
  let runs = List.map fst measured in
  let stores = merge_stats (List.map snd measured) in
  Cache.set_enabled was_enabled;
  Bench_util.print_table
    ~columns:[ "pipeline"; "uncached"; "cold"; "warm"; "speedup"; "identical" ]
    (List.map
       (fun r ->
         [
           r.pipeline;
           Bench_util.seconds_to_string r.uncached_s;
           Bench_util.seconds_to_string r.cold_s;
           Bench_util.seconds_to_string r.warm_s;
           Printf.sprintf "%.2fx"
             (if r.warm_s > 0.0 then r.uncached_s /. r.warm_s else 1.0);
           string_of_bool r.identical;
         ])
       runs);
  Bench_util.print_table
    ~columns:[ "store"; "hits"; "misses"; "evictions"; "entries"; "bytes" ]
    (List.map
       (fun (s : Cache.stats) ->
         [
           s.Cache.store;
           string_of_int s.Cache.hits;
           string_of_int s.Cache.misses;
           string_of_int s.Cache.evictions;
           string_of_int s.Cache.entries;
           string_of_int s.Cache.approx_bytes;
         ])
       stores);
  let json =
    Printf.sprintf
      "{\"host_cores\":%d,\"scale\":%f,\"pipelines\":[%s],\"stores\":[%s]}"
      (Domain.recommended_domain_count ())
      scale
      (String.concat "," (List.map json_of_run runs))
      (String.concat "," (List.map json_of_store stores))
  in
  Out_channel.with_open_text out (fun oc ->
      output_string oc json;
      output_char oc '\n');
  Printf.printf "wrote %s\n%!" out;
  if not (List.for_all (fun r -> r.identical) runs) then
    failwith "cache bench: cached results differ from uncached";
  let total_hits =
    List.fold_left (fun acc (s : Cache.stats) -> acc + s.Cache.hits) 0 stores
  in
  if total_hits = 0 then
    failwith "cache bench: warm runs never hit the stores"
