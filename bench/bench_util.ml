(* Shared plumbing for the experiment harnesses: timing, table printing,
   scale parsing. *)

let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let seconds_to_string s =
  if s < 0.001 then Printf.sprintf "%.1fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.1fms" (s *. 1e3)
  else Printf.sprintf "%.2fs" s

(* Counts can be astronomically large (elastic bounds); scientific
   notation above a million keeps columns narrow. *)
let count_to_string c =
  if Tsens_relational.Count.is_saturated c then "overflow"
  else if c < 1_000_000 then string_of_int c
  else Printf.sprintf "%.2e" (float_of_int c)

let print_heading title =
  Printf.printf "\n=== %s ===\n%!" title

let print_table ~columns rows =
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length col) rows)
      columns
  in
  let print_row cells =
    List.iteri
      (fun i cell -> Printf.printf "%-*s  " (List.nth widths i) cell)
      cells;
    print_newline ()
  in
  print_row columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows;
  flush stdout

(* Machine-readable bench trajectory: pair the per-kernel time estimates
   with an operator-level [Obs] report of one instrumented pass, so
   successive PRs can diff both wall-clock and row/probe counts. *)
let write_obs_json ~path ~benchmarks report =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"benchmarks\":[";
  List.iteri
    (fun i (name, seconds) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":%S,\"seconds_per_run\":%.9f}" name seconds))
    benchmarks;
  Buffer.add_string buf "],\"obs\":";
  Buffer.add_string buf (Obs.Report.to_json report);
  Buffer.add_char buf '}';
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Buffer.contents buf);
      output_char oc '\n');
  Printf.printf "wrote %s\n%!" path

let parse_scales s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun x -> x <> "")
  |> List.map (fun x ->
         match float_of_string_opt x with
         | Some f when f > 0.0 -> f
         | Some _ | None ->
             raise (Arg.Bad (Printf.sprintf "invalid scale %S" x)))

let default_scales = [ 0.0001; 0.0005; 0.001; 0.005; 0.01 ]

let pp_percent x = Printf.sprintf "%.2f%%" (100.0 *. x)
