(* Benchmark harness entry point: one sub-command per paper table/figure
   (see DESIGN.md's experiment index), plus `micro` (bechamel kernels)
   and `all` (the default: every experiment at the default sizes).

   Default scales are reduced relative to the paper (which ran TPC-H up
   to scale 10 on a dedicated machine); pass --scales / --scale to push
   further. *)

open Cmdliner
open Tsens_workload

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let scales_arg =
  let parse s =
    match Bench_util.parse_scales s with
    | scales -> Ok scales
    | exception Stdlib.Arg.Bad m -> Error (`Msg m)
  in
  let print ppf scales =
    Format.pp_print_string ppf
      (String.concat "," (List.map string_of_float scales))
  in
  Arg.(
    value
    & opt (conv (parse, print)) Bench_util.default_scales
    & info [ "scales" ] ~docv:"S1,S2,..."
        ~doc:"Comma-separated TPC-H scale factors.")

let scale_arg default =
  Arg.(
    value & opt float default
    & info [ "scale" ] ~docv:"SCALE" ~doc:"TPC-H scale factor.")

let runs_arg =
  Arg.(
    value & opt int 20
    & info [ "runs" ] ~docv:"N" ~doc:"Trials per DP configuration.")

let epsilon_arg =
  Arg.(
    value & opt float 1.0
    & info [ "epsilon" ] ~docv:"EPS" ~doc:"Total privacy budget per query.")

let fb_params_arg =
  let make nodes edges circles =
    { Facebook.default_params with Facebook.nodes; edges; circles }
  in
  Term.(
    const make
    $ Arg.(
        value
        & opt int Facebook.default_params.Facebook.nodes
        & info [ "fb-nodes" ] ~doc:"Ego-network nodes.")
    $ Arg.(
        value
        & opt int Facebook.default_params.Facebook.edges
        & info [ "fb-edges" ] ~doc:"Ego-network undirected edges.")
    $ Arg.(
        value
        & opt int Facebook.default_params.Facebook.circles
        & info [ "fb-circles" ] ~doc:"Ego-network circles."))

let cmd name doc term = Cmd.v (Cmd.info name ~doc) term

let fig6a_cmd =
  cmd "fig6a" "Figure 6a: local sensitivity vs scale (TSens vs Elastic)."
    Term.(
      const (fun seed scales ->
          Exp_tpch_sweep.print_fig6a (Exp_tpch_sweep.run ~seed ~scales))
      $ seed_arg $ scales_arg)

let fig6b_cmd =
  cmd "fig6b" "Figure 6b: most sensitive tuples per relation of q3."
    Term.(
      const (fun seed scale -> Exp_fig6b.run ~seed ~scale)
      $ seed_arg $ scale_arg 0.01)

let fig7_cmd =
  cmd "fig7" "Figure 7: runtime vs scale (TSens, Elastic, evaluation)."
    Term.(
      const (fun seed scales ->
          Exp_tpch_sweep.print_fig7 (Exp_tpch_sweep.run ~seed ~scales))
      $ seed_arg $ scales_arg)

let table1_cmd =
  cmd "table1" "Table 1: Facebook queries, sensitivity and runtime."
    Term.(
      const (fun seed params ->
          Exp_table1.run ~params:{ params with Facebook.seed })
      $ seed_arg $ fb_params_arg)

let table2_cmd =
  cmd "table2" "Table 2: TSensDP vs PrivSQL on all seven queries."
    Term.(
      const (fun seed scale runs epsilon fb_params ->
          Exp_table2.run ~seed ~scale ~runs ~epsilon ~fb_params)
      $ seed_arg $ scale_arg 0.01 $ runs_arg $ epsilon_arg $ fb_params_arg)

let param_ell_cmd =
  cmd "param-l" "Section 7.3: sensitivity-bound parameter sweep for q*."
    Term.(
      const (fun seed runs epsilon fb_params ->
          Exp_param_ell.run ~seed ~runs ~epsilon ~fb_params)
      $ seed_arg $ runs_arg $ epsilon_arg $ fb_params_arg)

let naive_cmd =
  cmd "naive" "Section 7.2: naive repeated evaluation vs TSens."
    Term.(
      const (fun seed scale -> Exp_naive.run ~seed ~scale)
      $ seed_arg $ scale_arg 0.0001)

let topk_cmd =
  cmd "topk" "Ablation: the Section 5.4 top-k approximation."
    Term.(
      const (fun seed scale fb_params -> Exp_topk.run ~seed ~scale ~fb_params)
      $ seed_arg $ scale_arg 0.001 $ fb_params_arg)

let explain_cmd =
  cmd "explain" "Intermediate topjoin/botjoin and table sizes per query."
    Term.(
      const (fun seed scale fb_params ->
          Exp_explain.run ~seed ~scale ~fb_params)
      $ seed_arg $ scale_arg 0.001 $ fb_params_arg)

let micro_cmd =
  cmd "micro" "Bechamel micro-benchmarks of the core kernels."
    Term.(const Micro.run $ const ())

let parallel_cmd =
  let repeats =
    Arg.(
      value & opt int 3
      & info [ "repeats" ] ~docv:"N" ~doc:"Trials per job count (best kept).")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_parallel.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Output JSON path.")
  in
  cmd "parallel"
    "Jobs sweep of the parallel kernels; checks results are identical \
     across job counts and writes BENCH_parallel.json."
    Term.(
      const (fun seed scale repeats out ->
          Exp_parallel.run ~seed ~scale ~repeats ~out)
      $ seed_arg $ scale_arg 0.01 $ repeats $ out)

let cache_cmd =
  let repeats =
    Arg.(
      value & opt int 3
      & info [ "repeats" ] ~docv:"N" ~doc:"Trials per mode (best kept).")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_cache.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Output JSON path.")
  in
  cmd "cache"
    "Cold/warm sweep of the memoization layer; checks cached results \
     are identical to uncached and writes BENCH_cache.json."
    Term.(
      const (fun seed scale repeats out ->
          Exp_cache.run ~seed ~scale ~repeats ~out)
      $ seed_arg $ scale_arg 0.01 $ repeats $ out)

let join_cmd =
  let repeats =
    Arg.(
      value & opt int 5
      & info [ "repeats" ] ~docv:"N"
          ~doc:"Trials per kernel and engine (best kept).")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_join.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Output JSON path.")
  in
  cmd "join"
    "Row vs columnar storage sweep of the join kernels; checks the \
     engines return identical results and writes BENCH_join.json."
    Term.(const (fun repeats out -> Exp_join.run ~repeats ~out) $ repeats $ out)

let run_all seed scales scale runs epsilon fb_params =
  let fb_params = { fb_params with Facebook.seed } in
  let sweep = Exp_tpch_sweep.run ~seed ~scales in
  Exp_tpch_sweep.print_fig6a sweep;
  Exp_fig6b.run ~seed ~scale;
  Exp_tpch_sweep.print_fig7 sweep;
  Exp_table1.run ~params:fb_params;
  Exp_table2.run ~seed ~scale ~runs ~epsilon ~fb_params;
  Exp_param_ell.run ~seed ~runs ~epsilon ~fb_params;
  Exp_naive.run ~seed ~scale:0.0001;
  Exp_topk.run ~seed ~scale:0.001 ~fb_params;
  Micro.run ()

let all_term =
  Term.(
    const run_all $ seed_arg $ scales_arg $ scale_arg 0.01 $ runs_arg
    $ epsilon_arg $ fb_params_arg)

let () =
  let info =
    Cmd.info "tsens-bench"
      ~doc:
        "Regenerates every table and figure of 'Computing Local \
         Sensitivities of Counting Queries with Joins' (SIGMOD 2020)."
  in
  let group =
    Cmd.group ~default:all_term info
      [
        fig6a_cmd;
        fig6b_cmd;
        fig7_cmd;
        table1_cmd;
        table2_cmd;
        param_ell_cmd;
        naive_cmd;
        topk_cmd;
        explain_cmd;
        micro_cmd;
        parallel_cmd;
        cache_cmd;
        join_cmd;
      ]
  in
  exit (Cmd.eval group)
