(* Table 2: differentially private query answering — TSensDP vs the
   PrivSQL-style baseline on all seven queries (medians over N runs). *)

open Tsens_relational
open Tsens_query
open Tsens_sensitivity
open Tsens_dp
open Tsens_workload

let tpch_labels = [ "q1"; "q2"; "q3" ]

let database_for ~seed ~scale ~fb_params label setup =
  if List.mem label tpch_labels then Tpch.generate ~seed ~scale ()
  else
    Queries.facebook_database
      (Facebook.generate { fb_params with Facebook.seed })
      setup.Queries.query

let plans_for label =
  if List.mem label tpch_labels then Queries.tpch_plans
  else Queries.facebook_plans

let run ~seed ~scale ~runs ~epsilon ~fb_params =
  Bench_util.print_heading
    (Printf.sprintf
       "Table 2: TSensDP vs PrivSQL (eps = %g, %d runs, TPC-H scale %g)"
       epsilon runs scale);
  let rng = Prng.create (seed + 1) in
  let rows =
    List.concat_map
      (fun (label, setup) ->
        Printf.eprintf "[table2] %s...\n%!" label;
        let db = database_for ~seed ~scale ~fb_params label setup in
        let plans = plans_for label in
        let cq = setup.Queries.query in
        let true_size = Yannakakis.count ~plans cq db in
        (* TSensDP: trials share the sensitivity analysis, as a deployed
           system would. *)
        (* Only the private relation's sensitivity profile feeds the
           mechanism: skip every other multiplicity table (the paper does
           the same for Lineitem; we generalize). *)
        let skip =
          List.filter
            (fun r -> not (String.equal r setup.Queries.private_relation))
            (Cq.relation_names cq)
        in
        let analysis, analysis_time =
          Bench_util.time (fun () -> Tsens.analyze ~skip ~plans cq db)
        in
        let tsens_config =
          {
            (Mechanism.default_config ~ell:setup.Queries.ell
               ~private_relation:setup.Queries.private_relation)
            with
            Mechanism.epsilon;
          }
        in
        let tsens_trials =
          List.init runs (fun _ ->
              let report, seconds =
                Bench_util.time (fun () ->
                    Mechanism.run_with_analysis rng tsens_config analysis)
              in
              { Metrics.report; seconds = seconds +. analysis_time })
        in
        let tsens_summary = Metrics.summarize tsens_trials in
        let privsql_config =
          {
            (Privsql.default_config ~ell:setup.Queries.ell
               ~private_relation:setup.Queries.private_relation
               ~cascade:setup.Queries.cascade)
            with
            Privsql.epsilon;
          }
        in
        let privsql_trials =
          List.init runs (fun _ ->
              let report, seconds =
                Bench_util.time (fun () ->
                    Privsql.run rng privsql_config ~plans cq db)
              in
              { Metrics.report; seconds })
        in
        let privsql_summary = Metrics.summarize privsql_trials in
        let row method_name (s : Metrics.summary) =
          [
            label;
            Bench_util.count_to_string true_size;
            method_name;
            Bench_util.pp_percent s.Metrics.median_error;
            Bench_util.pp_percent s.Metrics.median_bias;
            Report.value_to_string s.Metrics.median_global_sensitivity;
            Bench_util.seconds_to_string s.Metrics.mean_seconds;
          ]
        in
        [ row "TSensDP" tsens_summary; row "PrivSQL" privsql_summary ])
      Queries.dp_setups
  in
  Bench_util.print_table
    ~columns:
      [ "query"; "|Q(D)|"; "algorithm"; "error"; "bias"; "global sens"; "time" ]
    rows
