(* Bechamel micro-benchmarks: one Test.make per reproduced table/figure,
   timing the kernel that experiment exercises, plus the core relational
   operators. Small fixed inputs so the whole pass stays quick. *)

open Bechamel
open Toolkit
open Tsens_relational
open Tsens_query
open Tsens_sensitivity
open Tsens_dp
open Tsens_workload

let micro_scale = 0.0005
let tpch = lazy (Tpch.generate ~scale:micro_scale ())

let fb =
  lazy
    (Facebook.generate
       { Facebook.nodes = 80; edges = 600; circles = 80; seed = 42 })

let fb_db cq = Queries.facebook_database (Lazy.force fb) cq

let test_fig6a_q1_tsens =
  Test.make ~name:"fig6a/q1_tsens"
    (Staged.stage (fun () ->
         Tsens.local_sensitivity ~plans:Queries.tpch_plans Queries.q1
           (Lazy.force tpch)))

let test_fig6a_q2_tsens =
  Test.make ~name:"fig6a/q2_tsens"
    (Staged.stage (fun () ->
         Tsens.local_sensitivity ~plans:Queries.tpch_plans Queries.q2
           (Lazy.force tpch)))

let test_fig6a_q3_tsens =
  Test.make ~name:"fig6a/q3_tsens"
    (Staged.stage (fun () ->
         Tsens.local_sensitivity ~plans:Queries.tpch_plans Queries.q3
           (Lazy.force tpch)))

let test_fig6a_elastic =
  Test.make ~name:"fig6a/q1_elastic"
    (Staged.stage (fun () ->
         Elastic.local_sensitivity ~plans:Queries.tpch_plans Queries.q1
           (Lazy.force tpch)))

let test_fig7_eval =
  Test.make ~name:"fig7/q1_yannakakis"
    (Staged.stage (fun () ->
         Yannakakis.count ~plans:Queries.tpch_plans Queries.q1
           (Lazy.force tpch)))

let test_table1_q4 =
  Test.make ~name:"table1/q4_tsens"
    (Staged.stage (fun () ->
         Tsens.local_sensitivity ~plans:Queries.facebook_plans Queries.q4
           (fb_db Queries.q4)))

let test_table1_qw_path =
  Test.make ~name:"table1/qw_path_algorithm"
    (Staged.stage (fun () ->
         Path_sens.local_sensitivity Queries.qw (fb_db Queries.qw)))

let test_table2_tsensdp =
  let analysis =
    lazy
      (Tsens.analyze ~plans:Queries.tpch_plans Queries.q1 (Lazy.force tpch))
  in
  let rng = Prng.create 7 in
  Test.make ~name:"table2/q1_tsensdp_release"
    (Staged.stage (fun () ->
         Mechanism.run_with_analysis rng
           (Mechanism.default_config ~ell:100 ~private_relation:"Customer")
           (Lazy.force analysis)))

let test_param_ell_svt =
  let rng = Prng.create 9 in
  Test.make ~name:"param_ell/svt_1000_queries"
    (Staged.stage (fun () ->
         Svt.above_threshold rng ~epsilon:1.0 ~sensitivity:1.0 ~threshold:0.0
           ~queries:(fun i -> float_of_int i -. 999.5)
           ~count:1000))

let test_kernel_join =
  let left =
    lazy (Database.find "Orders" (Lazy.force tpch))
  in
  let right = lazy (Database.find "Customer" (Lazy.force tpch)) in
  Test.make ~name:"kernel/natural_join_orders_customer"
    (Staged.stage (fun () ->
         Join.natural_join (Lazy.force left) (Lazy.force right)))

let test_kernel_gyo =
  Test.make ~name:"kernel/gyo_q3"
    (Staged.stage (fun () -> Gyo.decompose Queries.q3))

let test_kernel_laplace =
  let rng = Prng.create 3 in
  Test.make ~name:"kernel/laplace_sample"
    (Staged.stage (fun () -> Laplace.sample rng ~scale:1.0))

let tests =
  Test.make_grouped ~name:"tsens"
    [
      test_fig6a_q1_tsens;
      test_fig6a_q2_tsens;
      test_fig6a_q3_tsens;
      test_fig6a_elastic;
      test_fig7_eval;
      test_table1_q4;
      test_table1_qw_path;
      test_table2_tsensdp;
      test_param_ell_svt;
      test_kernel_join;
      test_kernel_gyo;
      test_kernel_laplace;
    ]

(* One observability-instrumented pass over a representative workload
   (TSens + Elastic analysis and a TSensDP release on q1): the obs half
   of BENCH_obs.json. Runs with the sink enabled, unlike the bechamel
   kernels above, which time the production disabled-sink path. *)
let instrumented_report () =
  let tpch = Lazy.force tpch in
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:Obs.disable (fun () ->
      let analysis =
        Tsens.analyze ~plans:Queries.tpch_plans Queries.q1 tpch
      in
      ignore
        (Elastic.local_sensitivity ~plans:Queries.tpch_plans Queries.q1 tpch);
      let rng = Prng.create 7 in
      ignore
        (Mechanism.run_with_analysis rng
           (Mechanism.default_config ~ell:100 ~private_relation:"Customer")
           analysis));
  Obs.Report.capture ()

let run () =
  Bench_util.print_heading "Bechamel micro-benchmarks (monotonic clock)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let estimates =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> (name, e /. 1e9) :: acc
        | Some [] | None -> acc)
      results []
    |> List.sort compare
  in
  let rows =
    List.map
      (fun (name, seconds) ->
        [ name; Bench_util.seconds_to_string seconds ])
      estimates
  in
  Bench_util.print_table ~columns:[ "benchmark"; "time/run" ] rows;
  Bench_util.write_obs_json ~path:"BENCH_obs.json" ~benchmarks:estimates
    (instrumented_report ())
