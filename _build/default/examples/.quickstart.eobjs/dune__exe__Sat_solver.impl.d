examples/sat_solver.ml: Array Bool Char Classify Count Cq Database Format List Prng Sat_reduction Sens_types Tsens Tsens_query Tsens_relational Tsens_sensitivity Tsens_workload
