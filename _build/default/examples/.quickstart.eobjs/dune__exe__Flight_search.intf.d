examples/flight_search.mli:
