examples/sat_solver.mli:
