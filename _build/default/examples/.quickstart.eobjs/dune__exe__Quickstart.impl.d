examples/quickstart.ml: Classify Count Cq Database Format List Parser Relation Schema Sens_types Tsens Tsens_query Tsens_relational Tsens_sensitivity Tuple Value
