examples/social_triangles.mli:
