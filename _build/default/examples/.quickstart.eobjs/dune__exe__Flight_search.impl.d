examples/flight_search.ml: Count Database Format List Parser Path_sens Relation Schema Sens_types Tsens Tsens_query Tsens_relational Tsens_sensitivity Tuple Value Yannakakis
