examples/quickstart.mli:
