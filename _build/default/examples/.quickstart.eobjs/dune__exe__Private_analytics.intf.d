examples/private_analytics.mli:
