examples/social_triangles.ml: Count Elastic Facebook Format Mechanism Prng Queries Report Sens_types Tsens Tsens_dp Tsens_relational Tsens_sensitivity Tsens_workload Tuple
