(* The paper's introduction scenario: an airline wants to know which new
   flight would create the most new connecting itineraries.

   Itineraries for a 3-city trip Home → Hub → Regional → Destination are
   the path join Leg1(home, hub) ⋈ Leg2(hub, regional) ⋈ Leg3(regional,
   dest); the count is the number of bookable combinations. The *upward*
   tuple sensitivity of a hypothetical flight is exactly how many new
   itineraries it would unlock, and the most sensitive tuple is the best
   flight to add — computed here with Algorithm 1 (and cross-checked
   against the join-tree DP).

   Run with: dune exec examples/flight_search.exe *)

open Tsens_relational
open Tsens_query
open Tsens_sensitivity

let city = Value.str

(* A small seasonal schedule; multiplicities model daily frequencies. *)
let legs name src dst flights =
  ( name,
    Relation.create
      ~schema:(Schema.of_list [ src; dst ])
      (List.map
         (fun (a, b, per_day) -> (Tuple.of_list [ city a; city b ], per_day))
         flights) )

let database =
  Database.of_list
    [
      legs "Leg1" "home" "hub"
        [
          ("lisbon", "paris", 3);
          ("lisbon", "frankfurt", 2);
          ("porto", "paris", 1);
          ("madrid", "frankfurt", 4);
        ];
      legs "Leg2" "hub" "regional"
        [
          ("paris", "vienna", 2);
          ("paris", "prague", 1);
          ("frankfurt", "vienna", 3);
          ("frankfurt", "warsaw", 2);
        ];
      legs "Leg3" "regional" "dest"
        [
          ("vienna", "athens", 1);
          ("vienna", "bucharest", 2);
          ("prague", "athens", 1);
          ("warsaw", "riga", 1);
        ];
    ]

let query =
  Parser.parse "Trips(*) :- Leg1(home,hub), Leg2(hub,regional), Leg3(regional,dest)."

let () =
  Format.printf "schedule:@.%a@." Database.pp database;
  let itineraries = Yannakakis.count query database in
  Format.printf "bookable 3-leg itineraries today: %a@.@." Count.pp itineraries;

  (* Algorithm 1: the path-query specialization. *)
  let result = Path_sens.local_sensitivity query database in
  (match result.Sens_types.witness with
  | Some w ->
      Format.printf
        "most impactful single flight change: %s%a — adding (or cancelling) \
         one such flight changes the itinerary count by %a@."
        w.Sens_types.relation Tuple.pp w.Sens_types.tuple Count.pp
        w.Sens_types.sensitivity
  | None -> Format.printf "no flight can change anything@.");

  (* Per-leg view: where is the schedule most fragile? *)
  Format.printf "@.largest impact per leg:@.";
  List.iter
    (fun (leg, c) -> Format.printf "  %s: %a@." leg Count.pp c)
    result.Sens_types.per_relation;

  (* The generic join-tree DP agrees with the linear-time algorithm. *)
  let tsens = Tsens.local_sensitivity query database in
  assert (
    tsens.Sens_types.local_sensitivity = result.Sens_types.local_sensitivity);

  (* What-if: which hypothetical Paris departure would matter most? The
     multiplicity table answers point queries over the whole domain. *)
  let analysis = Tsens.analyze query database in
  Format.printf "@.what-if sensitivities for new Paris departures:@.";
  List.iter
    (fun dst ->
      let t = Tuple.of_list [ city "paris"; city dst ] in
      Format.printf "  paris -> %s: %a@." dst Count.pp
        (Tsens.tuple_sensitivity analysis "Leg2" t))
    [ "vienna"; "prague"; "warsaw" ]
