(* Solving 3SAT with a sensitivity engine — the paper's NP-hardness proof
   (Theorem 3.2) run forwards.

   A formula with clauses C1..Cs over variables v1..vl becomes an acyclic
   counting query over s+1 relations: one table per clause holding its
   satisfying assignments, plus an *empty* relation R0 over all
   variables. The join output is empty — but the local sensitivity is
   positive exactly when some insertion into R0 completes a join path,
   i.e. when the formula is satisfiable; and the most sensitive tuple
   *is* a satisfying assignment, with its sensitivity counting the number
   of ways each clause supports it.

   Run with: dune exec examples/sat_solver.exe *)

open Tsens_relational
open Tsens_query
open Tsens_sensitivity
open Tsens_workload

let lit ?(negated = false) var = { Sat_reduction.var; negated }

let pp_formula ppf (f : Sat_reduction.formula) =
  let pp_lit ppf { Sat_reduction.var; negated } =
    Format.fprintf ppf "%s%c" (if negated then "¬" else "") (Char.chr (97 + var))
  in
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ∧ ")
    (fun ppf clause ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ∨ ")
           pp_lit)
        clause)
    ppf f.Sat_reduction.clauses

let solve name formula =
  let cq, db = Sat_reduction.to_instance formula in
  Format.printf "%s: %a@." name pp_formula formula;
  Format.printf "  reduction: %a@." Cq.pp cq;
  Format.printf "  shape: %a, database has %a tuples@." Classify.pp_shape
    (Classify.classify cq) Count.pp (Database.total_tuples db);
  let result = Tsens.local_sensitivity cq db in
  if result.Sens_types.local_sensitivity = 0 then
    Format.printf "  LS = 0  =>  UNSATISFIABLE@.@."
  else begin
    Format.printf "  LS = %a  =>  SATISFIABLE@." Count.pp
      result.Sens_types.local_sensitivity;
    match result.Sens_types.witness with
    | Some w -> (
        match Sat_reduction.assignment_of_witness formula w with
        | Some assignment ->
            Format.printf "  assignment:";
            Array.iteri
              (fun i b ->
                Format.printf " %c=%b" (Char.chr (97 + i)) b)
              assignment;
            Format.printf "@.@."
        | None -> Format.printf "  (witness did not decode)@.@.")
    | None -> Format.printf "  (no witness)@.@."
  end

let () =
  (* (a ∨ b) ∧ (¬a ∨ c) ∧ (¬b ∨ ¬c): satisfiable. *)
  solve "phi1"
    (Sat_reduction.make_formula ~vars:3
       [
         [ lit 0; lit 1 ];
         [ lit ~negated:true 0; lit 2 ];
         [ lit ~negated:true 1; lit ~negated:true 2 ];
       ]);
  (* a ∧ ¬a: unsatisfiable. *)
  solve "phi2"
    (Sat_reduction.make_formula ~vars:1 [ [ lit 0 ]; [ lit ~negated:true 0 ] ]);
  (* All eight clauses over three variables: unsatisfiable. *)
  let all_clauses =
    List.init 8 (fun mask ->
        List.init 3 (fun v -> lit ~negated:(mask land (1 lsl v) <> 0) v))
  in
  solve "phi3 (all 8 clauses)" (Sat_reduction.make_formula ~vars:3 all_clauses);
  (* A random instance, checked against brute force. *)
  let rng = Prng.create 2020 in
  let f = Sat_reduction.random_formula rng ~vars:6 ~clauses:12 in
  solve "random (6 vars, 12 clauses)" f;
  assert (
    Bool.equal
      (Sat_reduction.brute_force_sat f)
      (Sat_reduction.satisfiable_via_sensitivity f));
  Format.printf "cross-checked against brute force: agreed.@."
