(* A private analytics workflow on relational data: answering the TPC-H
   q1 counting query ("how many lineitems flow through each region's
   customer base") under differential privacy, comparing the TSensDP
   mechanism against the PrivSQL-style frequency-truncation baseline.

   Also shows the CSV surface: the generated instance is written to disk
   and read back, as an external dataset would be.

   Run with: dune exec examples/private_analytics.exe *)

open Tsens_relational
open Tsens_query
open Tsens_sensitivity
open Tsens_dp
open Tsens_workload

let () =
  let scale = 0.002 in
  let db = Tpch.generate ~scale () in

  (* Round-trip the instance through CSV, like external data would be. *)
  let dir = Filename.temp_file "tsens_analytics" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let db =
    Database.fold
      (fun name rel acc ->
        let path = Filename.concat dir (name ^ ".csv") in
        Csv.write_file path rel;
        Database.add ~name (Csv.read_file path) acc)
      db Database.empty
  in
  Format.printf "TPC-H instance at scale %g (via %s):@.%a@." scale dir
    Database.pp db;

  let query = Queries.q1 in
  let setup = List.assoc "q1" Queries.dp_setups in
  Format.printf "@.query: %a@." Cq.pp query;

  let analysis = Tsens.analyze ~plans:Queries.tpch_plans query db in
  Format.printf "true answer |Q(D)| = %a@." Count.pp
    (Tsens.output_size analysis);
  Format.printf "%a@." Sens_types.pp_result (Tsens.result analysis);

  (* Both mechanisms answer under the same total budget. *)
  let epsilon = 1.0 in
  let rng = Prng.create 11 in
  let runs = 10 in

  let tsens_config =
    {
      (Mechanism.default_config ~ell:setup.Queries.ell
         ~private_relation:setup.Queries.private_relation)
      with
      Mechanism.epsilon;
    }
  in
  let tsens_trials =
    List.init runs (fun _ ->
        let report, seconds =
          Metrics.time (fun () ->
              Mechanism.run_with_analysis rng tsens_config analysis)
        in
        { Metrics.report; seconds })
  in

  let privsql_config =
    {
      (Privsql.default_config ~ell:setup.Queries.ell
         ~private_relation:setup.Queries.private_relation
         ~cascade:setup.Queries.cascade)
      with
      Privsql.epsilon;
    }
  in
  let privsql_trials =
    List.init runs (fun _ ->
        let report, seconds =
          Metrics.time (fun () ->
              Privsql.run rng privsql_config ~plans:Queries.tpch_plans query db)
        in
        { Metrics.report; seconds })
  in

  Format.printf "@.over %d runs at epsilon = %g:@." runs epsilon;
  Format.printf "  TSensDP: %a@." Metrics.pp_summary
    (Metrics.summarize tsens_trials);
  Format.printf "  PrivSQL: %a@." Metrics.pp_summary
    (Metrics.summarize privsql_trials);

  (* Show one full report for transparency. *)
  Format.printf "@.one TSensDP report in full:@.%a@." Report.pp
    (List.hd tsens_trials).Metrics.report
