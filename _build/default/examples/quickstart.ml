(* Quickstart: the paper's running example (Figure 1) end to end.

   Builds a four-relation database, states the natural-join counting
   query in datalog syntax, and asks TSens for the local sensitivity —
   the largest change any single tuple insertion or deletion can cause to
   the join count — together with the tuple that causes it.

   Run with: dune exec examples/quickstart.exe *)

open Tsens_relational
open Tsens_query
open Tsens_sensitivity

let s = Value.str

let database =
  let rel name attrs rows =
    (name, Relation.of_rows ~schema:(Schema.of_list attrs) rows)
  in
  Database.of_list
    [
      rel "R1" [ "A"; "B"; "C" ]
        [
          [ s "a1"; s "b1"; s "c1" ];
          [ s "a1"; s "b2"; s "c1" ];
          [ s "a2"; s "b1"; s "c1" ];
        ];
      rel "R2" [ "A"; "B"; "D" ]
        [ [ s "a1"; s "b1"; s "d1" ]; [ s "a2"; s "b2"; s "d2" ] ];
      rel "R3" [ "A"; "E" ]
        [ [ s "a1"; s "e1" ]; [ s "a2"; s "e1" ]; [ s "a2"; s "e2" ] ];
      rel "R4" [ "B"; "F" ]
        [ [ s "b1"; s "f1" ]; [ s "b2"; s "f1" ]; [ s "b2"; s "f2" ] ];
    ]

let () =
  (* Full conjunctive queries are written in datalog syntax; the head
     lists every variable (or "*"). *)
  let query =
    Parser.parse "Q(*) :- R1(A,B,C), R2(A,B,D), R3(A,E), R4(B,F)."
  in
  Format.printf "query: %a@." Cq.pp query;
  Format.printf "shape: %a@.@." Classify.pp_shape (Classify.classify query);

  let analysis = Tsens.analyze query database in
  Format.printf "|Q(D)| = %a@." Count.pp (Tsens.output_size analysis);
  Format.printf "%a@." Sens_types.pp_result (Tsens.result analysis);

  (* The multiplicity table of R1 holds the sensitivity of *every* tuple
     in R1's representative domain, existing or not. *)
  Format.printf "@.multiplicity table of R1 (over its shared attributes):@.%a@."
    Relation.pp
    (Tsens.multiplicity_table analysis "R1");

  (* Point queries: Example 2.1's two tuples. *)
  let delta row =
    Tsens.tuple_sensitivity analysis "R1" (Tuple.of_list (List.map s row))
  in
  Format.printf "delta(R1(a1,b1,c1)) = %a   (an existing tuple)@." Count.pp
    (delta [ "a1"; "b1"; "c1" ]);
  Format.printf "delta(R1(a2,b2,c1)) = %a   (a hypothetical insertion)@."
    Count.pp
    (delta [ "a2"; "b2"; "c1" ])
