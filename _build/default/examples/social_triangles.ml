(* Triangle counting on a social ego-network, with a differentially
   private release.

   The triangle query is cyclic, so the sensitivity DP runs over a
   generalized hypertree decomposition ({R1 ⋈ R2}, {R3}); the elastic
   sensitivity baseline shows how loose static analysis is on the same
   instance; TSensDP then releases the triangle count under ε-DP with a
   truncation threshold learned from the tuple sensitivities.

   Run with: dune exec examples/social_triangles.exe *)

open Tsens_relational
open Tsens_sensitivity
open Tsens_dp
open Tsens_workload

let () =
  let params =
    { Facebook.nodes = 120; edges = 1500; circles = 150; seed = 2026 }
  in
  let data = Facebook.generate params in
  let query = Queries.q4 in
  let db = Queries.facebook_database data query in
  Format.printf "ego-network: %d nodes, %d undirected edges, %d circles@."
    params.Facebook.nodes params.Facebook.edges params.Facebook.circles;

  let plans = [ Queries.q4_ghd ] in
  let analysis = Tsens.analyze ~plans query db in
  let triangles = Tsens.output_size analysis in
  Format.printf "ordered triangles |Q(D)| = %a@.@." Count.pp triangles;

  let tsens = Tsens.result analysis in
  let elastic = Elastic.local_sensitivity ~plans query db in
  Format.printf "local sensitivity (TSens):   %a@." Count.pp
    tsens.Sens_types.local_sensitivity;
  Format.printf "elastic sensitivity (Flex):  %a  (%.0fx looser)@." Count.pp
    elastic.Sens_types.local_sensitivity
    (float_of_int elastic.Sens_types.local_sensitivity
    /. float_of_int (max 1 tsens.Sens_types.local_sensitivity));
  (match tsens.Sens_types.witness with
  | Some w ->
      Format.printf "most sensitive friendship: %s%a (delta = %a)@."
        w.Sens_types.relation Tuple.pp w.Sens_types.tuple Count.pp
        w.Sens_types.sensitivity
  | None -> ());

  (* Release the triangle count with ε = 1, treating R2 as the private
     friendship table. *)
  let ell = 4 * max 1 tsens.Sens_types.local_sensitivity in
  let config = Mechanism.default_config ~ell ~private_relation:"R2" in
  let rng = Prng.create 7 in
  Format.printf "@.TSensDP releases (epsilon = %g, ell = %d):@."
    config.Mechanism.epsilon ell;
  for i = 1 to 5 do
    let report = Mechanism.run_with_analysis rng config analysis in
    Format.printf
      "  run %d: released %.0f (true %.0f, learned tau = %d, error %.1f%%)@."
      i (Report.released report) report.Report.true_answer
      report.Report.threshold
      (100.0 *. Report.relative_error report)
  done
