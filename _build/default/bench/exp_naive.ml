(* Section 7.2's closing comparison: local sensitivity by repeated query
   evaluation over all candidate deletions/insertions (the Theorem 3.1
   algorithm built on Yannakakis) versus the single TSens pass. *)

open Tsens_sensitivity
open Tsens_workload

let run ~seed ~scale =
  Bench_util.print_heading
    (Printf.sprintf
       "Naive repeated evaluation vs TSens (q1, TPC-H scale %g)" scale);
  let db = Tpch.generate ~seed ~scale () in
  let plans = Queries.tpch_plans in
  let tsens, tsens_time =
    Bench_util.time (fun () -> Tsens.local_sensitivity ~plans Queries.q1 db)
  in
  let naive, naive_time =
    Bench_util.time (fun () ->
        Naive.local_sensitivity ~max_candidates:2_000_000 Queries.q1 db)
  in
  Bench_util.print_table
    ~columns:[ "algorithm"; "LS"; "time" ]
    [
      [
        "TSens";
        Bench_util.count_to_string tsens.Sens_types.local_sensitivity;
        Bench_util.seconds_to_string tsens_time;
      ];
      [
        "naive (repeat Yannakakis)";
        Bench_util.count_to_string naive.Sens_types.local_sensitivity;
        Bench_util.seconds_to_string naive_time;
      ];
    ];
  if
    tsens.Sens_types.local_sensitivity
    <> naive.Sens_types.local_sensitivity
  then Printf.printf "WARNING: the two algorithms disagree!\n%!"
  else
    Printf.printf "agreement confirmed; speedup: %.0fx\n%!"
      (naive_time /. tsens_time)
