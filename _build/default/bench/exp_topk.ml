(* Ablation for the Section 5.4 top-k approximation: bound quality and
   intermediate-table size versus exact TSens, on q1 (TPC-H) and the
   Facebook path query. *)

open Tsens_sensitivity
open Tsens_workload

let ks = [ 1; 4; 16; 64; 256 ]

let run_one label cq db plans =
  let exact, exact_time =
    Bench_util.time (fun () -> Tsens.local_sensitivity ~plans cq db)
  in
  let exact_rows, _ = Approx.intermediate_sizes ~k:max_int ~plans cq db in
  let rows =
    List.map
      (fun k ->
        let bound, t =
          Bench_util.time (fun () -> Approx.local_sensitivity ~k ~plans cq db)
        in
        let _, compressed = Approx.intermediate_sizes ~k ~plans cq db in
        [
          label;
          string_of_int k;
          Bench_util.count_to_string bound.Sens_types.local_sensitivity;
          Bench_util.count_to_string exact.Sens_types.local_sensitivity;
          Printf.sprintf "%d/%d" compressed exact_rows;
          Bench_util.seconds_to_string t;
        ])
      ks
  in
  ( rows,
    [
      label;
      "exact";
      Bench_util.count_to_string exact.Sens_types.local_sensitivity;
      Bench_util.count_to_string exact.Sens_types.local_sensitivity;
      Printf.sprintf "%d/%d" exact_rows exact_rows;
      Bench_util.seconds_to_string exact_time;
    ] )

let run ~seed ~scale ~fb_params =
  Bench_util.print_heading
    "Ablation: top-k approximation (upper bound vs exact TSens)";
  let tpch = Tpch.generate ~seed ~scale () in
  let fb =
    Queries.facebook_database
      (Facebook.generate { fb_params with Facebook.seed })
      Queries.qw
  in
  let q1_rows, q1_exact =
    run_one "q1" Queries.q1 tpch Queries.tpch_plans
  in
  let qw_rows, qw_exact =
    run_one "qw" Queries.qw fb Queries.facebook_plans
  in
  Bench_util.print_table
    ~columns:[ "query"; "k"; "LS bound"; "LS exact"; "rows kept"; "time" ]
    ((q1_exact :: q1_rows) @ (qw_exact :: qw_rows))
