bench/exp_tpch_sweep.ml: Bench_util Count Elastic List Printf Queries Sens_types Tpch Tsens Tsens_relational Tsens_sensitivity Tsens_workload Yannakakis
