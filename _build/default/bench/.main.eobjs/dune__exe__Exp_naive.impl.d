bench/exp_naive.ml: Bench_util Naive Printf Queries Sens_types Tpch Tsens Tsens_sensitivity Tsens_workload
