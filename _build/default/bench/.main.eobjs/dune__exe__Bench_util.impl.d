bench/bench_util.ml: Arg List Printf String Tsens_relational Unix
