bench/main.ml: Arg Bench_util Cmd Cmdliner Exp_explain Exp_fig6b Exp_naive Exp_param_ell Exp_table1 Exp_table2 Exp_topk Exp_tpch_sweep Facebook Format List Micro Stdlib String Term Tsens_workload
