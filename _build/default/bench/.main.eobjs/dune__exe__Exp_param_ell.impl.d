bench/exp_param_ell.ml: Bench_util Facebook List Mechanism Metrics Printf Prng Queries Sens_types Tsens Tsens_dp Tsens_relational Tsens_sensitivity Tsens_workload
