bench/exp_topk.ml: Approx Bench_util Facebook List Printf Queries Sens_types Tpch Tsens Tsens_sensitivity Tsens_workload
