bench/main.mli:
