bench/exp_table1.ml: Bench_util Elastic Facebook List Printf Queries Sens_types Tsens Tsens_sensitivity Tsens_workload Yannakakis
