bench/exp_table2.ml: Bench_util Cq Facebook List Mechanism Metrics Printf Privsql Prng Queries String Tpch Tsens Tsens_dp Tsens_query Tsens_relational Tsens_sensitivity Tsens_workload Yannakakis
