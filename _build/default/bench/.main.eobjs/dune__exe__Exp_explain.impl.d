bench/exp_explain.ml: Bench_util Facebook List Printf Queries Tpch Tsens Tsens_sensitivity Tsens_workload
