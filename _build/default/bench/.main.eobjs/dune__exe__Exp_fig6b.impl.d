bench/exp_fig6b.ml: Bench_util Database Elastic List Printf Queries Relation Sens_types Tpch Tsens Tsens_query Tsens_relational Tsens_sensitivity Tsens_workload Tuple
