(* Section 7.3 parameter analysis: how the assumed tuple-sensitivity
   upper bound ell affects TSensDP on the star query. *)

open Tsens_relational
open Tsens_sensitivity
open Tsens_dp
open Tsens_workload

let ells = [ 1; 10; 30; 50; 100; 1000 ]

let run ~seed ~runs ~epsilon ~fb_params =
  Bench_util.print_heading
    (Printf.sprintf
       "Parameter analysis: varying ell for q* (eps = %g, %d runs)" epsilon
       runs);
  let data = Facebook.generate { fb_params with Facebook.seed } in
  let db = Queries.facebook_database data Queries.qstar in
  let analysis = Tsens.analyze Queries.qstar db in
  let true_ls =
    (Tsens.result analysis).Sens_types.local_sensitivity
  in
  Printf.printf "true local sensitivity of q*: %s\n"
    (Bench_util.count_to_string true_ls);
  let rng = Prng.create (seed + 2) in
  let rows =
    List.map
      (fun ell ->
        let config =
          {
            (Mechanism.default_config ~ell ~private_relation:"R2") with
            Mechanism.epsilon;
          }
        in
        let trials =
          List.init runs (fun _ ->
              let report, seconds =
                Bench_util.time (fun () ->
                    Mechanism.run_with_analysis rng config analysis)
              in
              { Metrics.report; seconds })
        in
        let s = Metrics.summarize trials in
        [
          string_of_int ell;
          Printf.sprintf "%.0f" s.Metrics.median_threshold;
          Bench_util.pp_percent s.Metrics.median_bias;
          Bench_util.pp_percent s.Metrics.median_error;
        ])
      ells
  in
  Bench_util.print_table
    ~columns:[ "ell"; "median tau"; "median bias"; "median error" ]
    rows
