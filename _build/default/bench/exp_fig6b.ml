(* Figure 6b: the most sensitive tuple and its tuple sensitivity for
   every relation of q3, against the per-relation elastic sensitivity
   bound (which cannot name a tuple). *)

open Tsens_relational
open Tsens_sensitivity
open Tsens_workload

let run ~seed ~scale =
  Bench_util.print_heading
    (Printf.sprintf
       "Figure 6b: most sensitive tuples per relation, q3 at scale %g" scale);
  let db = Tpch.generate ~seed ~scale () in
  (* Lineitem is skipped as in the paper's Figure 6b: its key is a
     superkey of the join head, so its tuple sensitivity is at most 1. *)
  let analysis =
    Tsens.analyze ~skip:[ "Lineitem" ] ~plans:[ Queries.q3_ghd ] Queries.q3 db
  in
  let result = Tsens.result analysis in
  let elastic_plan = Elastic.plan_of_cq ~plans:[ Queries.q3_ghd ] Queries.q3 in
  let instance = Database.of_list (Tsens_query.Cq.instance Queries.q3 db) in
  let rows =
    List.map
      (fun (relation, tuple_sens) ->
        let witness =
          match Tsens.multiplicity_table analysis relation with
          | table -> (
              match Relation.max_row table with
              | Some (row, _) ->
                  Tuple.to_string (Tsens.witness_tuple analysis relation row)
              | None -> "-")
          | exception Tsens_relational.Errors.Schema_error _ ->
              "skipped (FK superkey)"
        in
        let elastic =
          Elastic.relation_sensitivity Queries.q3 instance elastic_plan
            relation
        in
        [
          relation;
          witness;
          Bench_util.count_to_string tuple_sens;
          Bench_util.count_to_string elastic;
        ])
      result.Sens_types.per_relation
  in
  Bench_util.print_table
    ~columns:
      [ "relation"; "most sensitive tuple"; "tuple sens (TSens)"; "Elastic" ]
    rows;
  Printf.printf "local sensitivity: %s\n%!"
    (Bench_util.count_to_string result.Sens_types.local_sensitivity)
