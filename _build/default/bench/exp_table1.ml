(* Table 1: local sensitivity and runtime of the four Facebook queries,
   for TSens and Elastic, plus plain query-evaluation time. *)

open Tsens_sensitivity
open Tsens_workload

let run ~params =
  Bench_util.print_heading
    (Printf.sprintf
       "Table 1: Facebook queries (%d nodes, %d edges, %d circles)"
       params.Facebook.nodes params.Facebook.edges params.Facebook.circles);
  let data = Facebook.generate params in
  let plans = Queries.facebook_plans in
  let rows =
    List.map
      (fun (label, cq) ->
        Printf.eprintf "[table1] %s...\n%!" label;
        let db = Queries.facebook_database data cq in
        let tsens, tsens_time =
          Bench_util.time (fun () -> Tsens.local_sensitivity ~plans cq db)
        in
        let elastic, elastic_time =
          Bench_util.time (fun () -> Elastic.local_sensitivity ~plans cq db)
        in
        let size, eval_time =
          Bench_util.time (fun () -> Yannakakis.count ~plans cq db)
        in
        [
          label;
          Bench_util.count_to_string tsens.Sens_types.local_sensitivity;
          Bench_util.count_to_string elastic.Sens_types.local_sensitivity;
          Bench_util.seconds_to_string tsens_time;
          Bench_util.seconds_to_string elastic_time;
          Bench_util.seconds_to_string eval_time;
          Bench_util.count_to_string size;
        ])
      [
        ("q4 (triangle)", Queries.q4);
        ("qw (path)", Queries.qw);
        ("qo (4-cycle)", Queries.qo);
        ("q* (star)", Queries.qstar);
      ]
  in
  Bench_util.print_table
    ~columns:
      [
        "query";
        "LS_TSens";
        "LS_Elastic";
        "t_TSens";
        "t_Elastic";
        "t_eval";
        "|Q(D)|";
      ]
    rows
