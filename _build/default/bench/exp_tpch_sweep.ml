(* The shared TPC-H sweep behind Figure 6a (local sensitivity vs scale)
   and Figure 7 (runtime vs scale): for each scale and each of q1/q2/q3,
   run TSens, Elastic, and plain query evaluation (Yannakakis count). *)

open Tsens_relational
open Tsens_sensitivity
open Tsens_workload

type cell = {
  tsens_ls : Count.t;
  elastic_ls : Count.t;
  tsens_time : float;
  elastic_time : float;
  eval_time : float;
}

type row = { scale : float; cells : (string * cell) list }

(* Lineitem's multiplicity table in q3 is skipped, as in the paper: its
   key is a superkey of the join, so its tuple sensitivity is at most 1,
   and the table would dominate time and memory. *)
let queries =
  [
    ("q1", Queries.q1, []);
    ("q2", Queries.q2, []);
    ("q3", Queries.q3, [ "Lineitem" ]);
  ]

let run_query cq skip db =
  let plans = Queries.tpch_plans in
  let tsens, tsens_time =
    Bench_util.time (fun () -> Tsens.local_sensitivity ~skip ~plans cq db)
  in
  let elastic, elastic_time =
    Bench_util.time (fun () -> Elastic.local_sensitivity ~plans cq db)
  in
  let _, eval_time =
    Bench_util.time (fun () -> Yannakakis.count ~plans cq db)
  in
  {
    tsens_ls = tsens.Sens_types.local_sensitivity;
    elastic_ls = elastic.Sens_types.local_sensitivity;
    tsens_time;
    elastic_time;
    eval_time;
  }

let run ~seed ~scales =
  List.map
    (fun scale ->
      Printf.eprintf "[sweep] scale %g...\n%!" scale;
      let db = Tpch.generate ~seed ~scale () in
      let cells =
        List.map (fun (label, cq, skip) -> (label, run_query cq skip db)) queries
      in
      { scale; cells })
    scales

let print_fig6a rows =
  Bench_util.print_heading
    "Figure 6a: local sensitivity vs scale (TSens vs Elastic, TPC-H)";
  let columns =
    "scale"
    :: List.concat_map
         (fun (label, _, _) -> [ label ^ "_TSens"; label ^ "_Elastic" ])
         queries
  in
  let body =
    List.map
      (fun { scale; cells } ->
        Printf.sprintf "%g" scale
        :: List.concat_map
             (fun (label, _, _) ->
               let c = List.assoc label cells in
               [
                 Bench_util.count_to_string c.tsens_ls;
                 Bench_util.count_to_string c.elastic_ls;
               ])
             queries)
      rows
  in
  Bench_util.print_table ~columns body

let print_fig7 rows =
  Bench_util.print_heading
    "Figure 7: runtime vs scale (TSens vs Elastic vs query evaluation)";
  let columns =
    "scale"
    :: List.concat_map
         (fun (label, _, _) ->
           [ label ^ "_TSens"; label ^ "_query"; label ^ "_Elastic" ])
         queries
  in
  let body =
    List.map
      (fun { scale; cells } ->
        Printf.sprintf "%g" scale
        :: List.concat_map
             (fun (label, _, _) ->
               let c = List.assoc label cells in
               [
                 Bench_util.seconds_to_string c.tsens_time;
                 Bench_util.seconds_to_string c.eval_time;
                 Bench_util.seconds_to_string c.elastic_time;
               ])
             queries)
      rows
  in
  Bench_util.print_table ~columns body
