(* Intermediate-size report: the topjoin/botjoin and multiplicity-table
   sizes behind every paper query — the quantities that explain Figure
   7's q3 blow-up and why factored tables keep q1 linear. *)

open Tsens_sensitivity
open Tsens_workload

let report label cq plans skip db =
  Bench_util.print_heading (Printf.sprintf "DP intermediates: %s" label);
  let analysis = Tsens.analyze ~skip ~plans cq db in
  let node_stats, table_stats = Tsens.statistics analysis in
  Bench_util.print_table ~columns:[ "node"; "botjoin rows"; "topjoin rows" ]
    (List.map
       (fun ns ->
         [
           ns.Tsens.bag;
           string_of_int ns.Tsens.botjoin_rows;
           string_of_int ns.Tsens.topjoin_rows;
         ])
       node_stats);
  Bench_util.print_table
    ~columns:[ "multiplicity table"; "representation"; "stored rows" ]
    (List.map
       (fun ts ->
         [
           ts.Tsens.table_relation;
           (if ts.Tsens.factored then "factored" else "dense");
           string_of_int ts.Tsens.table_rows;
         ])
       table_stats)

let run ~seed ~scale ~fb_params =
  let tpch = Tpch.generate ~seed ~scale () in
  report "q1 (TPC-H path)" Queries.q1 Queries.tpch_plans [] tpch;
  report "q2 (TPC-H acyclic)" Queries.q2 Queries.tpch_plans [] tpch;
  report "q3 (TPC-H cyclic, Lineitem skipped)" Queries.q3 Queries.tpch_plans
    [ "Lineitem" ] tpch;
  let data = Facebook.generate { fb_params with Facebook.seed } in
  List.iter
    (fun (label, cq) ->
      report label cq Queries.facebook_plans []
        (Queries.facebook_database data cq))
    [
      ("q4 (triangle)", Queries.q4);
      ("qw (path)", Queries.qw);
      ("qo (4-cycle)", Queries.qo);
      ("q* (star)", Queries.qstar);
    ]
