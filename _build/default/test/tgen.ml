(* Shared QCheck generators and Alcotest testables for all suites. *)

open Tsens_relational

let value_testable = Alcotest.testable Value.pp Value.equal
let tuple_testable = Alcotest.testable Tuple.pp Tuple.equal
let schema_testable = Alcotest.testable Schema.pp Schema.equal
let relation_testable = Alcotest.testable Relation.pp Relation.equal

let relation_semantic =
  Alcotest.testable Relation.pp Relation.equal_semantic

(* Small integer values keep join selectivity high so random relations
   actually join. *)
let value_gen =
  QCheck2.Gen.(map Value.int (int_range 0 4))

let tuple_gen arity =
  QCheck2.Gen.(map Tuple.of_list (list_repeat arity value_gen))

let attr_pool = [| "A"; "B"; "C"; "D"; "E"; "F" |]

let schema_gen =
  (* A random non-empty sub-list of the pool, keeping pool order so the
     result has no duplicates. *)
  QCheck2.Gen.(
    list_repeat (Array.length attr_pool) bool >>= fun mask ->
    let attrs =
      List.filteri (fun i _ -> List.nth mask i) (Array.to_list attr_pool)
    in
    let attrs = if attrs = [] then [ "A" ] else attrs in
    return (Schema.of_list attrs))

let relation_of_schema_gen schema =
  QCheck2.Gen.(
    list_size (int_range 0 12)
      (pair (tuple_gen (Schema.arity schema)) (int_range 1 3))
    >>= fun rows -> return (Relation.create ~schema rows))

let relation_gen = QCheck2.Gen.(schema_gen >>= relation_of_schema_gen)

(* A pair of relations guaranteed to share at least one attribute. *)
let joinable_pair_gen =
  QCheck2.Gen.(
    schema_gen >>= fun s1 ->
    schema_gen >>= fun s2 ->
    let s2 =
      if Schema.disjoint s1 s2 then
        Schema.union s2 (Schema.of_list [ List.hd (Schema.attrs s1) ])
      else s2
    in
    relation_of_schema_gen s1 >>= fun r1 ->
    relation_of_schema_gen s2 >>= fun r2 -> return (r1, r2))

let print_relation r = Format.asprintf "%a" Relation.pp r

let print_relation_pair (a, b) =
  Format.asprintf "%a@.---@.%a" Relation.pp a Relation.pp b

let qtest ?(count = 200) name gen print prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name ~print gen prop)
