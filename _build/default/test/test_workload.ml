(* Tests for the workload layer: TPC-H generator, Facebook ego-network
   generator, the paper's seven queries, and the 3SAT reduction. *)

open Tsens_relational
open Tsens_query
open Tsens_sensitivity
open Tsens_workload

(* ------------------------------------------------------------------ *)
(* TPC-H *)

let tiny_scale = 0.001

let test_tpch_sizes () =
  let sizes = Tpch.sizes ~scale:tiny_scale in
  Alcotest.(check (list (pair string int)))
    "targets"
    [
      ("Region", 5);
      ("Nation", 25);
      ("Supplier", 10);
      ("Customer", 150);
      ("Part", 200);
      ("Partsupp", 800);
      ("Orders", 1500);
      ("Lineitem", 6000);
    ]
    sizes;
  Alcotest.check_raises "bad scale"
    (Invalid_argument "Tpch.sizes: non-positive scale") (fun () ->
      ignore (Tpch.sizes ~scale:0.0))

let test_tpch_cardinalities () =
  let db = Tpch.generate ~scale:tiny_scale () in
  List.iter
    (fun (name, target) ->
      Alcotest.(check int)
        (name ^ " cardinality") target
        (Relation.cardinality (Database.find name db)))
    (Tpch.sizes ~scale:tiny_scale)

let test_tpch_deterministic () =
  let db1 = Tpch.generate ~seed:7 ~scale:tiny_scale () in
  let db2 = Tpch.generate ~seed:7 ~scale:tiny_scale () in
  let db3 = Tpch.generate ~seed:8 ~scale:tiny_scale () in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ " reproducible") true
        (Relation.equal (Database.find name db1) (Database.find name db2)))
    Tpch.relation_names;
  Alcotest.(check bool) "seed changes data" false
    (Relation.equal (Database.find "Orders" db1) (Database.find "Orders" db3))

let test_tpch_referential_integrity () =
  let db = Tpch.generate ~scale:tiny_scale () in
  let full r = Database.find r db in
  let check_covered name a b =
    (* every tuple of a joins b on their common attributes *)
    Alcotest.(check int)
      name
      (Relation.cardinality a)
      (Relation.cardinality (Tsens_relational.Join.semijoin a b))
  in
  check_covered "nations have regions" (full "Nation") (full "Region");
  check_covered "customers have nations" (full "Customer") (full "Nation");
  check_covered "suppliers have nations" (full "Supplier") (full "Nation");
  check_covered "orders have customers" (full "Orders") (full "Customer");
  check_covered "lineitems have orders" (full "Lineitem") (full "Orders");
  check_covered "lineitems have partsupp" (full "Lineitem") (full "Partsupp");
  check_covered "partsupp has parts" (full "Partsupp") (full "Part");
  check_covered "partsupp has suppliers" (full "Partsupp") (full "Supplier")

let test_tpch_queries_match_schema () =
  let db = Tpch.generate ~scale:tiny_scale () in
  List.iter
    (fun cq -> Cq.check_database cq db)
    [ Queries.q1; Queries.q2; Queries.q3 ]

(* ------------------------------------------------------------------ *)
(* Query classification matches the paper *)

let shape cq = Format.asprintf "%a" Classify.pp_shape (Classify.classify cq)

let test_query_shapes () =
  Alcotest.(check string)
    "q1 is a path"
    "path (Lineitem - Orders - Customer - Nation - Region)"
    (shape Queries.q1);
  Alcotest.(check string) "q2 doubly acyclic" "doubly acyclic" (shape Queries.q2);
  Alcotest.(check string) "q3 cyclic" "cyclic" (shape Queries.q3);
  Alcotest.(check string) "q4 cyclic" "cyclic" (shape Queries.q4);
  Alcotest.(check string)
    "qw is a path" "path (R1 - R2 - R3 - R4)" (shape Queries.qw);
  Alcotest.(check string) "qo cyclic" "cyclic" (shape Queries.qo);
  Alcotest.(check string) "qstar acyclic only" "acyclic" (shape Queries.qstar)

let test_q3_ghd_widths () =
  Alcotest.(check int) "default width 2" 2 (Ghd.width Queries.q3_ghd);
  Alcotest.(check int) "paper width 3" 3 (Ghd.width Queries.q3_ghd_paper)

let test_q3_ghds_agree () =
  (* Both decompositions compute the same sensitivities. *)
  let db = Tpch.generate ~scale:0.0005 () in
  let a = Tsens.local_sensitivity ~plans:[ Queries.q3_ghd ] Queries.q3 db in
  let b =
    Tsens.local_sensitivity ~plans:[ Queries.q3_ghd_paper ] Queries.q3 db
  in
  Alcotest.(check (list (pair string int)))
    "per relation equal" a.Sens_types.per_relation b.Sens_types.per_relation;
  Alcotest.(check bool) "LS positive" true (a.Sens_types.local_sensitivity > 0)

(* ------------------------------------------------------------------ *)
(* Facebook *)

let small_fb =
  Facebook.generate { Facebook.nodes = 40; edges = 150; circles = 40; seed = 5 }

let test_facebook_tables_populated () =
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "table %d nonempty" i)
      true
      (Facebook.edge_table small_fb i <> [])
  done;
  Alcotest.check_raises "bad index"
    (Invalid_argument "Facebook.edge_table: index must be 0..3") (fun () ->
      ignore (Facebook.edge_table small_fb 4))

let test_facebook_bidirected () =
  (* Every directed edge's reverse is in the same table with the same
     multiplicity. *)
  for i = 0 to 3 do
    let rel = Facebook.edge_relation small_fb i ~x:"A" ~y:"B" in
    Relation.iter
      (fun t cnt ->
        let rev = Tuple.of_list [ Tuple.get t 1; Tuple.get t 0 ] in
        Alcotest.(check int)
          (Printf.sprintf "table %d symmetric" i)
          cnt (Relation.count_of rev rel))
      rel
  done

let test_facebook_deterministic () =
  let d1 =
    Facebook.generate { Facebook.nodes = 40; edges = 150; circles = 40; seed = 5 }
  in
  Alcotest.(check bool) "same seed same edges" true
    (Facebook.edge_table small_fb 0 = Facebook.edge_table d1 0)

let test_facebook_triangle_table () =
  (* The triangle table equals the 3-way join of three copies of edge
     table 3 (the self-join materialization). *)
  let r name x y = (name, Facebook.edge_relation small_fb 3 ~x ~y) in
  let cq =
    Cq.make ~name:"tri"
      [ ("E1", [ "A"; "B" ]); ("E2", [ "B"; "C" ]); ("E3", [ "C"; "A" ]) ]
  in
  let db = Database.of_list [ r "E1" "A" "B"; r "E2" "B" "C"; r "E3" "C" "A" ] in
  let joined =
    Relation.reorder
      (Schema.of_list [ "A"; "B"; "C" ])
      (Yannakakis.output cq db)
  in
  let triangle = Facebook.triangle_relation small_fb ~a:"A" ~b:"B" ~c:"C" in
  Alcotest.(check bool) "triangle table = self join" true
    (Relation.equal joined triangle);
  Alcotest.(check int)
    "triangle_count" (Relation.distinct_count triangle)
    (Facebook.triangle_count small_fb)

let test_facebook_databases_match_queries () =
  List.iter
    (fun cq ->
      Cq.check_database cq (Queries.facebook_database small_fb cq))
    [ Queries.q4; Queries.qw; Queries.qo; Queries.qstar ];
  Alcotest.(check bool) "tpch query rejected" true
    (match Queries.facebook_database small_fb Queries.q1 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_facebook_qw_path_vs_tsens () =
  (* On real(istic) skewed data the two algorithms agree exactly. *)
  let db = Queries.facebook_database small_fb Queries.qw in
  let path = Path_sens.local_sensitivity Queries.qw db in
  let tsens = Tsens.local_sensitivity Queries.qw db in
  Alcotest.(check (list (pair string int)))
    "per relation" path.Sens_types.per_relation tsens.Sens_types.per_relation;
  Alcotest.(check bool) "positive" true (path.Sens_types.local_sensitivity > 0)

let test_facebook_q4_plans_agree () =
  let db = Queries.facebook_database small_fb Queries.q4 in
  let manual = Tsens.local_sensitivity ~plans:[ Queries.q4_ghd ] Queries.q4 db in
  let auto = Tsens.local_sensitivity Queries.q4 db in
  Alcotest.(check (list (pair string int)))
    "per relation" manual.Sens_types.per_relation auto.Sens_types.per_relation

let test_facebook_small_naive_check () =
  (* A genuinely tiny ego-net where the exhaustive oracle is feasible. *)
  let tiny =
    Facebook.generate { Facebook.nodes = 8; edges = 12; circles = 6; seed = 3 }
  in
  List.iter
    (fun (cq, plans) ->
      let db = Queries.facebook_database tiny cq in
      let tsens = Tsens.local_sensitivity ~plans cq db in
      let naive = Naive.local_sensitivity ~max_candidates:100_000 cq db in
      Alcotest.(check (list (pair string int)))
        (Cq.name cq ^ " per relation")
        naive.Sens_types.per_relation tsens.Sens_types.per_relation)
    [
      (Queries.q4, [ Queries.q4_ghd ]);
      (Queries.qo, [ Queries.qo_ghd ]);
      (Queries.qstar, []);
    ]

(* ------------------------------------------------------------------ *)
(* TPC-H end-to-end sensitivity sanity *)

let test_q1_path_vs_tsens () =
  let db = Tpch.generate ~scale:tiny_scale () in
  let path = Path_sens.local_sensitivity Queries.q1 db in
  let tsens = Tsens.local_sensitivity Queries.q1 db in
  Alcotest.(check (list (pair string int)))
    "per relation" path.Sens_types.per_relation tsens.Sens_types.per_relation

let test_q2_elastic_bounds () =
  let db = Tpch.generate ~scale:tiny_scale () in
  let tsens = Tsens.local_sensitivity Queries.q2 db in
  let elastic = Elastic.local_sensitivity Queries.q2 db in
  Alcotest.(check bool) "elastic is an upper bound" true
    (elastic.Sens_types.local_sensitivity
    >= tsens.Sens_types.local_sensitivity);
  Alcotest.(check bool) "tsens positive" true
    (tsens.Sens_types.local_sensitivity > 0)

(* ------------------------------------------------------------------ *)
(* SAT reduction *)

let lit ?(negated = false) var = { Sat_reduction.var; negated }

let test_sat_known_formulas () =
  let sat_f = Sat_reduction.make_formula ~vars:2 [ [ lit 0; lit 1 ] ] in
  Alcotest.(check bool) "x0 or x1 satisfiable" true
    (Sat_reduction.satisfiable_via_sensitivity sat_f);
  let unsat_f =
    Sat_reduction.make_formula ~vars:1 [ [ lit 0 ]; [ lit ~negated:true 0 ] ]
  in
  Alcotest.(check bool) "x and not x unsatisfiable" false
    (Sat_reduction.satisfiable_via_sensitivity unsat_f);
  Alcotest.(check bool) "oracle agrees on unsat" false
    (Sat_reduction.brute_force_sat unsat_f)

let test_sat_instance_shape () =
  let f =
    Sat_reduction.make_formula ~vars:4
      [ [ lit 0; lit ~negated:true 1; lit 2 ]; [ lit 1; lit 2; lit 3 ] ]
  in
  let cq, db = Sat_reduction.to_instance f in
  Alcotest.(check int) "s+1 atoms" 3 (Cq.atom_count cq);
  Alcotest.(check bool) "acyclic" true (Gyo.is_acyclic cq);
  Alcotest.(check bool) "R0 empty" true
    (Relation.is_empty (Database.find "R0" db));
  (* A 3-literal clause keeps 7 of 8 assignments. *)
  Alcotest.(check int) "7 rows" 7
    (Relation.cardinality (Database.find "C1" db))

let test_sat_witness_decodes () =
  let f =
    Sat_reduction.make_formula ~vars:3
      [ [ lit 0; lit 1 ]; [ lit ~negated:true 0; lit 2 ] ]
  in
  let cq, db = Sat_reduction.to_instance f in
  let result = Tsens.local_sensitivity cq db in
  match result.Sens_types.witness with
  | None -> Alcotest.fail "satisfiable formula must have a witness"
  | Some w ->
      Alcotest.(check string) "witness inserts into R0" "R0"
        w.Sens_types.relation;
      Alcotest.(check bool) "decodes to satisfying assignment" true
        (Sat_reduction.assignment_of_witness f w <> None)

let test_sat_validation () =
  Alcotest.(check bool) "out of range" true
    (match Sat_reduction.make_formula ~vars:1 [ [ lit 3 ] ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "empty clause" true
    (match Sat_reduction.make_formula ~vars:1 [ [] ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let prop_sat_reduction_correct =
  let gen =
    QCheck2.Gen.(
      int_range 3 5 >>= fun vars ->
      int_range 1 8 >>= fun clauses ->
      int_bound 10_000 >>= fun seed ->
      return (vars, clauses, seed))
  in
  Tgen.qtest ~count:60 "LS > 0 iff satisfiable (Theorem 3.2)" gen
    (fun (v, c, s) -> Printf.sprintf "vars=%d clauses=%d seed=%d" v c s)
    (fun (vars, clauses, seed) ->
      let f = Sat_reduction.random_formula (Prng.create seed) ~vars ~clauses in
      Bool.equal
        (Sat_reduction.satisfiable_via_sensitivity f)
        (Sat_reduction.brute_force_sat f))

(* ------------------------------------------------------------------ *)
(* DP setups *)

let test_dp_setups_consistent () =
  List.iter
    (fun (label, setup) ->
      Alcotest.(check string) "label matches key" label setup.Queries.label;
      Alcotest.(check bool)
        (label ^ " private relation in query")
        true
        (Cq.mem_relation setup.Queries.query setup.Queries.private_relation);
      List.iter
        (fun (rel, key) ->
          Alcotest.(check bool)
            (label ^ " cascade relation in query")
            true
            (Cq.mem_relation setup.Queries.query rel);
          Alcotest.(check bool)
            (label ^ " cascade key in relation")
            true
            (Schema.mem key (Cq.schema_of setup.Queries.query rel)))
        setup.Queries.cascade)
    Queries.dp_setups

let () =
  Alcotest.run "workload"
    [
      ( "tpch",
        [
          Alcotest.test_case "sizes" `Quick test_tpch_sizes;
          Alcotest.test_case "cardinalities" `Quick test_tpch_cardinalities;
          Alcotest.test_case "deterministic" `Quick test_tpch_deterministic;
          Alcotest.test_case "referential integrity" `Quick
            test_tpch_referential_integrity;
          Alcotest.test_case "query schemas" `Quick
            test_tpch_queries_match_schema;
        ] );
      ( "queries",
        [
          Alcotest.test_case "shapes" `Quick test_query_shapes;
          Alcotest.test_case "q3 ghd widths" `Quick test_q3_ghd_widths;
          Alcotest.test_case "q3 ghds agree" `Slow test_q3_ghds_agree;
          Alcotest.test_case "q1 path vs tsens" `Quick test_q1_path_vs_tsens;
          Alcotest.test_case "q2 elastic bound" `Quick test_q2_elastic_bounds;
        ] );
      ( "facebook",
        [
          Alcotest.test_case "tables populated" `Quick
            test_facebook_tables_populated;
          Alcotest.test_case "bidirected" `Quick test_facebook_bidirected;
          Alcotest.test_case "deterministic" `Quick test_facebook_deterministic;
          Alcotest.test_case "triangle table" `Quick
            test_facebook_triangle_table;
          Alcotest.test_case "databases match queries" `Quick
            test_facebook_databases_match_queries;
          Alcotest.test_case "qw path vs tsens" `Quick
            test_facebook_qw_path_vs_tsens;
          Alcotest.test_case "q4 plans agree" `Quick
            test_facebook_q4_plans_agree;
          Alcotest.test_case "tiny naive check" `Slow
            test_facebook_small_naive_check;
        ] );
      ( "sat",
        [
          Alcotest.test_case "known formulas" `Quick test_sat_known_formulas;
          Alcotest.test_case "instance shape" `Quick test_sat_instance_shape;
          Alcotest.test_case "witness decodes" `Quick test_sat_witness_decodes;
          Alcotest.test_case "validation" `Quick test_sat_validation;
          prop_sat_reduction_correct;
        ] );
      ( "dp_setups",
        [ Alcotest.test_case "consistency" `Quick test_dp_setups_consistent ]
      );
    ]
