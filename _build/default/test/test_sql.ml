(* Tests for the SQL front end: translation to CQs + constraints, and
   semantic agreement with the hand-built paper queries. *)

open Tsens_relational
open Tsens_query
open Tsens_sensitivity
open Tsens_workload

let tpch_catalog =
  [
    ("Region", [ "RK" ]);
    ("Nation", [ "RK"; "NK" ]);
    ("Customer", [ "NK"; "CK" ]);
    ("Orders", [ "CK"; "OK" ]);
    ("Supplier", [ "NK"; "SK" ]);
    ("Part", [ "PK" ]);
    ("Partsupp", [ "SK"; "PK" ]);
    ("Lineitem", [ "OK"; "SK"; "PK" ]);
  ]

let q1_sql =
  "SELECT COUNT(*) FROM Region r, Nation n, Customer c, Orders o, Lineitem l \
   WHERE r.RK = n.RK AND n.NK = c.NK AND c.CK = o.CK AND o.OK = l.OK"

let test_sql_q1_equivalent () =
  let t = Sql.translate ~catalog:tpch_catalog q1_sql in
  let cq = t.Sql.query in
  Alcotest.(check int) "no constraints" 0 (List.length t.Sql.constraints);
  Alcotest.(check bool) "no renamings needed" true
    (List.for_all (fun (_, pairs) -> pairs = []) t.Sql.renamings);
  Alcotest.(check (list string))
    "atoms in FROM order"
    [ "Region"; "Nation"; "Customer"; "Orders"; "Lineitem" ]
    (Cq.relation_names cq);
  (* Join variables inherited the column names, so the translated query
     is exactly q1 up to the head name. *)
  List.iter
    (fun r ->
      Alcotest.check Tgen.schema_testable (r ^ " schema")
        (Cq.schema_of Queries.q1 r) (Cq.schema_of cq r))
    (Cq.relation_names cq);
  (* And it evaluates identically. *)
  let db = Tpch.generate ~scale:0.0005 () in
  Alcotest.(check int)
    "same count"
    (Yannakakis.count Queries.q1 db)
    (Yannakakis.count cq db);
  let a = Tsens.local_sensitivity Queries.q1 db in
  let b = Tsens.local_sensitivity cq db in
  Alcotest.(check int)
    "same local sensitivity" a.Sens_types.local_sensitivity
    b.Sens_types.local_sensitivity

let test_sql_constraints () =
  let t =
    Sql.translate ~catalog:tpch_catalog
      "select count(*) from Customer c, Orders o where c.CK = o.CK and c.NK \
       = 7 and o.OK >= 100 and 5 > c.NK"
  in
  Alcotest.(check string)
    "constraints (with the flipped literal)" "NK = 7, OK >= 100, NK < 5"
    (Format.asprintf "%a" Constraints.pp_list t.Sql.constraints)

let test_sql_string_and_bool_literals () =
  let catalog = [ ("T", [ "name"; "active" ]) ] in
  let t =
    Sql.translate ~catalog
      "SELECT COUNT(*) FROM T WHERE name = 'alice' AND active = TRUE"
  in
  Alcotest.(check string)
    "literals" "name = alice, active = true"
    (Format.asprintf "%a" Constraints.pp_list t.Sql.constraints)

let test_sql_bare_columns () =
  (* Unambiguous bare columns resolve; ambiguous ones are rejected. *)
  let t =
    Sql.translate ~catalog:tpch_catalog
      "SELECT COUNT(*) FROM Region, Nation WHERE Region.RK = Nation.RK AND \
       NK = 3"
  in
  Alcotest.(check int) "two atoms" 2 (Cq.atom_count t.Sql.query);
  Alcotest.(check bool) "ambiguous bare column" true
    (match
       Sql.translate ~catalog:tpch_catalog
         "SELECT COUNT(*) FROM Customer, Orders WHERE CK = 1"
     with
    | exception Sql.Sql_error _ -> true
    | _ -> false)

let test_sql_unjoined_tables_cross () =
  (* No WHERE: column-name collisions get distinct variables, so the
     query is a cross product, not a natural join. *)
  let catalog = [ ("X", [ "A"; "B" ]); ("Y", [ "A"; "B" ]) ] in
  let t = Sql.translate ~catalog "SELECT COUNT(*) FROM X, Y" in
  let cq = t.Sql.query in
  Alcotest.(check bool) "schemas disjoint" true
    (Schema.disjoint (Cq.schema_of cq "X") (Cq.schema_of cq "Y"));
  let v = Value.int in
  let db =
    Database.of_list
      [
        ( "X",
          Relation.of_rows
            ~schema:(Schema.of_list [ "A"; "B" ])
            [ [ v 1; v 2 ]; [ v 3; v 4 ] ] );
        ( "Y",
          Relation.of_rows
            ~schema:(Schema.of_list [ "A"; "B" ])
            [ [ v 5; v 6 ]; [ v 7; v 8 ]; [ v 9; v 0 ] ] );
      ]
  in
  (* bind renames the stored columns to the query's variables. *)
  let db = Sql.bind t db in
  Alcotest.(check int) "2 x 3 cross product" 6 (Yannakakis.count cq db)

let test_sql_errors () =
  let fails sql =
    match Sql.translate ~catalog:tpch_catalog sql with
    | exception Sql.Sql_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unknown table" true
    (fails "SELECT COUNT(*) FROM Nowhere");
  Alcotest.(check bool) "self join" true
    (fails "SELECT COUNT(*) FROM Orders a, Orders b WHERE a.OK = b.OK");
  Alcotest.(check bool) "duplicate alias" true
    (fails "SELECT COUNT(*) FROM Orders x, Customer x");
  Alcotest.(check bool) "unknown column" true
    (fails "SELECT COUNT(*) FROM Orders o WHERE o.ZZ = 1");
  Alcotest.(check bool) "non-equality column join" true
    (fails "SELECT COUNT(*) FROM Orders o, Customer c WHERE o.CK < c.CK");
  Alcotest.(check bool) "two literals" true
    (fails "SELECT COUNT(*) FROM Orders WHERE 1 = 1");
  Alcotest.(check bool) "within-table equality" true
    (fails "SELECT COUNT(*) FROM Lineitem l WHERE l.SK = l.PK");
  Alcotest.(check bool) "count(1)" true (fails "SELECT COUNT(1) FROM Orders");
  Alcotest.(check bool) "trailing junk" true
    (fails "SELECT COUNT(*) FROM Orders; garbage");
  Alcotest.(check bool) "unterminated string" true
    (fails "SELECT COUNT(*) FROM Orders o WHERE o.OK = 'oops")

let test_sql_case_and_comments () =
  let t =
    Sql.translate ~catalog:tpch_catalog
      "select count(*) -- how many orders?\nfrom Orders as o;"
  in
  Alcotest.(check (list string))
    "atom" [ "Orders" ]
    (Cq.relation_names t.Sql.query)

let test_sql_catalog_of_database () =
  let db = Tpch.generate ~scale:0.0001 () in
  let catalog = Sql.catalog_of_database db in
  Alcotest.(check int) "eight tables" 8 (List.length catalog);
  Alcotest.(check (list string))
    "lineitem columns"
    [ "OK"; "SK"; "PK" ]
    (List.assoc "Lineitem" catalog);
  (* The derived catalog works for translation against the same db. *)
  let t = Sql.translate ~catalog q1_sql in
  Cq.check_database t.Sql.query (Sql.bind t db)

let test_sql_end_to_end_selection () =
  (* SQL selection → constraints → sensitivity analysis, cross-checked
     against the selection-aware oracle. *)
  let v = Value.int in
  let db =
    Database.of_list
      [
        ( "E1",
          Relation.of_rows
            ~schema:(Schema.of_list [ "src"; "dst" ])
            [ [ v 1; v 2 ]; [ v 2; v 3 ]; [ v 1; v 3 ] ] );
        ( "E2",
          Relation.of_rows
            ~schema:(Schema.of_list [ "src"; "dst" ])
            [ [ v 2; v 4 ]; [ v 3; v 4 ]; [ v 3; v 5 ] ] );
      ]
  in
  let t =
    Sql.translate
      ~catalog:(Sql.catalog_of_database db)
      "SELECT COUNT(*) FROM E1 a, E2 b WHERE a.dst = b.src AND b.dst != 5"
  in
  let cq = t.Sql.query in
  let db = Sql.bind t db in
  let selection = Option.get (Constraints.selection t.Sql.constraints) in
  let tsens = Tsens.local_sensitivity ~selection cq db in
  let naive = Naive.local_sensitivity ~selection cq db in
  Alcotest.(check int)
    "matches oracle" naive.Sens_types.local_sensitivity
    tsens.Sens_types.local_sensitivity;
  Alcotest.(check bool) "positive" true (tsens.Sens_types.local_sensitivity > 0)

let () =
  Alcotest.run "sql"
    [
      ( "translate",
        [
          Alcotest.test_case "q1 equivalence" `Quick test_sql_q1_equivalent;
          Alcotest.test_case "constraints" `Quick test_sql_constraints;
          Alcotest.test_case "string/bool literals" `Quick
            test_sql_string_and_bool_literals;
          Alcotest.test_case "bare columns" `Quick test_sql_bare_columns;
          Alcotest.test_case "cross product" `Quick
            test_sql_unjoined_tables_cross;
          Alcotest.test_case "errors" `Quick test_sql_errors;
          Alcotest.test_case "case and comments" `Quick
            test_sql_case_and_comments;
          Alcotest.test_case "catalog from database" `Quick
            test_sql_catalog_of_database;
          Alcotest.test_case "end-to-end selection" `Quick
            test_sql_end_to_end_selection;
        ] );
    ]
