(* Tests for the sensitivity core: the paper's worked examples as exact
   fixtures, plus differential testing of TSens against the naive
   Theorem-3.1 oracle, Algorithm 1, and the elastic baseline. *)

open Tsens_relational
open Tsens_query
open Tsens_sensitivity

let s = Value.str
let v = Value.int
let tup l = Tuple.of_list l
let schema l = Schema.of_list l

(* ------------------------------------------------------------------ *)
(* Fixtures: the paper's Figure 1 instance *)

let fig1_cq =
  Cq.make ~name:"fig1"
    [
      ("R1", [ "A"; "B"; "C" ]);
      ("R2", [ "A"; "B"; "D" ]);
      ("R3", [ "A"; "E" ]);
      ("R4", [ "B"; "F" ]);
    ]

let fig1_db =
  Database.of_list
    [
      ( "R1",
        Relation.of_rows ~schema:(schema [ "A"; "B"; "C" ])
          [
            [ s "a1"; s "b1"; s "c1" ];
            [ s "a1"; s "b2"; s "c1" ];
            [ s "a2"; s "b1"; s "c1" ];
          ] );
      ( "R2",
        Relation.of_rows ~schema:(schema [ "A"; "B"; "D" ])
          [ [ s "a1"; s "b1"; s "d1" ]; [ s "a2"; s "b2"; s "d2" ] ] );
      ( "R3",
        Relation.of_rows ~schema:(schema [ "A"; "E" ])
          [ [ s "a1"; s "e1" ]; [ s "a2"; s "e1" ]; [ s "a2"; s "e2" ] ] );
      ( "R4",
        Relation.of_rows ~schema:(schema [ "B"; "F" ])
          [ [ s "b1"; s "f1" ]; [ s "b2"; s "f1" ]; [ s "b2"; s "f2" ] ] );
    ]

(* The paper's Figure 3 path instance (the one whose T2 is shown). *)
let fig3_cq =
  Cq.make ~name:"path4"
    [
      ("R1", [ "A"; "B" ]);
      ("R2", [ "B"; "C" ]);
      ("R3", [ "C"; "D" ]);
      ("R4", [ "D"; "E" ]);
    ]

let fig3_db =
  Database.of_list
    [
      ( "R1",
        Relation.create ~schema:(schema [ "A"; "B" ])
          [
            (tup [ s "a1"; s "b1" ], 1);
            (tup [ s "a1"; s "b2" ], 1);
            (tup [ s "a2"; s "b2" ], 2);
          ] );
      ( "R2",
        Relation.create ~schema:(schema [ "B"; "C" ])
          [
            (tup [ s "b1"; s "c1" ], 1);
            (tup [ s "b1"; s "c2" ], 1);
            (tup [ s "b2"; s "c1" ], 2);
          ] );
      ( "R3",
        Relation.create ~schema:(schema [ "C"; "D" ])
          [
            (tup [ s "c1"; s "d1" ], 2);
            (tup [ s "c2"; s "d1" ], 1);
            (tup [ s "c2"; s "d2" ], 1);
          ] );
      ( "R4",
        Relation.create ~schema:(schema [ "D"; "E" ])
          [
            (tup [ s "d1"; s "e1" ], 1);
            (tup [ s "d1"; s "e2" ], 1);
            (tup [ s "d1"; s "e3" ], 1);
            (tup [ s "d2"; s "e4" ], 1);
          ] );
    ]

let per_relation_testable = Alcotest.(list (pair string int))

(* ------------------------------------------------------------------ *)
(* Worked example: Figure 1 *)

let test_fig1_tsens () =
  let a = Tsens.analyze fig1_cq fig1_db in
  let r = Tsens.result a in
  Alcotest.(check int) "LS" 4 r.Sens_types.local_sensitivity;
  Alcotest.(check int) "|Q(D)|" 1 (Tsens.output_size a);
  Alcotest.check per_relation_testable "per relation"
    [ ("R1", 4); ("R2", 2); ("R3", 1); ("R4", 1) ]
    r.Sens_types.per_relation;
  match r.Sens_types.witness with
  | None -> Alcotest.fail "expected a witness"
  | Some w ->
      Alcotest.(check string) "witness relation" "R1" w.Sens_types.relation;
      Alcotest.check Tgen.tuple_testable "witness tuple (Example 2.1)"
        (tup [ s "a2"; s "b2"; s "c1" ])
        w.Sens_types.tuple

let test_fig1_tuple_sensitivities () =
  let a = Tsens.analyze fig1_cq fig1_db in
  (* Example 2.1: removing (a1,b1,c1) from R1 changes the output by 1;
     (a2,b2,c1) has sensitivity 4. *)
  Alcotest.(check int) "delta of (a1,b1,c1)" 1
    (Tsens.tuple_sensitivity a "R1" (tup [ s "a1"; s "b1"; s "c1" ]));
  Alcotest.(check int) "delta of (a2,b2,c1)" 4
    (Tsens.tuple_sensitivity a "R1" (tup [ s "a2"; s "b2"; s "c1" ]));
  (* A tuple whose join keys appear nowhere has sensitivity 0. *)
  Alcotest.(check int) "unjoinable tuple" 0
    (Tsens.tuple_sensitivity a "R1" (tup [ s "zz"; s "zz"; s "zz" ]));
  Alcotest.check_raises "arity check"
    (Errors.Data_error "tuple (zz) does not match schema (A, B, C) of R1")
    (fun () -> ignore (Tsens.tuple_sensitivity a "R1" (tup [ s "zz" ])))

let test_fig1_matches_naive () =
  let tsens = Tsens.local_sensitivity fig1_cq fig1_db in
  let naive = Naive.local_sensitivity fig1_cq fig1_db in
  Alcotest.(check int)
    "LS agrees" naive.Sens_types.local_sensitivity
    tsens.Sens_types.local_sensitivity;
  Alcotest.check per_relation_testable "per relation agrees"
    naive.Sens_types.per_relation tsens.Sens_types.per_relation

let test_fig1_paper_join_tree_plan () =
  (* Running the DP over the paper's Figure 2 tree (R1 root) gives the
     same answer as the GYO-derived tree. *)
  let paper_tree =
    Join_tree.make fig1_cq ~root:"R1"
      ~parents:[ ("R2", "R1"); ("R3", "R1"); ("R4", "R1") ]
  in
  let with_plan =
    Tsens.local_sensitivity
      ~plans:[ Ghd.of_join_tree paper_tree ]
      fig1_cq fig1_db
  in
  let default = Tsens.local_sensitivity fig1_cq fig1_db in
  Alcotest.(check int)
    "LS agrees" default.Sens_types.local_sensitivity
    with_plan.Sens_types.local_sensitivity;
  Alcotest.check per_relation_testable "tables agree"
    default.Sens_types.per_relation with_plan.Sens_types.per_relation

(* ------------------------------------------------------------------ *)
(* Worked example: Figure 3 *)

let test_fig3_multiplicity_table () =
  let a = Tsens.analyze fig3_cq fig3_db in
  let t2 = Tsens.multiplicity_table a "R2" in
  (* The exact T2 of Figure 3. *)
  let expected =
    Relation.create ~schema:(schema [ "B"; "C" ])
      [
        (tup [ s "b1"; s "c1" ], 6);
        (tup [ s "b1"; s "c2" ], 4);
        (tup [ s "b2"; s "c1" ], 18);
        (tup [ s "b2"; s "c2" ], 12);
      ]
  in
  Alcotest.check Tgen.relation_semantic "T2" expected t2

let test_fig3_results () =
  let a = Tsens.analyze fig3_cq fig3_db in
  let r = Tsens.result a in
  Alcotest.(check int) "LS" 21 r.Sens_types.local_sensitivity;
  Alcotest.(check int) "|Q(D)|" 46 (Tsens.output_size a);
  Alcotest.check per_relation_testable "per relation"
    [ ("R1", 12); ("R2", 18); ("R3", 21); ("R4", 15) ]
    r.Sens_types.per_relation;
  match r.Sens_types.witness with
  | None -> Alcotest.fail "expected a witness"
  | Some w ->
      Alcotest.(check string) "witness in R3" "R3" w.Sens_types.relation;
      Alcotest.check Tgen.tuple_testable "witness (c1,d1)"
        (tup [ s "c1"; s "d1" ])
        w.Sens_types.tuple

let test_fig3_path_algorithm () =
  let path = Path_sens.local_sensitivity fig3_cq fig3_db in
  let tsens = Tsens.local_sensitivity fig3_cq fig3_db in
  Alcotest.(check int)
    "LS agrees" tsens.Sens_types.local_sensitivity
    path.Sens_types.local_sensitivity;
  Alcotest.check per_relation_testable "per relation agrees"
    tsens.Sens_types.per_relation path.Sens_types.per_relation;
  Alcotest.(check int) "Yannakakis count" 46 (Yannakakis.count fig3_cq fig3_db)

let test_example_4_1 () =
  (* Example 4.1's instance: removing R2(b1,c1) removes all 4 output
     tuples; inserting it when absent adds 4. *)
  let db =
    Database.of_list
      [
        ( "R1",
          Relation.of_rows ~schema:(schema [ "A"; "B" ])
            [ [ s "a1"; s "b1" ]; [ s "a2"; s "b1" ] ] );
        ( "R2",
          Relation.of_rows ~schema:(schema [ "B"; "C" ])
            [ [ s "b1"; s "c1" ]; [ s "b2"; s "c2" ] ] );
        ( "R3",
          Relation.of_rows ~schema:(schema [ "C"; "D" ])
            [ [ s "c1"; s "d1" ]; [ s "c1"; s "d2" ] ] );
        ( "R4",
          Relation.of_rows ~schema:(schema [ "D"; "E" ])
            [ [ s "d1"; s "e1" ]; [ s "d2"; s "e1" ] ] );
      ]
  in
  let a = Tsens.analyze fig3_cq db in
  Alcotest.(check int) "delta R2(b1,c1)" 4
    (Tsens.tuple_sensitivity a "R2" (tup [ s "b1"; s "c1" ]));
  Alcotest.(check int) "naive agrees" 4
    (Naive.tuple_sensitivity fig3_cq db "R2" (tup [ s "b1"; s "c1" ]))

(* ------------------------------------------------------------------ *)
(* Extensions: selections, disconnected queries, single atom *)

let test_selection () =
  (* Filtering R1 to B ≠ b2 invalidates the (a2,b2,c1) witness: tuples
     failing the predicate have sensitivity 0, and the other relations
     see the filtered R1. Hand-computed: LS = 2 at R2(a2,b1,·). *)
  let selection relation sch t =
    (not (String.equal relation "R1"))
    || not (Value.equal (Tuple.get t (Schema.index "B" sch)) (s "b2"))
  in
  let r = Tsens.local_sensitivity ~selection fig1_cq fig1_db in
  Alcotest.(check int) "LS" 2 r.Sens_types.local_sensitivity;
  Alcotest.check per_relation_testable "per relation"
    [ ("R1", 1); ("R2", 2); ("R3", 1); ("R4", 1) ]
    r.Sens_types.per_relation;
  (match r.Sens_types.witness with
  | Some w ->
      Alcotest.(check string) "witness relation" "R2" w.Sens_types.relation
  | None -> Alcotest.fail "expected witness");
  (* A failing tuple has sensitivity 0 even if its table entry is high. *)
  let a = Tsens.analyze ~selection fig1_cq fig1_db in
  Alcotest.(check int) "filtered tuple" 0
    (Tsens.tuple_sensitivity a "R1" (tup [ s "a2"; s "b2"; s "c1" ]))

let test_skip () =
  (* Skipped relations report the FK-superkey bound of 1 and carry no
     table; everything else is unaffected. *)
  let a = Tsens.analyze ~skip:[ "R3" ] fig1_cq fig1_db in
  let r = Tsens.result a in
  Alcotest.check per_relation_testable "per relation"
    [ ("R1", 4); ("R2", 2); ("R3", 1); ("R4", 1) ]
    r.Sens_types.per_relation;
  Alcotest.(check int) "LS unchanged" 4 r.Sens_types.local_sensitivity;
  Alcotest.check_raises "table of skipped relation"
    (Errors.Schema_error
       "the multiplicity table of R3 was skipped in this analysis")
    (fun () -> ignore (Tsens.multiplicity_table a "R3"));
  Alcotest.(check int) "other tables still there" 4
    (Relation.distinct_count (Tsens.multiplicity_table a "R2")
    + Relation.distinct_count (Tsens.multiplicity_table a "R4"));
  Alcotest.check_raises "unknown skip relation"
    (Errors.Schema_error "skip: relation R9 is not in query fig1") (fun () ->
      ignore (Tsens.analyze ~skip:[ "R9" ] fig1_cq fig1_db));
  (* Skipping everything still reports output size and all-ones. *)
  let all = Tsens.analyze ~skip:(Cq.relation_names fig1_cq) fig1_cq fig1_db in
  Alcotest.(check int) "output size" 1 (Tsens.output_size all);
  Alcotest.check per_relation_testable "all ones"
    [ ("R1", 1); ("R2", 1); ("R3", 1); ("R4", 1) ]
    (Tsens.result all).Sens_types.per_relation

let test_disconnected () =
  let cq =
    Cq.make ~name:"disc"
      [ ("R1", [ "A"; "B" ]); ("R2", [ "B"; "C" ]); ("R3", [ "X"; "Y" ]) ]
  in
  let db =
    Database.of_list
      [
        ( "R1",
          Relation.of_rows ~schema:(schema [ "A"; "B" ])
            [ [ v 1; v 1 ]; [ v 1; v 2 ] ] );
        ( "R2",
          Relation.create ~schema:(schema [ "B"; "C" ])
            [ (tup [ v 1; v 5 ], 2); (tup [ v 2; v 5 ], 1) ] );
        ( "R3",
          Relation.of_rows ~schema:(schema [ "X"; "Y" ])
            [ [ v 7; v 7 ]; [ v 8; v 8 ] ] );
      ]
  in
  let a = Tsens.analyze cq db in
  let r = Tsens.result a in
  Alcotest.(check int) "|Q(D)| = 3*2" 6 (Tsens.output_size a);
  Alcotest.check per_relation_testable "per relation"
    [ ("R1", 4); ("R2", 2); ("R3", 3) ]
    r.Sens_types.per_relation;
  Alcotest.(check int) "LS" 4 r.Sens_types.local_sensitivity;
  let naive = Naive.local_sensitivity cq db in
  Alcotest.(check int)
    "naive agrees" r.Sens_types.local_sensitivity
    naive.Sens_types.local_sensitivity;
  Alcotest.check per_relation_testable "naive per relation"
    naive.Sens_types.per_relation r.Sens_types.per_relation

let test_single_atom () =
  let cq = Cq.make [ ("R", [ "A"; "B" ]) ] in
  let db =
    Database.of_list
      [ ("R", Relation.of_rows ~schema:(schema [ "A"; "B" ]) [ [ v 1; v 2 ] ]) ]
  in
  let r = Tsens.local_sensitivity cq db in
  Alcotest.(check int) "LS is 1" 1 r.Sens_types.local_sensitivity;
  let naive = Naive.local_sensitivity cq db in
  Alcotest.(check int) "naive agrees" 1 naive.Sens_types.local_sensitivity;
  let path = Path_sens.local_sensitivity cq db in
  Alcotest.(check int) "path agrees" 1 path.Sens_types.local_sensitivity;
  (* Even on an empty relation: inserting any tuple adds one output row. *)
  let empty_db =
    Database.of_list [ ("R", Relation.empty (schema [ "A"; "B" ])) ]
  in
  let r0 = Tsens.local_sensitivity cq empty_db in
  Alcotest.(check int) "LS on empty" 1 r0.Sens_types.local_sensitivity

(* ------------------------------------------------------------------ *)
(* Cyclic queries through GHDs *)

let triangle_cq =
  Cq.make ~name:"triangle"
    [ ("R1", [ "A"; "B" ]); ("R2", [ "B"; "C" ]); ("R3", [ "C"; "A" ]) ]

let triangle_db rows1 rows2 rows3 =
  let edge name attrs rows =
    (name, Relation.of_rows ~schema:(schema attrs) rows)
  in
  Database.of_list
    [
      edge "R1" [ "A"; "B" ] rows1;
      edge "R2" [ "B"; "C" ] rows2;
      edge "R3" [ "C"; "A" ] rows3;
    ]

let test_triangle_ghd () =
  let db =
    triangle_db
      [ [ v 1; v 2 ]; [ v 1; v 3 ] ]
      [ [ v 2; v 4 ]; [ v 3; v 4 ]; [ v 3; v 5 ] ]
      [ [ v 4; v 1 ]; [ v 5; v 1 ] ]
  in
  let auto = Tsens.local_sensitivity triangle_cq db in
  let naive = Naive.local_sensitivity triangle_cq db in
  Alcotest.(check int)
    "auto GHD matches naive" naive.Sens_types.local_sensitivity
    auto.Sens_types.local_sensitivity;
  Alcotest.check per_relation_testable "per relation"
    naive.Sens_types.per_relation auto.Sens_types.per_relation;
  (* The paper's Figure 5b decomposition {R1R2(A,B,C), R3(C,A)} gives the
     same answer. *)
  let manual =
    Ghd.make triangle_cq
      ~bags:[ ("R1R2", [ "R1"; "R2" ]); ("R3", [ "R3" ]) ]
      ~root:"R1R2"
      ~parents:[ ("R3", "R1R2") ]
  in
  let with_manual =
    Tsens.local_sensitivity ~plans:[ manual ] triangle_cq db
  in
  Alcotest.check per_relation_testable "manual GHD agrees"
    auto.Sens_types.per_relation with_manual.Sens_types.per_relation

(* ------------------------------------------------------------------ *)
(* Property-based differential testing *)

(* A catalogue of query shapes covering path / doubly-acyclic / acyclic /
   cyclic / disconnected structure. *)
let shape_catalogue =
  [
    Cq.make ~name:"single" [ ("R1", [ "A"; "B" ]) ];
    Cq.make ~name:"path2" [ ("R1", [ "A"; "B" ]); ("R2", [ "B"; "C" ]) ];
    fig3_cq;
    fig1_cq;
    triangle_cq;
    Cq.make ~name:"square"
      [
        ("R1", [ "A"; "B" ]);
        ("R2", [ "B"; "C" ]);
        ("R3", [ "C"; "D" ]);
        ("R4", [ "D"; "A" ]);
      ];
    Cq.make ~name:"star"
      [
        ("Rt", [ "A"; "B"; "C" ]);
        ("R1", [ "A"; "B" ]);
        ("R2", [ "B"; "C" ]);
        ("R3", [ "C"; "A" ]);
      ];
    Cq.make ~name:"disc"
      [ ("R1", [ "A"; "B" ]); ("R2", [ "B"; "C" ]); ("R3", [ "X"; "Y" ]) ];
  ]

let instance_gen =
  QCheck2.Gen.(
    oneofl shape_catalogue >>= fun cq ->
    let atom_gen atom =
      let arity = Schema.arity atom.Cq.schema in
      list_size (int_range 0 5)
        (pair (map Tuple.of_list (list_repeat arity (map Value.int (int_range 0 3))))
           (int_range 1 2))
      >>= fun rows ->
      return (atom.Cq.relation, Relation.create ~schema:atom.Cq.schema rows)
    in
    flatten_l (List.map atom_gen (Cq.atoms cq)) >>= fun rels ->
    return (cq, Database.of_list rels))

let print_instance (cq, db) =
  Format.asprintf "%a@.%a" Cq.pp cq Database.pp db

let prop_tsens_matches_naive =
  Tgen.qtest ~count:120 "TSens = naive oracle" instance_gen print_instance
    (fun (cq, db) ->
      let tsens = Tsens.local_sensitivity cq db in
      let naive = Naive.local_sensitivity cq db in
      tsens.Sens_types.local_sensitivity = naive.Sens_types.local_sensitivity
      && tsens.Sens_types.per_relation = naive.Sens_types.per_relation)

let prop_witness_attains_ls =
  Tgen.qtest ~count:120 "witness sensitivity equals LS" instance_gen
    print_instance (fun (cq, db) ->
      let r = Tsens.local_sensitivity cq db in
      match r.Sens_types.witness with
      | None -> r.Sens_types.local_sensitivity = 0
      | Some w ->
          Naive.tuple_sensitivity cq db w.Sens_types.relation
            w.Sens_types.tuple
          = r.Sens_types.local_sensitivity)

let prop_path_matches_tsens =
  Tgen.qtest ~count:120 "Algorithm 1 = Algorithm 2 on paths" instance_gen
    print_instance (fun (cq, db) ->
      match Classify.path_order cq with
      | None -> true
      | Some _ ->
          let path = Path_sens.local_sensitivity cq db in
          let tsens = Tsens.local_sensitivity cq db in
          path.Sens_types.local_sensitivity
          = tsens.Sens_types.local_sensitivity
          && path.Sens_types.per_relation = tsens.Sens_types.per_relation)

let prop_elastic_upper_bounds_tsens =
  Tgen.qtest ~count:120 "elastic >= TSens" instance_gen print_instance
    (fun (cq, db) ->
      let elastic = Elastic.local_sensitivity cq db in
      let tsens = Tsens.local_sensitivity cq db in
      elastic.Sens_types.local_sensitivity
      >= tsens.Sens_types.local_sensitivity
      && List.for_all2
           (fun (r1, e) (r2, t) -> String.equal r1 r2 && e >= t)
           elastic.Sens_types.per_relation tsens.Sens_types.per_relation)

let prop_yannakakis_count_exact =
  Tgen.qtest ~count:120 "Yannakakis count = |join|" instance_gen
    print_instance (fun (cq, db) ->
      Yannakakis.count cq db
      = Relation.cardinality (Yannakakis.output cq db))

let prop_output_size_byproduct =
  Tgen.qtest ~count:120 "analysis output size = |Q(D)|" instance_gen
    print_instance (fun (cq, db) ->
      Tsens.output_size (Tsens.analyze cq db) = Yannakakis.count cq db)

let prop_selection_never_increases =
  Tgen.qtest ~count:120 "selection only lowers sensitivity" instance_gen
    print_instance (fun (cq, db) ->
      (* Keep tuples whose first value is even. *)
      let selection _rel _schema t =
        match Value.as_int (Tuple.get t 0) with
        | Some n -> n mod 2 = 0
        | None -> true
      in
      let filtered = Tsens.local_sensitivity ~selection cq db in
      let plain = Tsens.local_sensitivity cq db in
      filtered.Sens_types.local_sensitivity
      <= plain.Sens_types.local_sensitivity)

let prop_selection_matches_naive =
  (* Random constraints on *shared* attributes of random instances: the
     DP with selection must agree with the selection-aware oracle.
     (Constraints on lonely attributes can make the DP's witness search
     conservative — see the Tsens documentation.) *)
  let gen =
    QCheck2.Gen.(
      instance_gen >>= fun (cq, db) ->
      match Cq.shared_vars cq with
      | [] -> return (cq, db, []) (* single-atom shape: nothing to constrain *)
      | shared ->
      let attr_gen = oneofl shared in
      let op_gen =
        oneofl
          Tsens_query.Constraints.[ Eq; Neq; Lt; Le; Gt; Ge ]
      in
      list_size (int_range 1 2)
        (attr_gen >>= fun var ->
         op_gen >>= fun op ->
         int_range 0 3 >>= fun n ->
         return { Constraints.var; op; value = Value.int n })
      >>= fun cs -> return (cq, db, cs))
  in
  Tgen.qtest ~count:100 "selection: TSens = naive oracle" gen
    (fun (cq, db, cs) ->
      Format.asprintf "%a@.%a@.where %a" Cq.pp cq Database.pp db
        Constraints.pp_list cs)
    (fun (cq, db, cs) ->
      match Constraints.selection cs with
      | None -> true
      | Some selection ->
          let tsens = Tsens.local_sensitivity ~selection cq db in
          let naive = Naive.local_sensitivity ~selection cq db in
          tsens.Sens_types.local_sensitivity
          = naive.Sens_types.local_sensitivity
          && tsens.Sens_types.per_relation = naive.Sens_types.per_relation)

let prop_tables_entrywise_correct =
  Tgen.qtest ~count:60 "table entries = naive tuple sensitivity"
    instance_gen print_instance (fun (cq, db) ->
      (* Spot-check every multiplicity-table entry of the first relation
         against direct re-evaluation. *)
      let a = Tsens.analyze cq db in
      let relation = List.hd (Cq.relation_names cq) in
      let table = Tsens.multiplicity_table a relation in
      Relation.fold
        (fun row cnt acc ->
          acc
          &&
          let full = Tsens.witness_tuple a relation row in
          Naive.tuple_sensitivity cq db relation full = cnt)
        table true)

(* ------------------------------------------------------------------ *)
(* Random tree-shaped queries: structural coverage beyond the fixed
   catalogue. Each atom attaches to a random earlier atom sharing a
   random non-empty subset of its attributes plus fresh ones, so the
   query is acyclic and connected by construction. *)

let random_acyclic_instance_gen =
  QCheck2.Gen.(
    int_range 2 4 >>= fun atom_count ->
    let fresh_counter = ref 0 in
    let fresh () =
      incr fresh_counter;
      Printf.sprintf "X%d" !fresh_counter
    in
    let rec build atoms i =
      if i >= atom_count then return (List.rev atoms)
      else
        int_range 0 (i - 1) >>= fun parent_ix ->
        let _, parent_attrs = List.nth atoms (i - 1 - parent_ix) in
        (* non-empty random subset of the parent's attributes *)
        list_repeat (List.length parent_attrs) bool >>= fun mask ->
        let inherited =
          List.filteri (fun j _ -> List.nth mask j) parent_attrs
        in
        let inherited =
          if inherited = [] then [ List.hd parent_attrs ] else inherited
        in
        int_range 0 2 >>= fun fresh_count ->
        let attrs = inherited @ List.init fresh_count (fun _ -> fresh ()) in
        build ((Printf.sprintf "T%d" i, attrs) :: atoms) (i + 1)
    in
    int_range 1 3 >>= fun root_arity ->
    let root = ("T0", List.init root_arity (fun _ -> fresh ())) in
    build [ root ] 1 >>= fun atoms ->
    let cq = Cq.make ~name:"rand" atoms in
    let atom_gen atom =
      let arity = Schema.arity atom.Cq.schema in
      list_size (int_range 0 4)
        (pair
           (map Tuple.of_list
              (list_repeat arity (map Value.int (int_range 0 2))))
           (int_range 1 2))
      >>= fun rows ->
      return (atom.Cq.relation, Relation.create ~schema:atom.Cq.schema rows)
    in
    flatten_l (List.map atom_gen (Cq.atoms cq)) >>= fun rels ->
    return (cq, Database.of_list rels))

let prop_random_trees_acyclic =
  Tgen.qtest ~count:150 "random tree queries are acyclic"
    random_acyclic_instance_gen print_instance (fun (cq, _) ->
      Gyo.is_acyclic cq && Join_tree.of_cq cq <> None)

let prop_random_trees_match_naive =
  Tgen.qtest ~count:100 "random tree queries: TSens = naive + witness"
    random_acyclic_instance_gen print_instance (fun (cq, db) ->
      let tsens = Tsens.local_sensitivity cq db in
      let naive = Naive.local_sensitivity cq db in
      tsens.Sens_types.per_relation = naive.Sens_types.per_relation
      && tsens.Sens_types.local_sensitivity
         = naive.Sens_types.local_sensitivity
      &&
      match tsens.Sens_types.witness with
      | None -> tsens.Sens_types.local_sensitivity = 0
      | Some w ->
          Naive.tuple_sensitivity cq db w.Sens_types.relation
            w.Sens_types.tuple
          = tsens.Sens_types.local_sensitivity)

let prop_random_trees_parser_round_trip =
  Tgen.qtest ~count:150 "datalog rendering parses back"
    random_acyclic_instance_gen print_instance (fun (cq, _) ->
      Cq.equal cq (Parser.parse (Cq.to_string cq)))

(* ------------------------------------------------------------------ *)
(* Top-sensitive enumeration and statistics *)

let test_top_sensitive_fig3 () =
  (* T2's four entries (18, 12, 6, 4) come out heaviest first, extended
     over R2's atom schema. *)
  let a = Tsens.analyze fig3_cq fig3_db in
  let top = Tsens.top_sensitive a "R2" 3 in
  Alcotest.(check (list int)) "counts" [ 18; 12; 6 ] (List.map snd top);
  Alcotest.check Tgen.tuple_testable "heaviest tuple"
    (tup [ s "b2"; s "c1" ])
    (fst (List.hd top));
  Alcotest.(check int) "asking beyond the table" 4
    (List.length (Tsens.top_sensitive a "R2" 99));
  Alcotest.(check (list int)) "zero" [] (List.map snd (Tsens.top_sensitive a "R2" 0));
  Alcotest.(check bool) "negative raises" true
    (match Tsens.top_sensitive a "R2" (-1) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let prop_top_sensitive_matches_table =
  Tgen.qtest ~count:80 "top_sensitive = sorted multiplicity table"
    instance_gen print_instance (fun (cq, db) ->
      let a = Tsens.analyze cq db in
      List.for_all
        (fun relation ->
          let table = Tsens.multiplicity_table a relation in
          let expected =
            let rows = Array.copy (Relation.rows table) in
            Array.sort
              (fun (t1, c1) (t2, c2) ->
                match compare c2 c1 with 0 -> Tuple.compare t1 t2 | c -> c)
              rows;
            Array.to_list rows
            |> List.filteri (fun i _ -> i < 5)
            |> List.map snd
          in
          let got = List.map snd (Tsens.top_sensitive a relation 5) in
          got = expected)
        (Cq.relation_names cq))

let test_statistics_fig3 () =
  let a = Tsens.analyze fig3_cq fig3_db in
  let node_stats, table_stats = Tsens.statistics a in
  Alcotest.(check int) "four nodes" 4 (List.length node_stats);
  Alcotest.(check int) "four tables" 4 (List.length table_stats);
  Alcotest.(check bool) "interior tables factored" true
    (List.exists (fun t -> t.Tsens.factored) table_stats);
  List.iter
    (fun ns ->
      Alcotest.(check bool)
        (ns.Tsens.bag ^ " botjoin computed")
        true
        (ns.Tsens.botjoin_rows >= 0 && ns.Tsens.topjoin_rows >= 0))
    node_stats

(* ------------------------------------------------------------------ *)
(* Top-k approximation *)

let acyclic_only cq =
  List.for_all (fun c -> Gyo.is_acyclic c) (Cq.components cq)

let prop_approx_upper_bounds_tsens =
  Tgen.qtest ~count:120 "top-k approx >= TSens" instance_gen print_instance
    (fun (cq, db) ->
      if not (acyclic_only cq) then true
      else
        let approx = Approx.local_sensitivity ~k:2 cq db in
        let tsens = Tsens.local_sensitivity cq db in
        List.for_all2
          (fun (r1, a) (r2, t) -> String.equal r1 r2 && a >= t)
          approx.Sens_types.per_relation tsens.Sens_types.per_relation)

let prop_approx_exact_with_large_k =
  Tgen.qtest ~count:120 "top-k approx with huge k is exact" instance_gen
    print_instance (fun (cq, db) ->
      if not (acyclic_only cq) then true
      else
        let approx = Approx.local_sensitivity ~k:1_000_000 cq db in
        let tsens = Tsens.local_sensitivity cq db in
        approx.Sens_types.per_relation = tsens.Sens_types.per_relation)

let test_approx_compresses () =
  let exact, compressed = Approx.intermediate_sizes ~k:1 fig3_cq fig3_db in
  Alcotest.(check bool) "compression shrinks tables" true (compressed < exact);
  Alcotest.(check bool) "still an upper bound" true
    ((Approx.local_sensitivity ~k:1 fig3_cq fig3_db).Sens_types
       .local_sensitivity >= 21)

let test_approx_rejects_cyclic_and_bad_k () =
  Alcotest.(check bool) "cyclic raises" true
    (match
       Approx.local_sensitivity ~k:4 triangle_cq
         (triangle_db [ [ v 1; v 2 ] ] [ [ v 2; v 3 ] ] [ [ v 3; v 1 ] ])
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "k < 1 raises" true
    (match Approx.local_sensitivity ~k:0 fig3_cq fig3_db with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Naive-specific behaviour *)

let test_naive_candidate_guard () =
  (* Representative domains grow multiplicatively; the guard refuses. *)
  let cq = Cq.make [ ("R1", [ "A"; "B" ]); ("R2", [ "A"; "B" ]) ] in
  let rows = List.init 20 (fun i -> [ v i; v (i + 100) ]) in
  let db =
    Database.of_list
      [
        ("R1", Relation.of_rows ~schema:(schema [ "A"; "B" ]) rows);
        ("R2", Relation.of_rows ~schema:(schema [ "A"; "B" ]) rows);
      ]
  in
  Alcotest.(check bool) "guard fires" true
    (match Naive.local_sensitivity ~max_candidates:10 cq db with
    | exception Errors.Data_error _ -> true
    | _ -> false)

let test_representative_domain () =
  let dom = Naive.representative_domain fig1_cq fig1_db "R1" in
  (* A ∈ {a1,a2} (active in R2 and R3), B ∈ {b1,b2} (R2 and R4),
     C lonely → single value c1: 4 candidates. *)
  Alcotest.(check int) "size" 4 (List.length dom);
  Alcotest.(check bool) "(a2,b2,c1) present" true
    (List.exists (Tuple.equal (tup [ s "a2"; s "b2"; s "c1" ])) dom)

let test_elastic_fig1 () =
  (* Elastic never undershoots TSens and reports no witness. *)
  let e = Elastic.local_sensitivity fig1_cq fig1_db in
  Alcotest.(check bool) "upper bound" true
    (e.Sens_types.local_sensitivity >= 4);
  Alcotest.(check bool) "no witness" true (e.Sens_types.witness = None)

let () =
  Alcotest.run "sensitivity"
    [
      ( "figure1",
        [
          Alcotest.test_case "tsens result" `Quick test_fig1_tsens;
          Alcotest.test_case "tuple sensitivities" `Quick
            test_fig1_tuple_sensitivities;
          Alcotest.test_case "matches naive" `Quick test_fig1_matches_naive;
          Alcotest.test_case "paper join tree plan" `Quick
            test_fig1_paper_join_tree_plan;
        ] );
      ( "figure3",
        [
          Alcotest.test_case "T2 table" `Quick test_fig3_multiplicity_table;
          Alcotest.test_case "results" `Quick test_fig3_results;
          Alcotest.test_case "path algorithm" `Quick test_fig3_path_algorithm;
          Alcotest.test_case "example 4.1" `Quick test_example_4_1;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "selection" `Quick test_selection;
          Alcotest.test_case "skip" `Quick test_skip;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "single atom" `Quick test_single_atom;
          Alcotest.test_case "triangle ghd" `Quick test_triangle_ghd;
        ] );
      ( "properties",
        [
          prop_tsens_matches_naive;
          prop_witness_attains_ls;
          prop_path_matches_tsens;
          prop_elastic_upper_bounds_tsens;
          prop_yannakakis_count_exact;
          prop_output_size_byproduct;
          prop_selection_never_increases;
          prop_selection_matches_naive;
          prop_tables_entrywise_correct;
        ] );
      ( "random_trees",
        [
          prop_random_trees_acyclic;
          prop_random_trees_match_naive;
          prop_random_trees_parser_round_trip;
        ] );
      ( "enumeration",
        [
          Alcotest.test_case "top sensitive fig3" `Quick
            test_top_sensitive_fig3;
          prop_top_sensitive_matches_table;
          Alcotest.test_case "statistics fig3" `Quick test_statistics_fig3;
        ] );
      ( "approx",
        [
          prop_approx_upper_bounds_tsens;
          prop_approx_exact_with_large_k;
          Alcotest.test_case "compresses" `Quick test_approx_compresses;
          Alcotest.test_case "rejects cyclic and bad k" `Quick
            test_approx_rejects_cyclic_and_bad_k;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "naive candidate guard" `Quick
            test_naive_candidate_guard;
          Alcotest.test_case "representative domain" `Quick
            test_representative_domain;
          Alcotest.test_case "elastic fig1" `Quick test_elastic_fig1;
        ] );
    ]
