test/tgen.ml: Alcotest Array Format List QCheck2 QCheck_alcotest Relation Schema Tsens_relational Tuple Value
