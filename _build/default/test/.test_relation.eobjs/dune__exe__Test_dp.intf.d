test/test_dp.mli:
