test/test_relation.ml: Alcotest Array Attr Count Csv Database Errors Filename Fun Heap Index Int Join List Prng QCheck2 Relation Schema String Sys Tgen Tsens_relational Tuple Value
