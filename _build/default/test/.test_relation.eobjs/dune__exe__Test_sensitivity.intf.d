test/test_sensitivity.mli:
