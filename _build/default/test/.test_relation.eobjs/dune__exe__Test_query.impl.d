test/test_query.ml: Alcotest Classify Constraints Cq Database Errors Format Ghd Gyo Join_tree List Option Parser Relation Schema String Tgen Tsens_query Tsens_relational Tuple Value
