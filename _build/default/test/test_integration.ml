(* End-to-end integration tests across layers: datalog text → parsed
   query → generated or CSV-round-tripped data → sensitivity analysis →
   truncation → DP release; plus whole-pipeline determinism. *)

open Tsens_relational
open Tsens_query
open Tsens_sensitivity
open Tsens_dp
open Tsens_workload

(* ------------------------------------------------------------------ *)
(* Parsed query + generated TPC-H data, all the way to a DP release. *)

let test_parsed_query_pipeline () =
  let cq =
    Parser.parse
      "Trips(*) :- Region(RK), Nation(RK,NK), Customer(NK,CK), \
       Orders(CK,OK), Lineitem(OK,SK,PK)."
  in
  Alcotest.(check bool) "parses to q1's structure" true
    (Classify.path_order cq <> None);
  let db = Tpch.generate ~scale:0.0005 () in
  let analysis = Tsens.analyze cq db in
  let result = Tsens.result analysis in
  Alcotest.(check bool) "LS positive" true
    (result.Sens_types.local_sensitivity > 0);
  (* The same query through Algorithm 1 and the elastic bound. *)
  let path = Path_sens.local_sensitivity cq db in
  Alcotest.(check int)
    "path agrees" result.Sens_types.local_sensitivity
    path.Sens_types.local_sensitivity;
  let elastic = Elastic.local_sensitivity cq db in
  Alcotest.(check bool) "elastic dominates" true
    (elastic.Sens_types.local_sensitivity
    >= result.Sens_types.local_sensitivity);
  (* DP release with a generous budget is accurate. *)
  let config =
    {
      (Mechanism.default_config ~ell:200 ~private_relation:"Customer") with
      Mechanism.epsilon = 1e6;
    }
  in
  let report = Mechanism.run_with_analysis (Prng.create 3) config analysis in
  Alcotest.(check bool) "release near truth" true
    (Report.relative_error report < 0.01)

(* ------------------------------------------------------------------ *)
(* CSV round trip of a whole instance preserves every analysis output. *)

let test_csv_instance_round_trip () =
  let cq = Queries.q2 in
  let db = Tpch.generate ~scale:0.0005 () in
  let dir = Filename.temp_file "tsens_it" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let db' =
        List.fold_left
          (fun acc name ->
            let path = Filename.concat dir (name ^ ".csv") in
            Csv.write_file path (Database.find name db);
            Database.add ~name (Csv.read_file path) acc)
          Database.empty (Cq.relation_names cq)
      in
      let before = Tsens.local_sensitivity cq db in
      let after = Tsens.local_sensitivity cq db' in
      Alcotest.(check (list (pair string int)))
        "identical sensitivities" before.Sens_types.per_relation
        after.Sens_types.per_relation;
      Alcotest.(check int)
        "identical counts"
        (Yannakakis.count cq db)
        (Yannakakis.count cq db'))

(* ------------------------------------------------------------------ *)
(* Full determinism: generation, analysis, and DP are seed-stable. *)

let test_whole_pipeline_deterministic () =
  let run () =
    let db = Tpch.generate ~seed:9 ~scale:0.0005 () in
    let analysis = Tsens.analyze ~plans:Queries.tpch_plans Queries.q1 db in
    let config =
      Mechanism.default_config ~ell:150 ~private_relation:"Customer"
    in
    let report = Mechanism.run_with_analysis (Prng.create 5) config analysis in
    ( (Tsens.result analysis).Sens_types.per_relation,
      report.Report.noisy_answer )
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check (pair (list (pair string int)) (float 0.0)))
    "bit-identical replays" r1 r2

(* ------------------------------------------------------------------ *)
(* The Facebook pipeline: generator → per-query databases → sensitivity
   consistency between the two cyclic decompositions and the oracle. *)

let test_facebook_pipeline () =
  let data =
    Facebook.generate { Facebook.nodes = 30; edges = 90; circles = 25; seed = 1 }
  in
  let db = Queries.facebook_database data Queries.q4 in
  let with_plan =
    Tsens.local_sensitivity ~plans:[ Queries.q4_ghd ] Queries.q4 db
  in
  let auto = Tsens.local_sensitivity Queries.q4 db in
  Alcotest.(check (list (pair string int)))
    "plans agree" with_plan.Sens_types.per_relation
    auto.Sens_types.per_relation;
  (* The DP setups drive the same queries. *)
  let setup = List.assoc "q4" Queries.dp_setups in
  let analysis = Tsens.analyze ~plans:[ Queries.q4_ghd ] setup.Queries.query db in
  let profile = Truncation.profile analysis setup.Queries.private_relation in
  Alcotest.(check int)
    "untruncated answer is |Q(D)|" (Tsens.output_size analysis)
    (Truncation.truncated_answer profile
       (Truncation.max_tuple_sensitivity profile))

(* ------------------------------------------------------------------ *)
(* Selection + DP: a selection lowers the output and the analysis stays
   internally consistent (truncation sums match a direct recount). *)

let test_selection_pipeline () =
  let cq = Parser.parse "Q(*) :- R1(A,B), R2(B,C)." in
  let v = Value.int in
  let db =
    Database.of_list
      [
        ( "R1",
          Relation.of_rows
            ~schema:(Schema.of_list [ "A"; "B" ])
            [ [ v 0; v 0 ]; [ v 1; v 0 ]; [ v 2; v 1 ] ] );
        ( "R2",
          Relation.of_rows
            ~schema:(Schema.of_list [ "B"; "C" ])
            [ [ v 0; v 5 ]; [ v 0; v 6 ]; [ v 1; v 7 ] ] );
      ]
  in
  (* Keep only even A values in R1. *)
  let selection relation schema t =
    (not (String.equal relation "R1"))
    ||
    match Value.as_int (Tuple.get t (Schema.index "A" schema)) with
    | Some a -> a mod 2 = 0
    | None -> true
  in
  let analysis = Tsens.analyze ~selection cq db in
  (* Rows (0,0) and (2,1) survive: outputs 2 + 1. *)
  Alcotest.(check int) "filtered output" 3 (Tsens.output_size analysis);
  let profile = Truncation.profile analysis "R1" in
  Alcotest.(check int) "profile covers filtered instance" 3
    (Truncation.truncated_answer profile 100);
  Alcotest.(check int) "filtered tuple contributes nothing" 0
    (Tsens.tuple_sensitivity analysis "R1" (Tuple.of_list [ v 1; v 0 ]))

(* ------------------------------------------------------------------ *)
(* The SAT reduction through the public pipeline: the witness of a
   satisfiable reduction is a satisfying assignment, found by the same
   Tsens entry point used everywhere else. *)

let test_sat_pipeline () =
  let rng = Prng.create 77 in
  let checked = ref 0 in
  for _ = 1 to 10 do
    let f = Sat_reduction.random_formula rng ~vars:4 ~clauses:5 in
    let cq, db = Sat_reduction.to_instance f in
    let result = Tsens.local_sensitivity cq db in
    let sat = Sat_reduction.brute_force_sat f in
    Alcotest.(check bool) "LS>0 iff SAT" sat
      (result.Sens_types.local_sensitivity > 0);
    match result.Sens_types.witness with
    | Some w when sat ->
        incr checked;
        Alcotest.(check bool) "witness satisfies" true
          (Sat_reduction.assignment_of_witness f w <> None)
    | _ -> ()
  done;
  Alcotest.(check bool) "exercised some satisfiable formulas" true
    (!checked > 0)

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "parsed query to DP release" `Quick
            test_parsed_query_pipeline;
          Alcotest.test_case "csv instance round trip" `Quick
            test_csv_instance_round_trip;
          Alcotest.test_case "whole pipeline deterministic" `Quick
            test_whole_pipeline_deterministic;
          Alcotest.test_case "facebook pipeline" `Quick test_facebook_pipeline;
          Alcotest.test_case "selection pipeline" `Quick
            test_selection_pipeline;
          Alcotest.test_case "sat pipeline" `Quick test_sat_pipeline;
        ] );
    ]
