(* splitmix64 (Steele, Lea, Flood 2014): one 64-bit state, additive
   gamma, strong finalizer. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = mix (next t) }
let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: non-positive bound";
  (* Modulo bias is < bound / 2^63, negligible for simulation use. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let uniform t =
  (* 53 random bits into (0,1): offset by half an ulp to exclude 0. *)
  let bits = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  (bits +. 0.5) *. (1.0 /. 9007199254740992.0)

let float t x = uniform t *. x
let bool t = Int64.logand (next t) 1L = 1L

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
