(** Tuples: immutable value vectors positioned by a {!Schema}.

    A tuple on its own carries no schema; the relation that owns it does.
    Treat tuples as immutable — the library never mutates an array after
    it enters a relation, and neither should callers. *)

type t = Value.t array

val of_list : Value.t list -> t

val compare : t -> t -> int
(** Lexicographic by {!Value.compare}; shorter tuples first. *)

val equal : t -> t -> bool
val hash : t -> int

val project : int array -> t -> t
(** [project positions tup] picks the values at [positions], in order. *)

val get : t -> int -> Value.t
val arity : t -> int

val concat : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Renders as [(v1, v2, ...)]. *)

val to_string : t -> string
