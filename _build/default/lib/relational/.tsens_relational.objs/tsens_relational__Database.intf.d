lib/relational/database.mli: Count Format Relation
