lib/relational/join.mli: Count Relation Schema
