lib/relational/tuple.ml: Array Format Int Value
