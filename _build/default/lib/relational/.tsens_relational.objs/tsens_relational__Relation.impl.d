lib/relational/relation.ml: Array Count Errors Format Hashtbl List Schema Tuple Value
