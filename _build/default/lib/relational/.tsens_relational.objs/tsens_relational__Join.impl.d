lib/relational/join.ml: Array Count Errors Hashtbl Index List Relation Schema Tuple
