lib/relational/schema.ml: Array Attr Errors Format Hashtbl List
