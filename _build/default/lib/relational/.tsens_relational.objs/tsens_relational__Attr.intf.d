lib/relational/attr.mli: Format
