lib/relational/schema.mli: Attr Format
