lib/relational/errors.ml: Format
