lib/relational/count.mli: Format
