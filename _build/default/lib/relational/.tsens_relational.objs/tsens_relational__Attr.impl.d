lib/relational/attr.ml: Format Hashtbl String
