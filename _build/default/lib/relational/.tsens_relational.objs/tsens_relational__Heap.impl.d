lib/relational/heap.ml: List
