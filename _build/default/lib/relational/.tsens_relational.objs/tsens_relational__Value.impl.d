lib/relational/value.ml: Bool Format Hashtbl Int String
