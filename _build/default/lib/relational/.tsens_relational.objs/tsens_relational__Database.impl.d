lib/relational/database.ml: Count Errors Format List Map Relation String
