lib/relational/count.ml: Format Int Stdlib
