lib/relational/prng.ml: Array Int64
