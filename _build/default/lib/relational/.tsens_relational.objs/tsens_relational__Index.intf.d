lib/relational/index.mli: Count Relation Schema Tuple
