lib/relational/relation.mli: Attr Count Format Schema Tuple Value
