lib/relational/heap.mli:
