lib/relational/index.ml: Count Errors Hashtbl Relation Schema Tuple
