lib/relational/csv.ml: Array Errors Fun List Relation Schema String Tuple Value
