lib/relational/prng.mli:
