let check_field s =
  if String.exists (fun c -> c = ',' || c = '\n' || c = '\r') s then
    Errors.data_errorf "CSV field %S contains a separator" s;
  s

let output oc rel =
  let schema = Relation.schema rel in
  let header =
    String.concat "," (List.map check_field (Schema.attrs schema) @ [ "cnt" ])
  in
  output_string oc header;
  output_char oc '\n';
  Relation.iter
    (fun tup cnt ->
      let fields =
        Array.to_list tup
        |> List.map (fun v -> check_field (Value.to_string v))
      in
      output_string oc (String.concat "," (fields @ [ string_of_int cnt ]));
      output_char oc '\n')
    rel

let write_file path rel =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output oc rel)

let split_line line = String.split_on_char ',' (String.trim line)

let input ?schema ic =
  let header =
    try input_line ic
    with End_of_file -> Errors.data_errorf "CSV input is empty"
  in
  let columns = split_line header in
  let attrs =
    match List.rev columns with
    | "cnt" :: rest -> List.rev rest
    | _ -> Errors.data_errorf "CSV header %S lacks a trailing cnt column" header
  in
  let file_schema = Schema.of_list attrs in
  let schema =
    match schema with
    | None -> file_schema
    | Some s ->
        if not (Schema.equal s file_schema) then
          Errors.data_errorf "CSV header %a does not match expected schema %a"
            Schema.pp file_schema Schema.pp s;
        s
  in
  let arity = Schema.arity schema in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         let fields = split_line line in
         if List.length fields <> arity + 1 then
           Errors.data_errorf "CSV row %S has %d fields, expected %d" line
             (List.length fields) (arity + 1);
         let values, cnt_field =
           match List.rev fields with
           | c :: rest -> (List.rev rest, c)
           | [] -> assert false
         in
         let cnt =
           match int_of_string_opt cnt_field with
           | Some c when c > 0 -> c
           | Some _ | None ->
               Errors.data_errorf "CSV row %S has invalid count %S" line
                 cnt_field
         in
         let tup = Tuple.of_list (List.map Value.of_string values) in
         rows := (tup, cnt) :: !rows
       end
     done
   with End_of_file -> ());
  Relation.create ~schema (List.rev !rows)

let read_file ?schema path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> input ?schema ic)
