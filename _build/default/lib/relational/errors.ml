exception Schema_error of string
exception Data_error of string

let schema_errorf fmt = Format.kasprintf (fun s -> raise (Schema_error s)) fmt
let data_errorf fmt = Format.kasprintf (fun s -> raise (Data_error s)) fmt
