(** Plain CSV import/export for relations.

    Format: a header line with the attribute names followed by a final
    [cnt] column, then one line per distinct tuple. Values are rendered
    with {!Value.to_string} and parsed back with {!Value.of_string};
    values containing commas or newlines are unsupported (generated
    workloads never produce them) and raise {!Errors.Data_error} on
    export. *)

val output : out_channel -> Relation.t -> unit
val write_file : string -> Relation.t -> unit

val input : ?schema:Schema.t -> in_channel -> Relation.t
(** Reads a relation. When [schema] is given it must match the header's
    attribute names; otherwise the header defines the schema. Raises
    {!Errors.Data_error} on malformed input. *)

val read_file : ?schema:Schema.t -> string -> Relation.t
