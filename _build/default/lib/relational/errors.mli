(** Errors raised by the relational layer.

    All invariant violations in this library raise [Schema_error] or
    [Data_error] with a human-readable message; callers that construct
    schemas and relations from validated input never see them. *)

exception Schema_error of string
(** Raised on malformed schemas: duplicate attributes, projection onto
    attributes that are not present, arity mismatches, etc. *)

exception Data_error of string
(** Raised on malformed data: a row whose arity does not match its
    relation's schema, a non-positive multiplicity, a CSV parse error. *)

val schema_errorf : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [schema_errorf fmt ...] raises {!Schema_error} with a formatted
    message. *)

val data_errorf : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [data_errorf fmt ...] raises {!Data_error} with a formatted message. *)
