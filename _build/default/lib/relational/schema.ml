type t = Attr.t array

let of_list attrs =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun a ->
      if Hashtbl.mem seen a then
        Errors.schema_errorf "duplicate attribute %a in schema" Attr.pp a;
      Hashtbl.add seen a ())
    attrs;
  Array.of_list attrs

let of_attrs = of_list
let empty = [||]
let attrs s = Array.to_list s
let arity = Array.length
let mem a s = Array.exists (Attr.equal a) s

let index_opt a s =
  let rec loop i =
    if i >= Array.length s then None
    else if Attr.equal s.(i) a then Some i
    else loop (i + 1)
  in
  loop 0

let index a s =
  match index_opt a s with
  | Some i -> i
  | None -> Errors.schema_errorf "attribute %a not in schema" Attr.pp a

let inter a b = Array.of_list (List.filter (fun x -> mem x b) (attrs a))

let union a b =
  Array.append a (Array.of_list (List.filter (fun x -> not (mem x a)) (attrs b)))

let diff a b = Array.of_list (List.filter (fun x -> not (mem x b)) (attrs a))
let subset a b = Array.for_all (fun x -> mem x b) a
let equal a b = Array.length a = Array.length b && Array.for_all2 Attr.equal a b
let equal_as_sets a b = subset a b && subset b a
let disjoint a b = not (Array.exists (fun x -> mem x b) a)

let positions ~sub super = Array.map (fun a -> index a super) sub

let rename mapping s =
  let image a =
    match List.assoc_opt a mapping with Some b -> b | None -> a
  in
  of_list (List.map image (attrs s))

let restrict ~keep s = Array.of_list (List.filter keep (attrs s))

let pp ppf s =
  Format.fprintf ppf "(%a)" Attr.pp_list (attrs s)

let to_string s = Format.asprintf "%a" pp s
