(** Deterministic splittable pseudo-random numbers (splitmix64).

    Workload generation and differentially-private mechanisms both need
    reproducible randomness. Streams are seeded explicitly and can be
    {!split} into statistically independent sub-streams so that, e.g.,
    each TPC-H table is generated from its own stream regardless of
    generation order. Not cryptographically secure — the DP layer uses it
    for simulation-quality noise, which is what the paper's experiments
    measure. *)

type t

val create : int -> t
(** A fresh stream from an integer seed. *)

val split : t -> t
(** A new stream seeded from (and advancing) the parent. *)

val copy : t -> t

val next : t -> int64
(** The raw 64-bit splitmix64 output; advances the stream. *)

val int : t -> int -> int
(** [int t bound] is uniform on [[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on [[lo, hi]] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform on [[0, x)]. *)

val uniform : t -> float
(** Uniform on [(0, 1)] — never exactly 0 or 1, safe for [log]. *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform element. Raises [Invalid_argument] on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)
