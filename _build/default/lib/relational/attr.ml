type t = string

let compare = String.compare
let equal = String.equal
let hash = Hashtbl.hash
let pp = Format.pp_print_string

let pp_list ppf attrs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp ppf attrs
