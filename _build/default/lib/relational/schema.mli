(** Relation schemas: ordered sequences of distinct attribute names.

    A schema fixes both the set of attributes of a relation and the
    position of each attribute inside its tuples. Set-like operations
    ([inter], [union], [diff]) keep a deterministic order derived from
    their first argument so that downstream tuples are reproducible. *)

type t

val of_list : Attr.t list -> t
(** Raises {!Errors.Schema_error} on duplicate attribute names. *)

val of_attrs : string list -> t
(** Alias of {!of_list} for literal schemas in tests and examples. *)

val empty : t
val attrs : t -> Attr.t list
val arity : t -> int
val mem : Attr.t -> t -> bool

val index : Attr.t -> t -> int
(** Position of an attribute. Raises {!Errors.Schema_error} if absent. *)

val index_opt : Attr.t -> t -> int option

val inter : t -> t -> t
(** Common attributes, in the order of the first schema. *)

val union : t -> t -> t
(** Attributes of the first schema followed by the attributes of the
    second that are not already present. *)

val diff : t -> t -> t
(** Attributes of the first schema absent from the second. *)

val subset : t -> t -> bool
(** [subset a b] iff every attribute of [a] occurs in [b]. *)

val equal : t -> t -> bool
(** Order-sensitive equality. *)

val equal_as_sets : t -> t -> bool

val disjoint : t -> t -> bool

val positions : sub:t -> t -> int array
(** [positions ~sub super] gives, for each attribute of [sub] in order,
    its index in [super]. Raises {!Errors.Schema_error} if [sub] is not a
    subset of [super]. *)

val rename : (Attr.t * Attr.t) list -> t -> t
(** [rename mapping s] replaces each attribute [a] by its image under
    [mapping] (attributes not in the mapping are kept). Raises
    {!Errors.Schema_error} if the result has duplicates. *)

val restrict : keep:(Attr.t -> bool) -> t -> t
(** Sub-schema of the attributes satisfying [keep], original order. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
