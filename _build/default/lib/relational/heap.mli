(** A small purely functional max-heap (pairing heap).

    Used for best-first enumeration (top-k combinations of factored
    multiplicity tables). Elements are ordered by a comparison supplied
    at creation; ties are surfaced in insertion-independent order only if
    the comparison is total. *)

type 'a t

val empty : cmp:('a -> 'a -> int) -> 'a t
(** [cmp] orders elements; the maximum is popped first. *)

val is_empty : 'a t -> bool
val insert : 'a -> 'a t -> 'a t

val pop : 'a t -> ('a * 'a t) option
(** Largest element and the remaining heap; [None] when empty. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
val size : 'a t -> int
