(** Bag-semantics join operators.

    These implement the paper's r⋈ operator family: natural joins that
    multiply multiplicities, optionally fused with a group-by that sums
    them (the γ of Section 4.2). With disjoint schemas [natural_join]
    degenerates to a counted cross product, which the sensitivity
    algorithms rely on. *)

val natural_join : Relation.t -> Relation.t -> Relation.t
(** Natural join on all common attributes; output schema is
    [Schema.union a b]; output multiplicities are products. Hash-based:
    the right side is partitioned on the common attributes and the left
    side streamed through it. *)

val merge_join : Relation.t -> Relation.t -> Relation.t
(** The same natural join computed by sort-merge — the implementation the
    paper's Algorithm 1/2 descriptions assume ("sort both relations on
    the join column, join together"). Output is identical to
    {!natural_join}; the cost profile differs: O((n+m) log) sorting plus
    a linear merge, with no hash table. With no common attributes this
    degenerates to the cross product, like {!natural_join}. *)

val join_project : group:Schema.t -> Relation.t -> Relation.t -> Relation.t
(** [join_project ~group a b] is [Relation.project group (natural_join a b)]
    computed without materializing the full join — the fused
    γ_group(r⋈(a, b)) used throughout the topjoin/botjoin passes. [group]
    must be a subset of the joined schema. *)

val join_all : Relation.t list -> Relation.t
(** Left-fold of {!natural_join}. Raises [Invalid_argument] on []. *)

val join_project_all : group:Schema.t -> Relation.t list -> Relation.t
(** Folds {!natural_join} but projects intermediate results onto the
    attributes still needed (those in [group] or in a yet-unjoined
    relation), then applies the final group-by. Equivalent to
    [Relation.project group (join_all rels)] with smaller intermediates. *)

val semijoin : Relation.t -> Relation.t -> Relation.t
(** [semijoin a b] keeps the rows of [a] whose common-attribute projection
    matches at least one row of [b]; multiplicities of [a] are kept. *)

val count_join : Relation.t -> Relation.t -> Count.t
(** Bag cardinality of the natural join, computed without materializing
    output tuples. *)
