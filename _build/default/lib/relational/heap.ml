(* Pairing heap: O(1) insert/meld, amortized O(log n) pop. *)

type 'a node = Node of 'a * 'a node list

type 'a t = { cmp : 'a -> 'a -> int; root : 'a node option; count : int }

let empty ~cmp = { cmp; root = None; count = 0 }
let is_empty h = h.root = None
let size h = h.count

let meld cmp a b =
  match (a, b) with
  | Node (x, xs), Node (y, ys) ->
      if cmp x y >= 0 then Node (x, b :: xs) else Node (y, a :: ys)

let insert x h =
  let node = Node (x, []) in
  let root =
    match h.root with None -> node | Some r -> meld h.cmp node r
  in
  { h with root = Some root; count = h.count + 1 }

(* Two-pass pairing of the children. *)
let rec merge_pairs cmp = function
  | [] -> None
  | [ n ] -> Some n
  | a :: b :: rest -> (
      let ab = meld cmp a b in
      match merge_pairs cmp rest with
      | None -> Some ab
      | Some r -> Some (meld cmp ab r))

let pop h =
  match h.root with
  | None -> None
  | Some (Node (x, children)) ->
      Some (x, { h with root = merge_pairs h.cmp children; count = h.count - 1 })

let of_list ~cmp xs = List.fold_left (fun h x -> insert x h) (empty ~cmp) xs
