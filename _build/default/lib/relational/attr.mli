(** Attribute (column) names.

    Attributes are plain strings compared case-sensitively. Two relations
    natural-join on the attributes whose names coincide, so workload
    builders choose names deliberately (e.g. TPC-H's [custkey] appears in
    both [Customer] and [Orders]). *)

type t = string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

val pp_list : Format.formatter -> t list -> unit
(** Comma-separated rendering, e.g. [A, B, C]. *)
