(** Generalized hypertree decompositions (GHDs).

    A GHD groups the atoms of a (possibly cyclic) CQ into *bags*; each
    atom belongs to exactly one bag (the "join plan" form the paper's
    Section 5.4 uses), each bag's schema is the union of its members',
    and the bags form a join tree. The sensitivity DP treats each bag as
    one super-relation (the join of its members), so an acyclic query is
    exactly a GHD of width 1. *)

type t

val make :
  Cq.t ->
  bags:(string * string list) list ->
  root:string ->
  parents:(string * string) list ->
  t
(** [make cq ~bags ~root ~parents] builds a GHD with the named bags
    ([(bag_name, member_atoms)]), rooted bag tree given by [parents]
    (child bag → parent bag). Validates that bags partition the atoms and
    that the bag tree satisfies the running intersection property; raises
    {!Errors.Schema_error} otherwise. *)

val of_join_tree : Join_tree.t -> t
(** Width-1 GHD: one bag per atom, bag tree = join tree, bag names =
    atom names. *)

val auto : Cq.t -> t
(** Heuristic decomposition: starts with one bag per atom and repeatedly
    merges the pair of connected bags sharing the most attributes until
    the bag-level query is acyclic. Terminates (a single bag is trivially
    acyclic); width is not guaranteed minimal. *)

val cq : t -> Cq.t
(** The original query. *)

val bag_cq : t -> Cq.t
(** The bag-level query: one atom per bag, schema = union of members. *)

val bag_tree : t -> Join_tree.t
(** The join tree over {!bag_cq}. *)

val bag_names : t -> string list
val members : t -> string -> string list
(** Atoms of a bag. Raises {!Errors.Schema_error} for unknown bags. *)

val bag_of : t -> string -> string
(** The bag containing an atom. Raises {!Errors.Schema_error} for unknown
    atoms. *)

val width : t -> int
(** Maximum number of atoms in any bag. *)

val pp : Format.formatter -> t -> unit
