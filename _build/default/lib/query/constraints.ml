open Tsens_relational

type op = Eq | Neq | Lt | Le | Gt | Ge

type t = { var : Attr.t; op : op; value : Value.t }

let holds { op; value; _ } v =
  let c = Value.compare v value in
  match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let check cq constraints =
  List.iter
    (fun { var; _ } ->
      if Cq.atoms_with cq var = [] then
        Errors.schema_errorf
          "constraint on %a, which is not a variable of query %s" Attr.pp var
          (Cq.name cq))
    constraints

let selection = function
  | [] -> None
  | constraints ->
      let by_relation _relation schema tuple =
        List.for_all
          (fun c ->
            match Schema.index_opt c.var schema with
            | None -> true
            | Some i -> holds c (Tuple.get tuple i))
          constraints
      in
      Some by_relation

let on_attr constraints attr =
  List.filter (fun c -> Attr.equal c.var attr) constraints

(* Synthesized fallbacks probing around the constraint constants; one of
   them satisfies any satisfiable conjunction of interval/equality
   constraints over a totally ordered infinite domain. *)
let synthesized relevant =
  List.concat_map
    (fun c ->
      match c.value with
      | Value.Int n -> [ Value.int n; Value.int (n - 1); Value.int (n + 1) ]
      | Value.Str s -> [ Value.str s; Value.str (s ^ "'"); Value.str "" ]
      | Value.Bool b -> [ Value.bool b; Value.bool (not b) ])
    relevant
  @ [ Value.str "any"; Value.int 0; Value.bool true ]

let satisfying_value constraints attr candidates =
  match on_attr constraints attr with
  | [] -> Some (match candidates with v :: _ -> v | [] -> Value.str "any")
  | relevant ->
      let admissible v = List.for_all (fun c -> holds c v) relevant in
      List.find_opt admissible (candidates @ synthesized relevant)

let pp_op ppf op =
  Format.pp_print_string ppf
    (match op with
    | Eq -> "="
    | Neq -> "!="
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">=")

let pp ppf c =
  Format.fprintf ppf "%a %a %a" Attr.pp c.var pp_op c.op Value.pp c.value

let pp_list ppf cs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp ppf cs
