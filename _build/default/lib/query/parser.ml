open Tsens_relational

exception Parse_error of string

type token =
  | Ident of string
  | IntLit of int
  | StrLit of string
  | Lparen
  | Rparen
  | Comma
  | Turnstile
  | Dot
  | Star
  | Cmp of Constraints.op

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt in
  let push t = tokens := t :: !tokens in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '%' then
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    else if c = '(' then begin push Lparen; incr i end
    else if c = ')' then begin push Rparen; incr i end
    else if c = ',' then begin push Comma; incr i end
    else if c = '.' then begin push Dot; incr i end
    else if c = '*' then begin push Star; incr i end
    else if c = '=' then begin push (Cmp Constraints.Eq); incr i end
    else if c = '!' then
      if !i + 1 < n && input.[!i + 1] = '=' then begin
        push (Cmp Constraints.Neq);
        i := !i + 2
      end
      else fail "expected '=' after '!' at offset %d" !i
    else if c = '<' then
      if !i + 1 < n && input.[!i + 1] = '=' then begin
        push (Cmp Constraints.Le);
        i := !i + 2
      end
      else begin push (Cmp Constraints.Lt); incr i end
    else if c = '>' then
      if !i + 1 < n && input.[!i + 1] = '=' then begin
        push (Cmp Constraints.Ge);
        i := !i + 2
      end
      else begin push (Cmp Constraints.Gt); incr i end
    else if c = ':' then
      if !i + 1 < n && input.[!i + 1] = '-' then begin
        push Turnstile;
        i := !i + 2
      end
      else fail "expected '-' after ':' at offset %d" !i
    else if c = '\'' then begin
      (* quoted string literal, no escapes *)
      let start = !i + 1 in
      let j = ref start in
      while !j < n && input.[!j] <> '\'' do
        incr j
      done;
      if !j >= n then fail "unterminated string literal at offset %d" !i;
      push (StrLit (String.sub input start (!j - start)));
      i := !j + 1
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit input.[!i + 1])
    then begin
      let start = !i in
      incr i;
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      push (IntLit (int_of_string (String.sub input start (!i - start))))
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      push (Ident (String.sub input start (!i - start)))
    end
    else fail "unexpected character %C at offset %d" c !i
  done;
  List.rev !tokens

type state = { mutable rest : token list }

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "identifier %s" s
  | IntLit n -> Format.fprintf ppf "integer %d" n
  | StrLit s -> Format.fprintf ppf "string %S" s
  | Lparen -> Format.pp_print_string ppf "'('"
  | Rparen -> Format.pp_print_string ppf "')'"
  | Comma -> Format.pp_print_string ppf "','"
  | Turnstile -> Format.pp_print_string ppf "':-'"
  | Dot -> Format.pp_print_string ppf "'.'"
  | Star -> Format.pp_print_string ppf "'*'"
  | Cmp op -> Format.fprintf ppf "'%a'" Constraints.pp_op op

let fail_token expected = function
  | [] ->
      raise
        (Parse_error (Printf.sprintf "expected %s, got end of input" expected))
  | t :: _ ->
      raise
        (Parse_error (Format.asprintf "expected %s, got %a" expected pp_token t))

let eat st expected_desc pred =
  match st.rest with
  | t :: rest when pred t ->
      st.rest <- rest;
      t
  | toks -> fail_token expected_desc toks

let eat_ident st =
  match eat st "identifier" (function Ident _ -> true | _ -> false) with
  | Ident s -> s
  | _ -> assert false

let parse_vars st =
  let rec loop acc =
    let v = eat_ident st in
    match st.rest with
    | Comma :: rest ->
        st.rest <- rest;
        loop (v :: acc)
    | _ -> List.rev (v :: acc)
  in
  loop []

(* head ::= ident [ "(" ( "*" | vars ) ")" ] *)
let parse_head st =
  let name = eat_ident st in
  match st.rest with
  | Lparen :: Star :: Rparen :: rest ->
      st.rest <- rest;
      (name, None)
  | Lparen :: _ ->
      st.rest <- List.tl st.rest;
      let vars = parse_vars st in
      let (_ : token) = eat st "')'" (function Rparen -> true | _ -> false) in
      (name, Some vars)
  | _ -> (name, None)

let parse_literal st =
  match st.rest with
  | IntLit n :: rest ->
      st.rest <- rest;
      Value.int n
  | StrLit s :: rest ->
      st.rest <- rest;
      Value.str s
  | Ident "true" :: rest ->
      st.rest <- rest;
      Value.bool true
  | Ident "false" :: rest ->
      st.rest <- rest;
      Value.bool false
  | toks -> fail_token "literal (integer, 'string', true or false)" toks

(* item ::= ident "(" vars ")"  |  ident op literal *)
let parse_item st =
  let name = eat_ident st in
  match st.rest with
  | Lparen :: rest ->
      st.rest <- rest;
      let vars = parse_vars st in
      let (_ : token) = eat st "')'" (function Rparen -> true | _ -> false) in
      `Atom (name, vars)
  | Cmp op :: rest ->
      st.rest <- rest;
      let value = parse_literal st in
      `Constraint { Constraints.var = name; op; value }
  | toks -> fail_token "'(' or a comparison operator" toks

let parse_full input =
  let st = { rest = tokenize input } in
  let name, head_vars = parse_head st in
  let (_ : token) = eat st "':-'" (function Turnstile -> true | _ -> false) in
  let rec items acc =
    let item = parse_item st in
    match st.rest with
    | Comma :: rest ->
        st.rest <- rest;
        items (item :: acc)
    | _ -> List.rev (item :: acc)
  in
  let body = items [] in
  (match st.rest with
  | [] -> ()
  | [ Dot ] -> ()
  | toks -> fail_token "'.' or end of input" toks);
  let atoms =
    List.filter_map (function `Atom a -> Some a | `Constraint _ -> None) body
  in
  let constraints =
    List.filter_map
      (function `Constraint c -> Some c | `Atom _ -> None)
      body
  in
  if atoms = [] then raise (Parse_error "query body has no atoms");
  let cq = Cq.make ~name atoms in
  Constraints.check cq constraints;
  (match head_vars with
  | None -> ()
  | Some vars ->
      let body_vars = List.sort String.compare (Cq.vars cq) in
      let head_sorted = List.sort String.compare vars in
      if body_vars <> head_sorted then
        Errors.schema_errorf
          "head of %s must list exactly the body variables (%s), got (%s)"
          name
          (String.concat ", " body_vars)
          (String.concat ", " head_sorted));
  (cq, constraints)

let parse input =
  match parse_full input with
  | cq, [] -> cq
  | cq, constraints ->
      Errors.schema_errorf
        "query %s has selection constraints (%s); use Parser.parse_full"
        (Cq.name cq)
        (Format.asprintf "%a" Constraints.pp_list constraints)

let parse_opt input =
  match parse input with
  | cq -> Some cq
  | exception (Parse_error _ | Errors.Schema_error _) -> None
