(** Join trees of acyclic conjunctive queries.

    A join tree has one node per atom and satisfies the running
    intersection property: for every attribute, the nodes whose atoms
    mention it form a connected subtree. The TSens dynamic program walks
    this tree in post-order (botjoins) and pre-order (topjoins). *)

open Tsens_relational

type t

val of_cq : Cq.t -> t option
(** Join tree from the GYO elimination (ear → witness edges). [None] if
    the query is cyclic. Raises {!Errors.Schema_error} if the query is
    disconnected — handle components separately ({!Cq.components}). *)

val of_cq_exn : Cq.t -> t
(** Like {!of_cq} but raises {!Errors.Schema_error} on cyclic queries. *)

val make : Cq.t -> root:string -> parents:(string * string) list -> t
(** Explicit construction: [parents] maps each non-root atom to its
    parent. Validates that the edges span the atoms, form a tree rooted
    at [root], and satisfy the running intersection property; raises
    {!Errors.Schema_error} otherwise. Used to feed the exact join plans
    of the paper's experiments. *)

val cq : t -> Cq.t
val root : t -> string
val nodes : t -> string list
(** All atom names, in the original atom order. *)

val parent : t -> string -> string option
val children : t -> string -> string list

val siblings : t -> string -> string list
(** The paper's N(R): children of the parent, minus the node itself;
    [[]] for the root. *)

val schema : t -> string -> Schema.t
(** Schema of a node's atom. *)

val link_schema : t -> string -> Schema.t
(** [A_i ∩ A_p(i)], the attributes a node shares with its parent — the
    group-by schema of its topjoin and botjoin. Empty for the root. *)

val post_order : t -> string list
(** Children before parents; deterministic. *)

val pre_order : t -> string list
(** Parents before children; deterministic. *)

val subtree : t -> string -> string list
(** Nodes of the subtree rooted at the given node (inclusive). *)

val max_degree : t -> int
(** The paper's d: max over nodes of (children count + 1 if non-root),
    i.e. the maximum tree degree. *)

val is_path : t -> bool
(** True iff every node has at most one child (the tree is a chain). *)

val pp : Format.formatter -> t -> unit
