(** Structural classification of conjunctive queries.

    The paper's complexity landscape: path queries admit the O(n log n)
    Algorithm 1; doubly acyclic queries keep the join-tree DP at
    O(m n log n); general acyclic queries cost O(m d n^d log n) with d the
    join-tree degree; everything else goes through a GHD. *)

type shape =
  | Path of string list
      (** atoms in path order, first endpoint first *)
  | Doubly_acyclic
  | Acyclic
  | Cyclic

val path_order : Cq.t -> string list option
(** [Some order] iff the query is a path join query
    [R1(A0,A1), R2(A1,A2), ..., Rm(Am-1,Am)] (endpoint atoms may have a
    single attribute; every shared attribute links exactly two adjacent
    atoms). Of the two direction choices the lexicographically smaller
    first atom is returned. *)

val is_doubly_acyclic : Join_tree.t -> bool
(** Paper Section 5.3: for every node, the sub-query made of its parent
    and children atoms is itself acyclic. Single-atom queries qualify. *)

val classify : Cq.t -> shape
(** Most specific shape, using the GYO join tree for the doubly-acyclic
    test. Disconnected queries are classified by their most general
    component. *)

val pp_shape : Format.formatter -> shape -> unit
