(** GYO (Graham–Yu–Ozsoyoglu) ear decomposition.

    Repeatedly removes "ears" from the query hypergraph: a hyperedge whose
    vertices either occur in no other live hyperedge or are all contained
    in one other live hyperedge (the witness). A CQ is acyclic iff the
    process empties the hypergraph; the elimination order induces the join
    tree (ear → witness edges). *)

type step = {
  ear : string;  (** the eliminated atom *)
  witness : string option;
      (** the atom absorbing the ear's shared vertices; [None] when the
          ear shares no vertex with any remaining atom (the last atom of
          its connected component, i.e. a join-tree root). *)
}

type result =
  | Acyclic of step list  (** elimination order, first ear first *)
  | Cyclic of string list  (** the irreducible residual atoms *)

val decompose : Cq.t -> result
(** Deterministic: each round eliminates the first ear in atom order. *)

val is_acyclic : Cq.t -> bool

val elimination : Cq.t -> step list
(** Like {!decompose} but raises {!Tsens_relational.Errors.Schema_error}
    on cyclic queries. *)

val pp_step : Format.formatter -> step -> unit
