open Tsens_relational
module SMap = Map.Make (String)

type t = {
  cq : Cq.t;
  root : string;
  parent_map : string SMap.t;
  children_map : string list SMap.t;
}

let cq t = t.cq
let root t = t.root
let nodes t = Cq.relation_names t.cq
let parent t node = SMap.find_opt node t.parent_map

let children t node =
  match SMap.find_opt node t.children_map with Some c -> c | None -> []

let siblings t node =
  match parent t node with
  | None -> []
  | Some p -> List.filter (fun c -> not (String.equal c node)) (children t p)

let schema t node = Cq.schema_of t.cq node

let link_schema t node =
  match parent t node with
  | None -> Schema.empty
  | Some p -> Schema.inter (schema t node) (schema t p)

let rec post_order_from t node =
  List.concat_map (post_order_from t) (children t node) @ [ node ]

let post_order t = post_order_from t t.root

let rec pre_order_from t node =
  node :: List.concat_map (pre_order_from t) (children t node)

let pre_order t = pre_order_from t t.root
let subtree t node = post_order_from t node

let max_degree t =
  List.fold_left
    (fun acc node ->
      let d =
        List.length (children t node) + if String.equal node t.root then 0 else 1
      in
      max acc d)
    0 (nodes t)

let is_path t =
  List.for_all (fun node -> List.length (children t node) <= 1) (nodes t)

(* Running intersection: the nodes mentioning each attribute must induce a
   connected subtree. Walking up from each such node, the first ancestor
   that also mentions the attribute must be its direct parent — otherwise
   the occurrences are disconnected or the path breaks. Equivalent, easier
   check: for each non-root node and each attribute it shares with any
   node *outside its subtree*, the attribute must be in the parent link. *)
let validate t =
  let all = nodes t in
  List.iter
    (fun node ->
      match parent t node with
      | None -> ()
      | Some _ ->
          let inside = subtree t node in
          let outside =
            List.filter
              (fun n -> not (List.exists (String.equal n) inside))
              all
          in
          let node_schema = schema t node in
          let link = link_schema t node in
          List.iter
            (fun out ->
              let shared = Schema.inter node_schema (schema t out) in
              if not (Schema.subset shared link) then
                Errors.schema_errorf
                  "join tree for %s violates running intersection: %s and %s \
                   share %a but the %s-parent link only carries %a"
                  (Cq.name t.cq) node out Schema.pp shared node Schema.pp link)
            outside)
    all

let build cq root parent_map =
  let children_map =
    SMap.fold
      (fun child p acc ->
        let existing = match SMap.find_opt p acc with Some c -> c | None -> [] in
        SMap.add p (existing @ [ child ]) acc)
      parent_map SMap.empty
  in
  (* Keep children in atom order for deterministic traversals. *)
  let order = Cq.relation_names cq in
  let rank r =
    let rec loop i = function
      | [] -> max_int
      | x :: rest -> if String.equal x r then i else loop (i + 1) rest
    in
    loop 0 order
  in
  let children_map =
    SMap.map
      (fun c -> List.sort (fun a b -> Int.compare (rank a) (rank b)) c)
      children_map
  in
  let t = { cq; root; parent_map; children_map } in
  (* Reachability from the root must cover all atoms exactly once. *)
  let reached = pre_order t in
  let sorted_reached = List.sort String.compare reached in
  let sorted_nodes = List.sort String.compare (nodes t) in
  if sorted_reached <> sorted_nodes then
    Errors.schema_errorf
      "join tree for %s is not a spanning tree (reached %d of %d atoms)"
      (Cq.name cq) (List.length reached) (List.length (nodes t));
  validate t;
  t

let make cq ~root ~parents =
  if not (Cq.mem_relation cq root) then
    Errors.schema_errorf "join tree root %s is not an atom of %s" root
      (Cq.name cq);
  let parent_map =
    List.fold_left
      (fun acc (child, p) ->
        if not (Cq.mem_relation cq child && Cq.mem_relation cq p) then
          Errors.schema_errorf "join tree edge %s -> %s mentions a non-atom"
            child p;
        if SMap.mem child acc then
          Errors.schema_errorf "join tree gives %s two parents" child;
        SMap.add child p acc)
      SMap.empty parents
  in
  if SMap.mem root parent_map then
    Errors.schema_errorf "join tree root %s has a parent" root;
  build cq root parent_map

let of_cq cq =
  if not (Cq.is_connected cq) then
    Errors.schema_errorf
      "CQ %s is disconnected; build join trees per component" (Cq.name cq);
  match Gyo.decompose cq with
  | Gyo.Cyclic _ -> None
  | Gyo.Acyclic steps ->
      let root = ref None in
      let parent_map =
        List.fold_left
          (fun acc { Gyo.ear; witness } ->
            match witness with
            | Some w -> SMap.add ear w acc
            | None ->
                root := Some ear;
                acc)
          SMap.empty steps
      in
      let root =
        match !root with
        | Some r -> r
        | None -> assert false (* connected + acyclic always yields a root *)
      in
      Some (build cq root parent_map)

let of_cq_exn cq =
  match of_cq cq with
  | Some t -> t
  | None -> Errors.schema_errorf "CQ %s is cyclic" (Cq.name cq)

let pp ppf t =
  let rec pp_node ppf node =
    match children t node with
    | [] -> Format.fprintf ppf "%s" node
    | kids ->
        Format.fprintf ppf "%s(%a)" node
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
             pp_node)
          kids
  in
  pp_node ppf t.root
