open Tsens_relational

type shape =
  | Path of string list
  | Doubly_acyclic
  | Acyclic
  | Cyclic

(* A path query: atoms chain pairwise on single shared attributes.
   Attributes local to one atom do not affect the join structure, so the
   shape test runs on the query projected onto shared attributes (the
   endpoints of q1-style queries carry extra lonely columns). *)
let path_order cq =
  let cq = Cq.project_onto_shared cq in
  let atoms = Cq.atoms cq in
  match atoms with
  | [ a ] -> Some [ a.Cq.relation ]
  | _ ->
      let arity_ok =
        List.for_all (fun a -> Schema.arity a.Cq.schema <= 2) atoms
      in
      let vars_ok =
        List.for_all
          (fun v -> List.length (Cq.atoms_with cq v) <= 2)
          (Cq.vars cq)
      in
      if not (arity_ok && vars_ok) then None
      else begin
        (* Adjacency: atoms sharing exactly one attribute. *)
        let adjacent a b =
          (not (String.equal a.Cq.relation b.Cq.relation))
          && Schema.arity (Schema.inter a.Cq.schema b.Cq.schema) = 1
        in
        let neighbors a = List.filter (adjacent a) atoms in
        let degrees = List.map (fun a -> (a, List.length (neighbors a))) atoms in
        let endpoints =
          List.filter_map (fun (a, d) -> if d = 1 then Some a else None) degrees
        in
        let internal_ok =
          List.for_all (fun (_, d) -> d = 1 || d = 2) degrees
        in
        if (not internal_ok) || List.length endpoints <> 2 then None
        else begin
          (* Walk the chain from the lexicographically smaller endpoint. *)
          let start =
            List.fold_left
              (fun acc a ->
                if String.compare a.Cq.relation acc.Cq.relation < 0 then a
                else acc)
              (List.hd endpoints) endpoints
          in
          let rec walk visited current =
            let next =
              List.find_opt
                (fun a ->
                  not (List.exists (String.equal a.Cq.relation) visited))
                (neighbors current)
            in
            match next with
            | None -> List.rev visited
            | Some a -> walk (a.Cq.relation :: visited) a
          in
          let order = walk [ start.Cq.relation ] start in
          if List.length order = List.length atoms then Some order else None
        end
      end

let is_doubly_acyclic jt =
  List.for_all
    (fun node ->
      let around =
        (match Join_tree.parent jt node with Some p -> [ p ] | None -> [])
        @ Join_tree.children jt node
      in
      match around with
      | [] -> true
      | _ ->
          let sub =
            Cq.restrict (Join_tree.cq jt) ~keep:(fun r ->
                List.exists (String.equal r) around)
          in
          Gyo.is_acyclic sub)
    (Join_tree.nodes jt)

let classify_connected cq =
  match Join_tree.of_cq cq with
  | None -> Cyclic
  | Some jt -> (
      match path_order cq with
      | Some order -> Path order
      | None -> if is_doubly_acyclic jt then Doubly_acyclic else Acyclic)

let classify cq =
  if Cq.is_connected cq then classify_connected cq
  else
    let rank = function
      | Path _ -> 0
      | Doubly_acyclic -> 1
      | Acyclic -> 2
      | Cyclic -> 3
    in
    let shapes = List.map classify_connected (Cq.components cq) in
    List.fold_left
      (fun acc s -> if rank s > rank acc then s else acc)
      (List.hd shapes) shapes

let pp_shape ppf = function
  | Path order ->
      Format.fprintf ppf "path (%s)" (String.concat " - " order)
  | Doubly_acyclic -> Format.pp_print_string ppf "doubly acyclic"
  | Acyclic -> Format.pp_print_string ppf "acyclic"
  | Cyclic -> Format.pp_print_string ppf "cyclic"
