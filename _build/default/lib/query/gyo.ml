open Tsens_relational

type step = { ear : string; witness : string option }

type result = Acyclic of step list | Cyclic of string list

(* Attributes of [atom] also present in some *other* live atom. *)
let shared_attrs live atom =
  Schema.restrict
    ~keep:(fun a ->
      List.exists
        (fun (other, schema) ->
          (not (String.equal other (fst atom))) && Schema.mem a schema)
        live)
    (snd atom)

let find_witness live atom shared =
  if Schema.arity shared = 0 then Some None
  else
    let candidate =
      List.find_opt
        (fun (other, schema) ->
          (not (String.equal other (fst atom))) && Schema.subset shared schema)
        live
    in
    match candidate with
    | Some (witness, _) -> Some (Some witness)
    | None -> None

let decompose cq =
  let live =
    ref (List.map (fun a -> (a.Cq.relation, a.Cq.schema)) (Cq.atoms cq))
  in
  let steps = ref [] in
  let progress = ref true in
  while !progress && !live <> [] do
    progress := false;
    let rec try_atoms = function
      | [] -> ()
      | atom :: rest -> (
          let shared = shared_attrs !live atom in
          match find_witness !live atom shared with
          | Some witness ->
              steps := { ear = fst atom; witness } :: !steps;
              live :=
                List.filter (fun (r, _) -> not (String.equal r (fst atom))) !live;
              progress := true
          | None -> try_atoms rest)
    in
    try_atoms !live
  done;
  if !live = [] then Acyclic (List.rev !steps)
  else Cyclic (List.map fst !live)

let is_acyclic cq = match decompose cq with Acyclic _ -> true | Cyclic _ -> false

let elimination cq =
  match decompose cq with
  | Acyclic steps -> steps
  | Cyclic residual ->
      Errors.schema_errorf "CQ %s is cyclic (residual atoms: %s)" (Cq.name cq)
        (String.concat ", " residual)

let pp_step ppf { ear; witness } =
  match witness with
  | Some w -> Format.fprintf ppf "%s -> %s" ear w
  | None -> Format.fprintf ppf "%s (root)" ear
