open Tsens_relational

type atom = { relation : string; schema : Schema.t }
type t = { qname : string; atom_list : atom list }

let make ?(name = "Q") atom_specs =
  if atom_specs = [] then Errors.schema_errorf "CQ %s has no atoms" name;
  let seen = Hashtbl.create 8 in
  let atom_list =
    List.map
      (fun (relation, attrs) ->
        if Hashtbl.mem seen relation then
          Errors.schema_errorf
            "relation %s appears twice in CQ %s (self-joins are unsupported)"
            relation name;
        Hashtbl.add seen relation ();
        { relation; schema = Schema.of_list attrs })
      atom_specs
  in
  { qname = name; atom_list }

let name q = q.qname
let atoms q = q.atom_list
let atom_count q = List.length q.atom_list
let relation_names q = List.map (fun a -> a.relation) q.atom_list

let schema_of q relation =
  match List.find_opt (fun a -> String.equal a.relation relation) q.atom_list with
  | Some a -> a.schema
  | None -> Errors.schema_errorf "CQ %s has no atom %s" q.qname relation

let mem_relation q relation =
  List.exists (fun a -> String.equal a.relation relation) q.atom_list

let vars q =
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun a ->
      List.filter
        (fun v ->
          if Hashtbl.mem seen v then false
          else begin
            Hashtbl.add seen v ();
            true
          end)
        (Schema.attrs a.schema))
    q.atom_list

let var_count q = List.length (vars q)

let atoms_with q attr =
  List.filter_map
    (fun a -> if Schema.mem attr a.schema then Some a.relation else None)
    q.atom_list

let shared_vars q = List.filter (fun v -> List.length (atoms_with q v) >= 2) (vars q)
let lonely_vars q = List.filter (fun v -> List.length (atoms_with q v) = 1) (vars q)

let restrict q ~keep =
  let atom_list = List.filter (fun a -> keep a.relation) q.atom_list in
  if atom_list = [] then
    Errors.schema_errorf "restriction of CQ %s keeps no atom" q.qname;
  { q with atom_list }

let project_onto_shared q =
  let lonely = lonely_vars q in
  let atom_list =
    List.map
      (fun a ->
        let kept =
          Schema.restrict
            ~keep:(fun v -> not (List.exists (Attr.equal v) lonely))
            a.schema
        in
        let schema =
          (* A nullary atom would lose its cardinality information; keep
             one attribute as a stand-in. *)
          if Schema.arity kept = 0 then
            Schema.of_list [ List.hd (Schema.attrs a.schema) ]
          else kept
        in
        { a with schema })
      q.atom_list
  in
  { q with atom_list }

(* Connectivity of the atom graph: atoms adjacent iff schemas intersect. *)
let component_of q start =
  let visited = Hashtbl.create 8 in
  let rec visit relation =
    if not (Hashtbl.mem visited relation) then begin
      Hashtbl.add visited relation ();
      let schema = schema_of q relation in
      List.iter
        (fun a ->
          if not (Schema.disjoint schema a.schema) then visit a.relation)
        q.atom_list
    end
  in
  visit start;
  visited

let is_connected q =
  match q.atom_list with
  | [] -> true
  | first :: _ ->
      Hashtbl.length (component_of q first.relation) = atom_count q

let components q =
  let remaining = ref (relation_names q) in
  let result = ref [] in
  while !remaining <> [] do
    let start = List.hd !remaining in
    let comp = component_of q start in
    result := restrict q ~keep:(Hashtbl.mem comp) :: !result;
    remaining := List.filter (fun r -> not (Hashtbl.mem comp r)) !remaining
  done;
  List.rev !result

let check_database q db =
  List.iter
    (fun a ->
      match Database.find_opt a.relation db with
      | None ->
          Errors.schema_errorf "database lacks relation %s required by CQ %s"
            a.relation q.qname
      | Some r ->
          if not (Schema.equal_as_sets (Relation.schema r) a.schema) then
            Errors.schema_errorf
              "relation %s has schema %a but CQ %s expects %a" a.relation
              Schema.pp (Relation.schema r) q.qname Schema.pp a.schema)
    q.atom_list

let instance q db =
  check_database q db;
  List.map
    (fun a -> (a.relation, Relation.reorder a.schema (Database.find a.relation db)))
    q.atom_list

let equal a b =
  String.equal a.qname b.qname
  && List.length a.atom_list = List.length b.atom_list
  && List.for_all2
       (fun x y -> String.equal x.relation y.relation && Schema.equal x.schema y.schema)
       a.atom_list b.atom_list

let pp ppf q =
  let pp_atom ppf a =
    Format.fprintf ppf "%s(%a)" a.relation Attr.pp_list (Schema.attrs a.schema)
  in
  Format.fprintf ppf "%s(%a) :- %a." q.qname Attr.pp_list (vars q)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_atom)
    q.atom_list

let to_string q = Format.asprintf "%a" pp q
