(** Datalog-syntax parser for conjunctive queries with selections.

    Accepted grammar (whitespace-insensitive, [%] starts a line comment):

    {v
    query  ::= head ":-" item ("," item)* "."?
    head   ::= ident "(" vars ")" | ident "(" "*" ")" | ident
    item   ::= atom | constraint
    atom   ::= ident "(" vars ")"
    vars   ::= ident ("," ident)*
    constraint ::= ident op literal
    op     ::= "=" | "!=" | "<" | "<=" | ">" | ">="
    literal ::= integer | 'string' | true | false
    v}

    The head is checked against the body atoms: a full CQ must list every
    body variable (in any order); ["*"] or a bare name accepts them all.
    Constraints are the paper's Section 5.4 selections — tuples failing
    them get sensitivity 0; feed them to the engines via
    {!Constraints.selection}. *)

exception Parse_error of string
(** Carries a message with the offending position. *)

val parse_full : string -> Cq.t * Constraints.t list
(** Raises {!Parse_error} on syntax errors,
    {!Tsens_relational.Errors.Schema_error} on semantic ones (self-joins,
    head/body variable mismatch, constraints on unknown variables). *)

val parse : string -> Cq.t
(** Like {!parse_full} but raises {!Errors.Schema_error} if the query has
    constraints — for callers that cannot apply a selection. *)

val parse_opt : string -> Cq.t option
