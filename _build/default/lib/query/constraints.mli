(** Selection constraints on query variables.

    The paper's Section 5.4 extends the sensitivity algorithms to
    selection predicates evaluated per tuple; this module is the concrete
    predicate language the datalog parser produces: comparisons of one
    variable against a literal, e.g. [B = 'b1'], [CK != 42], [A < 10].
    A conjunction of constraints becomes the per-relation selection
    function the sensitivity engines consume: a tuple of relation R must
    satisfy every constraint whose variable is one of R's attributes. *)

open Tsens_relational

type op = Eq | Neq | Lt | Le | Gt | Ge

type t = { var : Attr.t; op : op; value : Value.t }

val holds : t -> Value.t -> bool
(** Comparison via {!Value.compare} (cross-constructor order documented
    there). *)

val check : Cq.t -> t list -> unit
(** Every constrained variable must occur in the query. Raises
    {!Errors.Schema_error} otherwise. *)

val selection :
  t list -> (string -> Schema.t -> Tuple.t -> bool) option
(** The conjunction as a selection function; [None] for the empty list
    (so callers can pass it straight as an optional argument). *)

val satisfying_value : t list -> Attr.t -> Value.t list -> Value.t option
(** A value for [attr] satisfying all constraints on it: the first
    admissible candidate, else a synthesized one (the [Eq] constant, a
    neighbour of an integer bound, or a fresh string). [None] only when
    the constraints on [attr] are contradictory ([A = 1, A = 2]). Used to
    extrapolate witness attributes that the multiplicity table does not
    pin down. *)

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit
