lib/query/gyo.ml: Cq Errors Format List Schema String Tsens_relational
