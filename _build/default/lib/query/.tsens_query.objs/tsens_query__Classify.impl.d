lib/query/classify.ml: Cq Format Gyo Join_tree List Schema String Tsens_relational
