lib/query/constraints.ml: Attr Cq Errors Format List Schema Tsens_relational Tuple Value
