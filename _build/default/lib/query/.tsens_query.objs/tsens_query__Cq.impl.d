lib/query/cq.ml: Attr Database Errors Format Hashtbl List Relation Schema String Tsens_relational
