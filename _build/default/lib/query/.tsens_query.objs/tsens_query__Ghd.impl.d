lib/query/ghd.ml: Cq Errors Format Gyo Hashtbl Join_tree List Map Schema String Tsens_relational
