lib/query/constraints.mli: Attr Cq Format Schema Tsens_relational Tuple Value
