lib/query/ghd.mli: Cq Format Join_tree
