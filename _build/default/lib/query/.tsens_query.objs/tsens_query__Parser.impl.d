lib/query/parser.ml: Constraints Cq Errors Format List Printf String Tsens_relational Value
