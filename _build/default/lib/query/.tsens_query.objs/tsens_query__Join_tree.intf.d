lib/query/join_tree.mli: Cq Format Schema Tsens_relational
