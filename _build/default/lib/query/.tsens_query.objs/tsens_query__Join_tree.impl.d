lib/query/join_tree.ml: Cq Errors Format Gyo Int List Map Schema String Tsens_relational
