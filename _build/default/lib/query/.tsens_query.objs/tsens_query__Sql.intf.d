lib/query/sql.mli: Attr Constraints Cq Database Tsens_relational
