lib/query/sql.ml: Attr Constraints Cq Database Format Hashtbl List Map Option Printf Relation Schema String Tsens_relational Value
