lib/query/gyo.mli: Cq Format
