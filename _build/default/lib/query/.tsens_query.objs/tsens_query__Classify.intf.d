lib/query/classify.mli: Cq Format Join_tree
