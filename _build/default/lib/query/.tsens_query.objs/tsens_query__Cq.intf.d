lib/query/cq.mli: Attr Database Format Relation Schema Tsens_relational
