lib/query/parser.mli: Constraints Cq
