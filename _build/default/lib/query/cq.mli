(** Full conjunctive queries without self-joins.

    A CQ is a set of atoms [R_i(A_i)] over named relations; the head
    implicitly contains every variable (the paper's "full CQ"), and bag
    semantics is fixed by the relational layer. Relations may appear at
    most once (no self-joins — the paper's standing assumption). Atom
    order is preserved: the experiments feed specific join plans to both
    TSens and the elastic baseline. *)

open Tsens_relational

type atom = { relation : string; schema : Schema.t }

type t

val make : ?name:string -> (string * string list) list -> t
(** [make atoms] builds a CQ from [(relation, attributes)] pairs.
    Raises {!Errors.Schema_error} if the atom list is empty, a relation
    name repeats (self-join), or an atom has duplicate attributes. *)

val name : t -> string
(** The query name, defaulting to ["Q"]. *)

val atoms : t -> atom list
val atom_count : t -> int
val relation_names : t -> string list

val schema_of : t -> string -> Schema.t
(** Schema of one atom. Raises {!Errors.Schema_error} for unknown
    relations. *)

val mem_relation : t -> string -> bool

val vars : t -> Attr.t list
(** All attributes, in first-occurrence order. *)

val var_count : t -> int

val atoms_with : t -> Attr.t -> string list
(** Relations whose atom mentions the attribute, in atom order. *)

val shared_vars : t -> Attr.t list
(** Attributes occurring in at least two atoms. *)

val lonely_vars : t -> Attr.t list
(** Attributes occurring in exactly one atom — ignored by the DP and
    extrapolated in witnesses (paper Section 5.4, "Other"). *)

val restrict : t -> keep:(string -> bool) -> t
(** Sub-query of the atoms whose relation satisfies [keep]. Raises
    {!Errors.Schema_error} if no atom remains. *)

val project_onto_shared : t -> t
(** The same query with each atom's lonely variables removed (atoms that
    would become nullary keep one variable). Used to normalize before the
    sensitivity DP. *)

val is_connected : t -> bool
(** Whether the query hypergraph is connected. *)

val components : t -> t list
(** Connected components, each as a sub-query; singleton list iff
    {!is_connected}. *)

val check_database : t -> Database.t -> unit
(** Checks that every atom's relation exists in the database with exactly
    the atom's schema (up to column order). Raises {!Errors.Schema_error}
    otherwise. *)

val instance : t -> Database.t -> (string * Relation.t) list
(** The atom relations from a database, columns reordered to each atom's
    schema, in atom order. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Datalog rendering: [Q(A, B) :- R1(A), R2(A, B).] *)

val to_string : t -> string
