(** The sparse vector technique (AboveThreshold).

    Given a stream of queries of sensitivity Δ and a public threshold,
    reports the index of the first query whose noisy value exceeds the
    noisy threshold, consuming a fixed ε regardless of how many queries
    are inspected (Lyu, Su, Li 2017, Algorithm 1). Both TSensDP and the
    PrivSQL baseline use it to learn truncation thresholds (paper
    Section 6.2). *)

open Tsens_relational

val above_threshold :
  Prng.t ->
  epsilon:float ->
  sensitivity:float ->
  threshold:float ->
  queries:(int -> float) ->
  count:int ->
  int option
(** [above_threshold rng ~epsilon ~sensitivity ~threshold ~queries ~count]
    evaluates [queries 0 .. queries (count-1)] in order and returns the
    first index whose Lap(4Δ/ε)-noised value reaches the Lap(2Δ/ε)-noised
    threshold, or [None] if none does. Raises [Invalid_argument] on
    non-positive [epsilon], [sensitivity], or negative [count]. *)
