type t = {
  noisy_answer : float;
  truncated_answer : float;
  true_answer : float;
  global_sensitivity : float;
  threshold : int;
  epsilon : float;
  epsilon_threshold : float;
}

let released r = Float.max 0.0 r.noisy_answer

let relative_to truth x =
  if truth = 0.0 then Float.abs x else Float.abs (x -. truth) /. truth

let relative_error r = relative_to r.true_answer (released r)
let relative_bias r = relative_to r.true_answer r.truncated_answer

let pp ppf r =
  Format.fprintf ppf
    "@[<v>released: %.1f (true %.1f, truncated %.1f)@,\
     error: %.2f%%  bias: %.2f%%@,\
     GS: %.1f  tau: %d  epsilon: %.3f (%.3f on threshold)@]"
    (released r) r.true_answer r.truncated_answer
    (100.0 *. relative_error r)
    (100.0 *. relative_bias r)
    r.global_sensitivity r.threshold r.epsilon r.epsilon_threshold
