(** A PrivSQL-style baseline (Kotsogiannis et al., VLDB 2019), as the
    paper's Section 7.3 configures it.

    PrivSQL truncates by *join-key frequency* rather than by tuple
    sensitivity: for each relation downstream of the primary private
    relation through foreign keys (the "policy"), it privately learns a
    frequency cap with the sparse vector technique and drops every tuple
    whose join-key group exceeds the cap. The global sensitivity of the
    truncated query is then derived from frequency bounds — here via the
    elastic-sensitivity recurrence on the truncated database, which is
    exactly a frequency-product bound. Datasets without foreign keys (the
    Facebook queries) get no truncation at all, hence zero bias but a
    large global sensitivity — reproducing the paper's observation that
    PrivSQL either over-truncates (q2) or over-estimates sensitivity
    (q3, the 4-cycle, the star query). *)

open Tsens_relational
open Tsens_query

type config = {
  epsilon : float;  (** total privacy budget *)
  threshold_fraction : float;  (** share of ε for threshold learning *)
  ell : int;  (** public upper bound on any join-key frequency *)
  private_relation : string;
  cascade : (string * Attr.t) list;
      (** downstream relations and the foreign-key attribute through
          which deletions cascade, e.g.
          [[("Orders", "custkey"); ("Lineitem", "orderkey")]]; empty for
          datasets without foreign keys. *)
}

val default_config :
  ell:int ->
  private_relation:string ->
  cascade:(string * Attr.t) list ->
  config

val run :
  Prng.t -> config -> ?plans:Ghd.t list -> Cq.t -> Database.t -> Report.t
(** Raises [Invalid_argument] on bad configuration,
    {!Errors.Schema_error} if a cascade relation or attribute is not in
    the query. *)
