(** Sequential-composition budget accounting.

    Pure ε-differential privacy composes additively: releasing results of
    an ε₁-DP and an ε₂-DP computation on the same database is
    (ε₁+ε₂)-DP. An accountant tracks a total budget across releases —
    e.g. answering several counting queries over one private table — and
    refuses to exceed it, turning silent over-spending into a loud
    error. *)

type t

exception Budget_exhausted of { requested : float; remaining : float }

val create : epsilon:float -> t
(** A fresh budget. Raises [Invalid_argument] if [epsilon <= 0]. *)

val total : t -> float
val spent : t -> float
val remaining : t -> float

val spend : t -> float -> unit
(** Consumes part of the budget. Raises {!Budget_exhausted} (spending
    nothing) if the request exceeds what remains, [Invalid_argument] if
    it is not positive. A tolerance of 1e-9 absorbs float rounding. *)

val charge : t -> epsilon:float -> (unit -> 'a) -> 'a
(** [charge t ~epsilon f] spends, then runs [f] — the budget is consumed
    even if [f] raises (the release may have partially happened). *)

val pp : Format.formatter -> t -> unit
