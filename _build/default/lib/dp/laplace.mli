(** The Laplace mechanism (paper Definition 6.3).

    Adds noise drawn from Lap(GS(Q)/ε) to a numeric query answer,
    guaranteeing ε-differential privacy for a query of global sensitivity
    GS(Q). Randomness comes from the repository's deterministic
    {!Tsens_relational.Prng} so experiments are reproducible; this is a
    research simulation, not a hardened implementation (no defence
    against floating-point side channels). *)

open Tsens_relational

val sample : Prng.t -> scale:float -> float
(** A draw from the zero-mean Laplace distribution with the given scale
    (inverse-CDF sampling). Raises [Invalid_argument] if
    [scale <= 0]. *)

val mechanism :
  Prng.t -> epsilon:float -> sensitivity:float -> float -> float
(** [mechanism rng ~epsilon ~sensitivity x] is [x + Lap(sensitivity /
    epsilon)]. Raises [Invalid_argument] on non-positive [epsilon] or
    negative [sensitivity]; a zero-sensitivity query is returned
    exactly. *)

val variance : epsilon:float -> sensitivity:float -> float
(** The noise variance 2·(GS/ε)², for error budgeting. *)
