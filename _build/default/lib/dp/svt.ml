
let above_threshold rng ~epsilon ~sensitivity ~threshold ~queries ~count =
  if epsilon <= 0.0 then invalid_arg "Svt.above_threshold: non-positive epsilon";
  if sensitivity <= 0.0 then
    invalid_arg "Svt.above_threshold: non-positive sensitivity";
  if count < 0 then invalid_arg "Svt.above_threshold: negative count";
  let noisy_threshold =
    threshold +. Laplace.sample rng ~scale:(2.0 *. sensitivity /. epsilon)
  in
  let rec loop i =
    if i >= count then None
    else
      let noisy =
        queries i +. Laplace.sample rng ~scale:(4.0 *. sensitivity /. epsilon)
      in
      if noisy >= noisy_threshold then Some i else loop (i + 1)
  in
  loop 0
