lib/dp/accountant.ml: Float Format
