lib/dp/laplace.mli: Prng Tsens_relational
