lib/dp/svt.mli: Prng Tsens_relational
