lib/dp/svt.ml: Laplace
