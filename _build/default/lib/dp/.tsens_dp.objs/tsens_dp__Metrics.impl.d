lib/dp/metrics.ml: Float Format List Report Unix
