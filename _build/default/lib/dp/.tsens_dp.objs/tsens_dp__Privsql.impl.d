lib/dp/privsql.ml: Array Attr Count Cq Database Elastic Errors Index Laplace List Relation Report Schema Svt Tsens_query Tsens_relational Tsens_sensitivity Tuple Yannakakis
