lib/dp/truncation.ml: Array Count Database Relation Tsens Tsens_relational Tsens_sensitivity
