lib/dp/truncation.mli: Count Database Tsens Tsens_relational Tsens_sensitivity
