lib/dp/report.mli: Format
