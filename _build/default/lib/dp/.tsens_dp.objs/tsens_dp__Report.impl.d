lib/dp/report.ml: Float Format
