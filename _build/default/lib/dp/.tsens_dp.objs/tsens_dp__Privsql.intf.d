lib/dp/privsql.mli: Attr Cq Database Ghd Prng Report Tsens_query Tsens_relational
