lib/dp/metrics.mli: Format Report
