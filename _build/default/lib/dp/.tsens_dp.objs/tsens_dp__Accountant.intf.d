lib/dp/accountant.mli: Format
