lib/dp/mechanism.mli: Cq Database Ghd Prng Report Tsens Tsens_query Tsens_relational Tsens_sensitivity
