lib/dp/laplace.ml: Float Prng Tsens_relational
