lib/dp/mechanism.ml: Laplace Report Svt Truncation Tsens Tsens_sensitivity
