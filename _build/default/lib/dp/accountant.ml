type t = { total : float; mutable used : float }

exception Budget_exhausted of { requested : float; remaining : float }

let tolerance = 1e-9

let create ~epsilon =
  if epsilon <= 0.0 then invalid_arg "Accountant.create: non-positive budget";
  { total = epsilon; used = 0.0 }

let total t = t.total
let spent t = t.used
let remaining t = Float.max 0.0 (t.total -. t.used)

let spend t epsilon =
  if epsilon <= 0.0 then invalid_arg "Accountant.spend: non-positive epsilon";
  if epsilon > remaining t +. tolerance then
    raise (Budget_exhausted { requested = epsilon; remaining = remaining t });
  t.used <- t.used +. epsilon

let charge t ~epsilon f =
  spend t epsilon;
  f ()

let pp ppf t =
  Format.fprintf ppf "spent %.4f of %.4f (%.4f remaining)" t.used t.total
    (remaining t)
