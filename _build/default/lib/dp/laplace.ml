open Tsens_relational

let sample rng ~scale =
  if scale <= 0.0 then invalid_arg "Laplace.sample: non-positive scale";
  (* Inverse CDF: u uniform on (-1/2, 1/2); x = -b sgn(u) ln(1 - 2|u|). *)
  let u = Prng.uniform rng -. 0.5 in
  let sign = if u < 0.0 then -1.0 else 1.0 in
  -.scale *. sign *. log (1.0 -. (2.0 *. Float.abs u))

let mechanism rng ~epsilon ~sensitivity x =
  if epsilon <= 0.0 then invalid_arg "Laplace.mechanism: non-positive epsilon";
  if sensitivity < 0.0 then
    invalid_arg "Laplace.mechanism: negative sensitivity";
  if sensitivity = 0.0 then x
  else x +. sample rng ~scale:(sensitivity /. epsilon)

let variance ~epsilon ~sensitivity =
  let b = sensitivity /. epsilon in
  2.0 *. b *. b
