(** The 3SAT reduction behind Theorem 3.2 (NP-hardness of the local
    sensitivity problem in combined complexity).

    A formula with s clauses over l variables becomes an *acyclic* query
    of s+1 atoms: one relation per clause holding its satisfying
    assignments, plus an empty relation R0 over all variables. The
    instance's local sensitivity is positive iff the formula is
    satisfiable — the witness tuple (necessarily an insertion into R0) is
    a satisfying assignment. Exercising TSens on these instances
    demonstrates both the hardness frontier and the correctness of the
    upward-sensitivity machinery on empty relations. *)

open Tsens_relational

type literal = { var : int; negated : bool }
(** Variables are numbered from 0. *)

type clause = literal list
type formula = { vars : int; clauses : clause list }

val make_formula : vars:int -> clause list -> formula
(** Validates that every literal's variable is in range and clauses are
    non-empty with distinct variables; raises [Invalid_argument]
    otherwise. *)

val random_formula : Prng.t -> vars:int -> clauses:int -> formula
(** Random 3SAT (clauses over three distinct variables when [vars >= 3],
    smaller otherwise). *)

val to_instance : formula -> Tsens_query.Cq.t * Database.t
(** The reduction: query [Q(v0..vl-1) :- R0(v0..), C1(..), ..., Cs(..)]
    with R0 empty and each Ci holding the boolean tuples satisfying
    clause i. The query is acyclic by construction. *)

val brute_force_sat : formula -> bool
(** 2^vars enumeration oracle (tests only; [vars] ≤ 20 enforced). *)

val satisfiable_via_sensitivity : formula -> bool
(** Theorem 3.2's criterion, decided with TSens: LS(Q, D) > 0. *)

val assignment_of_witness : formula -> Tsens_sensitivity.Sens_types.witness -> bool array option
(** Decodes a witness tuple into an assignment and checks it satisfies
    the formula; [None] if the witness is not an R0 insertion or does not
    satisfy. *)
