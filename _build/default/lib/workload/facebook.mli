(** Synthetic ego-network data in the shape of the paper's Facebook
    workload (SNAP ego-net of user 348: 225 nodes, ~6.4k directed edges,
    567 social circles).

    Substitution note (DESIGN.md): the SNAP download is replaced by a
    seeded generator with the same structure — one ego graph with skewed
    degrees, overlapping circles with skewed sizes, bidirected edges.
    Per the paper's construction, each circle's induced edge set E_i is
    ranked by size and merged into four bag-semantics edge tables
    (E_i goes to R_{rank mod 4}); a triangle table materializes the
    self-join R4(x,y) ⋈ R4(y,z) ⋈ R4(z,x). Heavy-tailed edge
    multiplicities — the property the sensitivity experiments need —
    arise from hub nodes being in many circles. *)

open Tsens_relational

type params = {
  nodes : int;  (** graph vertices (default 225) *)
  edges : int;  (** undirected edges before bidirecting (default 6400) *)
  circles : int;  (** number of social circles (default 567) *)
  seed : int;
}

val default_params : params

type data
(** Generated edge tables and triangles, independent of attribute
    naming. *)

val generate : params -> data

val edge_table : data -> int -> (int * int) list
(** [edge_table d i] for i ∈ 0..3: the directed edge bag of table R(i+1),
    with repetitions for edges present in several circles of the same
    residue class. Raises [Invalid_argument] outside 0..3. *)

val triangle_count : data -> int

val edge_relation : data -> int -> x:string -> y:string -> Relation.t
(** Edge table i as a relation with the given attribute names (queries
    bind the same tables to different variables). *)

val triangle_relation : data -> a:string -> b:string -> c:string -> Relation.t
(** The materialized triangle table over edge table 3 (the paper's R4
    self-join), bag semantics. *)
