open Tsens_relational

let relation_names =
  [
    "Region"; "Nation"; "Supplier"; "Customer"; "Part"; "Partsupp"; "Orders";
    "Lineitem";
  ]

let scaled scale base = max 1 (int_of_float (Float.round (float_of_int base *. scale)))

let sizes ~scale =
  if scale <= 0.0 then invalid_arg "Tpch.sizes: non-positive scale";
  [
    ("Region", 5);
    ("Nation", 25);
    ("Supplier", scaled scale 10_000);
    ("Customer", scaled scale 150_000);
    ("Part", scaled scale 200_000);
    ("Partsupp", 4 * scaled scale 200_000);
    ("Orders", scaled scale 1_500_000);
    ("Lineitem", 4 * scaled scale 1_500_000);
  ]

let v = Value.int

let generate ?(seed = 42) ~scale () =
  let sizes = sizes ~scale in
  let size name = List.assoc name sizes in
  let root = Prng.create seed in
  (* One independent stream per table keeps the data stable under
     reordering of the generation code. *)
  let stream_supplier = Prng.split root in
  let stream_customer = Prng.split root in
  let stream_partsupp = Prng.split root in
  let stream_orders = Prng.split root in
  let stream_lineitem = Prng.split root in
  let region =
    Relation.of_tuples
      ~schema:(Schema.of_list [ "RK" ])
      (List.init (size "Region") (fun i -> Tuple.of_list [ v i ]))
  in
  let nations = size "Nation" in
  let nation =
    Relation.of_tuples
      ~schema:(Schema.of_list [ "RK"; "NK" ])
      (List.init nations (fun i ->
           Tuple.of_list [ v (i mod size "Region"); v i ]))
  in
  let suppliers = size "Supplier" in
  let supplier =
    Relation.of_tuples
      ~schema:(Schema.of_list [ "NK"; "SK" ])
      (List.init suppliers (fun i ->
           Tuple.of_list [ v (Prng.int stream_supplier nations); v i ]))
  in
  let customers = size "Customer" in
  let customer =
    Relation.of_tuples
      ~schema:(Schema.of_list [ "NK"; "CK" ])
      (List.init customers (fun i ->
           Tuple.of_list [ v (Prng.int stream_customer nations); v i ]))
  in
  let parts = size "Part" in
  let part =
    Relation.of_tuples
      ~schema:(Schema.of_list [ "PK" ])
      (List.init parts (fun i -> Tuple.of_list [ v i ]))
  in
  (* Four (not necessarily distinct) suppliers per part, as in dbgen's
     PS table; a bag duplicate just raises that pair's multiplicity. *)
  let partsupp_pairs =
    Array.init (4 * parts) (fun i ->
        (Prng.int stream_partsupp suppliers, i / 4))
  in
  let partsupp =
    Relation.of_tuples
      ~schema:(Schema.of_list [ "SK"; "PK" ])
      (Array.to_list partsupp_pairs
      |> List.map (fun (sk, pk) -> Tuple.of_list [ v sk; v pk ]))
  in
  let orders_n = size "Orders" in
  let order_customers =
    Array.init orders_n (fun _ -> Prng.int stream_orders customers)
  in
  let orders =
    Relation.of_tuples
      ~schema:(Schema.of_list [ "CK"; "OK" ])
      (List.init orders_n (fun i -> Tuple.of_list [ v order_customers.(i); v i ]))
  in
  (* 1–7 lineitems per order (mean 4), each referencing a partsupp pair so
     the q2/q3 joins connect. The total is trimmed/padded to the target
     size to keep |Lineitem| = 4|Orders| exactly. *)
  let target_lineitems = size "Lineitem" in
  let lineitems = ref [] in
  let produced = ref 0 in
  let emit ok =
    if !produced < target_lineitems then begin
      let sk, pk =
        partsupp_pairs.(Prng.int stream_lineitem (Array.length partsupp_pairs))
      in
      lineitems := Tuple.of_list [ v ok; v sk; v pk ] :: !lineitems;
      incr produced
    end
  in
  for ok = 0 to orders_n - 1 do
    let per_order = 1 + Prng.int stream_lineitem 7 in
    for _ = 1 to per_order do
      emit ok
    done
  done;
  while !produced < target_lineitems do
    emit (Prng.int stream_lineitem orders_n)
  done;
  let lineitem =
    Relation.of_tuples ~schema:(Schema.of_list [ "OK"; "SK"; "PK" ]) !lineitems
  in
  Database.of_list
    [
      ("Region", region);
      ("Nation", nation);
      ("Supplier", supplier);
      ("Customer", customer);
      ("Part", part);
      ("Partsupp", partsupp);
      ("Orders", orders);
      ("Lineitem", lineitem);
    ]
