(** Synthetic TPC-H-style data (the paper's Section 7.1 schema).

    A from-scratch, seeded generator with the benchmark's relative
    cardinalities at scale 1 — Region 5, Nation 25, Supplier 10k,
    Customer 150k, Part 200k, Partsupp 800k, Orders 1.5M, Lineitem 6M —
    and the foreign-key distributions the queries join through: nations
    round-robin over regions, uniform customer/supplier nations, four
    suppliers per part, uniform order customers, 1–7 lineitems per order
    each referencing an existing partsupp pair. Attribute names follow
    the paper: RK, NK, CK, OK, SK, PK.

    Substitution note (DESIGN.md): this replaces the dbgen tool; absolute
    counts differ from dbgen's pseudo-random streams but the join-fanout
    structure the sensitivity experiments measure is preserved. *)

open Tsens_relational

val relation_names : string list
(** ["Region"; "Nation"; "Supplier"; "Customer"; "Part"; "Partsupp";
    "Orders"; "Lineitem"]. *)

val sizes : scale:float -> (string * int) list
(** Target row counts at a scale factor (each at least 1; Region and
    Nation do not scale). Raises [Invalid_argument] on non-positive
    scale. *)

val generate : ?seed:int -> scale:float -> unit -> Database.t
(** Deterministic in [seed] (default 42) and [scale]. *)
