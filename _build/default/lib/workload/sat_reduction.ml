open Tsens_relational
open Tsens_query
open Tsens_sensitivity

type literal = { var : int; negated : bool }
type clause = literal list
type formula = { vars : int; clauses : clause list }

let make_formula ~vars clauses =
  if vars < 1 then invalid_arg "Sat_reduction.make_formula: no variables";
  List.iter
    (fun clause ->
      if clause = [] then
        invalid_arg "Sat_reduction.make_formula: empty clause";
      let seen = Hashtbl.create 4 in
      List.iter
        (fun { var; _ } ->
          if var < 0 || var >= vars then
            invalid_arg "Sat_reduction.make_formula: variable out of range";
          if Hashtbl.mem seen var then
            invalid_arg
              "Sat_reduction.make_formula: repeated variable in clause";
          Hashtbl.add seen var ())
        clause)
    clauses;
  { vars; clauses }

let random_formula rng ~vars ~clauses =
  if vars < 1 then invalid_arg "Sat_reduction.random_formula: no variables";
  let width = min 3 vars in
  let clause () =
    let chosen = Hashtbl.create 4 in
    while Hashtbl.length chosen < width do
      Hashtbl.replace chosen (Prng.int rng vars) ()
    done;
    Hashtbl.fold
      (fun var () acc -> { var; negated = Prng.bool rng } :: acc)
      chosen []
  in
  make_formula ~vars (List.init clauses (fun _ -> clause ()))

let var_attr i = Printf.sprintf "v%d" i

let clause_satisfied clause assignment =
  List.exists
    (fun { var; negated } -> if negated then not assignment.(var) else assignment.(var))
    clause

(* All boolean tuples over the clause's variables that satisfy it:
   2^width - 1 rows. *)
let clause_relation clause =
  let vars = List.map (fun l -> l.var) clause in
  let width = List.length vars in
  let schema = Schema.of_list (List.map var_attr vars) in
  let rows = ref [] in
  for mask = 0 to (1 lsl width) - 1 do
    let lookup = Hashtbl.create 4 in
    List.iteri
      (fun pos var -> Hashtbl.replace lookup var (mask land (1 lsl pos) <> 0))
      vars;
    let satisfied =
      List.exists
        (fun { var; negated } ->
          let value = Hashtbl.find lookup var in
          if negated then not value else value)
        clause
    in
    if satisfied then
      rows :=
        Tuple.of_list
          (List.map (fun v -> Value.bool (Hashtbl.find lookup v)) vars)
        :: !rows
  done;
  (schema, Relation.of_tuples ~schema !rows)

let to_instance formula =
  let r0_attrs = List.init formula.vars var_attr in
  let clause_atoms =
    List.mapi
      (fun i clause ->
        let name = Printf.sprintf "C%d" (i + 1) in
        let schema, rel = clause_relation clause in
        (name, Schema.attrs schema, rel))
      formula.clauses
  in
  let cq =
    Cq.make ~name:"sat"
      (("R0", r0_attrs)
      :: List.map (fun (name, attrs, _) -> (name, attrs)) clause_atoms)
  in
  let db =
    Database.of_list
      (("R0", Relation.empty (Schema.of_list r0_attrs))
      :: List.map (fun (name, _, rel) -> (name, rel)) clause_atoms)
  in
  (cq, db)

let brute_force_sat formula =
  if formula.vars > 20 then
    invalid_arg "Sat_reduction.brute_force_sat: too many variables";
  let n = formula.vars in
  let rec try_mask mask =
    if mask >= 1 lsl n then false
    else
      let assignment = Array.init n (fun i -> mask land (1 lsl i) <> 0) in
      if List.for_all (fun c -> clause_satisfied c assignment) formula.clauses
      then true
      else try_mask (mask + 1)
  in
  try_mask 0

let satisfiable_via_sensitivity formula =
  let cq, db = to_instance formula in
  let result = Tsens.local_sensitivity cq db in
  result.Sens_types.local_sensitivity > 0

let assignment_of_witness formula witness =
  if not (String.equal witness.Sens_types.relation "R0") then None
  else
    let assignment =
      Array.init formula.vars (fun i ->
          match Value.as_bool (Tuple.get witness.Sens_types.tuple i) with
          | Some b -> b
          | None -> false (* unconstrained variable: any value works *))
    in
    if List.for_all (fun c -> clause_satisfied c assignment) formula.clauses
    then Some assignment
    else None
