lib/workload/queries.mli: Attr Cq Database Facebook Ghd Tsens_query Tsens_relational
