lib/workload/tpch.ml: Array Database Float List Prng Relation Schema Tsens_relational Tuple Value
