lib/workload/facebook.mli: Relation Tsens_relational
