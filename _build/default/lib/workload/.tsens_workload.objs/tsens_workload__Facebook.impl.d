lib/workload/facebook.ml: Array Count Hashtbl Int List Prng Relation Schema Tsens_relational Tuple Value
