lib/workload/sat_reduction.mli: Database Prng Tsens_query Tsens_relational Tsens_sensitivity
