lib/workload/tpch.mli: Database Tsens_relational
