lib/workload/sat_reduction.ml: Array Cq Database Hashtbl List Printf Prng Relation Schema Sens_types String Tsens Tsens_query Tsens_relational Tsens_sensitivity Tuple Value
