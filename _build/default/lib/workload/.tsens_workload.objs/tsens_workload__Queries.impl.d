lib/workload/queries.ml: Attr Cq Database Facebook Ghd Join_tree Printf Tpch Tsens_query Tsens_relational
