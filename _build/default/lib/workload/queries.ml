open Tsens_relational
open Tsens_query

(* ------------------------------------------------------------------ *)
(* TPC-H queries (Figure 5a) *)

let q1 =
  Cq.make ~name:"q1"
    [
      ("Region", [ "RK" ]);
      ("Nation", [ "RK"; "NK" ]);
      ("Customer", [ "NK"; "CK" ]);
      ("Orders", [ "CK"; "OK" ]);
      ("Lineitem", [ "OK"; "SK"; "PK" ]);
    ]

let q2 =
  Cq.make ~name:"q2"
    [
      ("Partsupp", [ "SK"; "PK" ]);
      ("Supplier", [ "NK"; "SK" ]);
      ("Part", [ "PK" ]);
      ("Lineitem", [ "OK"; "SK"; "PK" ]);
    ]

let q3 =
  Cq.make ~name:"q3"
    [
      ("Nation", [ "RK"; "NK" ]);
      ("Supplier", [ "NK"; "SK" ]);
      ("Partsupp", [ "SK"; "PK" ]);
      ("Part", [ "PK" ]);
      ("Region", [ "RK" ]);
      ("Customer", [ "NK"; "CK" ]);
      ("Orders", [ "CK"; "OK" ]);
      ("Lineitem", [ "OK"; "SK"; "PK" ]);
    ]

(* Width-2 decomposition of q3 with |Lineitem|-sized intermediates: the
   cycle N–C–O–L–S–N is covered by joining Lineitem with Supplier. *)
let q3_ghd =
  Ghd.make q3
    ~bags:
      [
        ("LS", [ "Lineitem"; "Supplier" ]);
        ("OC", [ "Orders"; "Customer" ]);
        ("N", [ "Nation" ]);
        ("R", [ "Region" ]);
        ("PS", [ "Partsupp" ]);
        ("P", [ "Part" ]);
      ]
    ~root:"LS"
    ~parents:
      [ ("OC", "LS"); ("N", "OC"); ("R", "N"); ("PS", "LS"); ("P", "PS") ]

(* The paper's Figure 5a hypertree (width 3). *)
let q3_ghd_paper =
  Ghd.make q3
    ~bags:
      [
        ("RNL", [ "Region"; "Nation"; "Lineitem" ]);
        ("OC", [ "Orders"; "Customer" ]);
        ("SP", [ "Supplier"; "Part" ]);
        ("PS", [ "Partsupp" ]);
      ]
    ~root:"RNL"
    ~parents:[ ("OC", "RNL"); ("SP", "RNL"); ("PS", "SP") ]

let tpch_plans =
  [
    Ghd.of_join_tree (Join_tree.of_cq_exn q1);
    Ghd.of_join_tree (Join_tree.of_cq_exn q2);
    q3_ghd;
  ]

(* ------------------------------------------------------------------ *)
(* Facebook queries (Figure 5b) *)

let q4 =
  Cq.make ~name:"q4"
    [ ("R1", [ "A"; "B" ]); ("R2", [ "B"; "C" ]); ("R3", [ "C"; "A" ]) ]

let qw =
  Cq.make ~name:"qw"
    [
      ("R1", [ "A"; "B" ]);
      ("R2", [ "B"; "C" ]);
      ("R3", [ "C"; "D" ]);
      ("R4", [ "D"; "E" ]);
    ]

let qo =
  Cq.make ~name:"qo"
    [
      ("R1", [ "A"; "B" ]);
      ("R2", [ "B"; "C" ]);
      ("R3", [ "C"; "D" ]);
      ("R4", [ "D"; "A" ]);
    ]

let qstar =
  Cq.make ~name:"qstar"
    [
      ("Rt", [ "A"; "B"; "C" ]);
      ("R1", [ "A"; "B" ]);
      ("R2", [ "B"; "C" ]);
      ("R3", [ "C"; "A" ]);
    ]

let q4_ghd =
  Ghd.make q4
    ~bags:[ ("R1R2", [ "R1"; "R2" ]); ("R3b", [ "R3" ]) ]
    ~root:"R1R2"
    ~parents:[ ("R3b", "R1R2") ]

let qo_ghd =
  Ghd.make qo
    ~bags:[ ("R1R2", [ "R1"; "R2" ]); ("R3R4", [ "R3"; "R4" ]) ]
    ~root:"R1R2"
    ~parents:[ ("R3R4", "R1R2") ]

let facebook_plans =
  [
    q4_ghd;
    Ghd.of_join_tree (Join_tree.of_cq_exn qw);
    qo_ghd;
    Ghd.of_join_tree (Join_tree.of_cq_exn qstar);
  ]

(* ------------------------------------------------------------------ *)
(* Instances *)

let tpch_database ?seed ~scale () = Tpch.generate ?seed ~scale ()

let facebook_database data cq =
  let edge i x y = (Printf.sprintf "R%d" (i + 1), Facebook.edge_relation data i ~x ~y) in
  match Cq.name cq with
  | "q4" ->
      Database.of_list [ edge 0 "A" "B"; edge 1 "B" "C"; edge 2 "C" "A" ]
  | "qw" ->
      Database.of_list
        [ edge 0 "A" "B"; edge 1 "B" "C"; edge 2 "C" "D"; edge 3 "D" "E" ]
  | "qo" ->
      Database.of_list
        [ edge 0 "A" "B"; edge 1 "B" "C"; edge 2 "C" "D"; edge 3 "D" "A" ]
  | "qstar" ->
      Database.of_list
        [
          ("Rt", Facebook.triangle_relation data ~a:"A" ~b:"B" ~c:"C");
          edge 0 "A" "B";
          edge 1 "B" "C";
          edge 2 "C" "A";
        ]
  | other ->
      invalid_arg
        (Printf.sprintf "Queries.facebook_database: %s is not a Facebook query"
           other)

(* ------------------------------------------------------------------ *)
(* DP configuration (Section 7.3) *)

type dp_setup = {
  query : Cq.t;
  label : string;
  private_relation : string;
  cascade : (string * Attr.t) list;
  ell : int;
}

let dp_setups =
  let tpch_customer_cascade =
    [ ("Orders", "CK"); ("Lineitem", "OK") ]
  in
  [
    ( "q1",
      {
        query = q1;
        label = "q1";
        private_relation = "Customer";
        cascade = tpch_customer_cascade;
        ell = 150;
      } );
    ( "q2",
      {
        query = q2;
        label = "q2";
        private_relation = "Supplier";
        cascade = [ ("Partsupp", "SK"); ("Lineitem", "SK") ];
        ell = 1_000;
      } );
    ( "q3",
      {
        query = q3;
        label = "q3";
        private_relation = "Customer";
        cascade = tpch_customer_cascade;
        ell = 15;
      } );
    ( "q4",
      { query = q4; label = "q4"; private_relation = "R2"; cascade = []; ell = 30 } );
    ( "qw",
      {
        query = qw;
        label = "qw";
        private_relation = "R2";
        cascade = [];
        ell = 40_000;
      } );
    ( "qo",
      { query = qo; label = "qo"; private_relation = "R2"; cascade = []; ell = 200 }
    );
    ( "qstar",
      {
        query = qstar;
        label = "qstar";
        private_relation = "R2";
        cascade = [];
        ell = 20;
      } );
  ]
