(** The paper's seven evaluation queries (Figure 5) with their join plans
    and DP configurations (Section 7.1 / 7.3).

    TPC-H queries: q1 (path through Region–Nation–Customer–Orders–
    Lineitem), q2 (acyclic around Partsupp), q3 (cyclic: the universal
    join constrained so supplier and customer share a nation). Facebook
    queries over the four edge tables: q4 (triangle), qw (4-hop path),
    q○ (4-cycle), q* (triangle table joined with its three edges —
    acyclic but not doubly acyclic). Attributes present in a base table
    but not mentioned by the paper's query (e.g. Lineitem's SK, PK in q1)
    ride along as lonely attributes; bag semantics makes the counts
    identical. *)

open Tsens_relational
open Tsens_query

(** {1 TPC-H queries} *)

val q1 : Cq.t
val q2 : Cq.t
val q3 : Cq.t

val q3_ghd : Ghd.t
(** Width-2 decomposition {LS}{OC}{N}{R}{PS}{P} — smaller intermediates
    than the paper's; used by default. *)

val q3_ghd_paper : Ghd.t
(** The paper's Figure 5a hypertree {R,N,L}{O,C}{S,P}{PS} (width 3). *)

val tpch_plans : Ghd.t list
(** Plans for q1–q3 (pass as [~plans] to the sensitivity engines). *)

(** {1 Facebook queries} *)

val q4 : Cq.t  (** triangle R1(A,B), R2(B,C), R3(C,A) *)

val qw : Cq.t  (** path R1(A,B), R2(B,C), R3(C,D), R4(D,E) *)

val qo : Cq.t  (** 4-cycle R1(A,B), R2(B,C), R3(C,D), R4(D,A) *)

val qstar : Cq.t  (** Rt(A,B,C), R1(A,B), R2(B,C), R3(C,A) *)

val q4_ghd : Ghd.t  (** Figure 5b: {R1,R2}{R3} *)

val qo_ghd : Ghd.t  (** Figure 5b: {R1,R2}{R3,R4} *)

val facebook_plans : Ghd.t list

(** {1 Instances} *)

val tpch_database : ?seed:int -> scale:float -> unit -> Database.t
(** All eight TPC-H tables; every TPC-H query runs against it. *)

val facebook_database : Facebook.data -> Cq.t -> Database.t
(** Binds the generated edge tables (and the triangle table for the star query) to
    the attribute names of one Facebook query. Raises [Invalid_argument]
    for a non-Facebook query. *)

(** {1 DP experiment configuration (Section 7.3)} *)

type dp_setup = {
  query : Cq.t;
  label : string;
  private_relation : string;
  cascade : (string * Attr.t) list;
      (** PrivSQL's foreign-key policy: empty for Facebook queries. *)
  ell : int;
      (** the assumed public upper bound on tuple sensitivity. The paper
          picks per-instance values (q1:100, q2:500, q3:10, q4:70,
          qw:25000, 4-cycle:200, star:15); these are recalibrated the same
          way — slightly above the private relation's largest in-instance
          tuple sensitivity — for this repository's default instances
          (TPC-H scale 0.01, default ego-network). *)
}

val dp_setups : (string * dp_setup) list
(** Keyed by label: q1, q2, q3, q4, qw, qo, qstar. *)
