open Tsens_relational

type params = { nodes : int; edges : int; circles : int; seed : int }

let default_params = { nodes = 225; edges = 6400; circles = 567; seed = 42 }

type data = {
  tables : (int * int) list array; (* 4 directed edge bags *)
  triangles : ((int * int * int) * Count.t) list;
}

(* Skewed node sampling: squaring the uniform biases towards low ids, so
   low-id nodes become hubs that sit in many circles. *)
let skewed_node rng n =
  let u = Prng.uniform rng in
  min (n - 1) (int_of_float (float_of_int n *. u *. u))

let generate params =
  if params.nodes < 3 then invalid_arg "Facebook.generate: need >= 3 nodes";
  let root = Prng.create params.seed in
  let graph_rng = Prng.split root in
  let circle_rng = Prng.split root in
  (* Undirected base graph, dedup'd. *)
  let edge_set = Hashtbl.create (2 * params.edges) in
  let attempts = ref 0 in
  let max_attempts = 40 * params.edges in
  while Hashtbl.length edge_set < params.edges && !attempts < max_attempts do
    incr attempts;
    let a = skewed_node graph_rng params.nodes in
    let b = skewed_node graph_rng params.nodes in
    if a <> b then begin
      let e = (min a b, max a b) in
      if not (Hashtbl.mem edge_set e) then Hashtbl.add edge_set e ()
    end
  done;
  let has_edge a b = Hashtbl.mem edge_set (min a b, max a b) in
  (* Circles: skewed sizes, skewed membership. *)
  let circle_edges =
    List.init params.circles (fun _ ->
        (* Sizes skew small (like SNAP circles); membership is uniform so
           edge multiplicities — the number of circles of one residue
           class containing both endpoints — stay in the single digits. *)
        let u = Prng.uniform circle_rng in
        let size = 2 + int_of_float (20.0 *. u *. u *. u) in
        let members = Hashtbl.create size in
        let tries = ref 0 in
        while Hashtbl.length members < size && !tries < 20 * size do
          incr tries;
          Hashtbl.replace members (Prng.int circle_rng params.nodes) ()
        done;
        let members = Hashtbl.fold (fun m () acc -> m :: acc) members [] in
        let members = List.sort Int.compare members in
        (* Both directions of every base-graph edge inside the circle. *)
        List.concat_map
          (fun a ->
            List.concat_map
              (fun b ->
                if a < b && has_edge a b then [ (a, b); (b, a) ] else [])
              members)
          members)
  in
  (* Rank circles by induced edge-set size (descending) and merge into
     four bag tables by rank mod 4. *)
  let ranked =
    List.stable_sort
      (fun e1 e2 -> Int.compare (List.length e2) (List.length e1))
      circle_edges
  in
  let tables = Array.make 4 [] in
  List.iteri
    (fun rank edges -> tables.(rank mod 4) <- edges @ tables.(rank mod 4))
    ranked;
  (* Triangle table: the bag self-join R4(x,y) ⋈ R4(y,z) ⋈ R4(z,x) over
     edge table 3. *)
  let counts = Hashtbl.create 1024 in
  List.iter
    (fun e ->
      let c = try Hashtbl.find counts e with Not_found -> 0 in
      Hashtbl.replace counts e (c + 1))
    tables.(3);
  let adjacency = Hashtbl.create 1024 in
  Hashtbl.iter
    (fun (x, y) c ->
      let existing = try Hashtbl.find adjacency x with Not_found -> [] in
      Hashtbl.replace adjacency x ((y, c) :: existing))
    counts;
  let neighbours x = try Hashtbl.find adjacency x with Not_found -> [] in
  let triangles = ref [] in
  Hashtbl.iter
    (fun (x, y) c1 ->
      List.iter
        (fun (z, c2) ->
          match Hashtbl.find_opt counts (z, x) with
          | Some c3 ->
              triangles :=
                ((x, y, z), Count.mul c1 (Count.mul c2 c3)) :: !triangles
          | None -> ())
        (neighbours y))
    counts;
  { tables; triangles = !triangles }

let edge_table d i =
  if i < 0 || i > 3 then invalid_arg "Facebook.edge_table: index must be 0..3";
  d.tables.(i)

let triangle_count d = List.length d.triangles

let v = Value.int

let edge_relation d i ~x ~y =
  Relation.of_tuples
    ~schema:(Schema.of_list [ x; y ])
    (List.map (fun (a, b) -> Tuple.of_list [ v a; v b ]) (edge_table d i))

let triangle_relation d ~a ~b ~c =
  Relation.create
    ~schema:(Schema.of_list [ a; b; c ])
    (List.map
       (fun ((x, y, z), cnt) -> (Tuple.of_list [ v x; v y; v z ], cnt))
       d.triangles)
