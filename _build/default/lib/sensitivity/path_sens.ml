open Tsens_relational
open Tsens_query

(* Extrapolates a witness over the atom schema from at most two pinned
   shared-attribute values (paper: endpoint attributes take any value). *)
let witness_of db cq relation pinned =
  let base = Database.find relation db in
  let value_for attr =
    match List.assoc_opt attr pinned with
    | Some v -> v
    | None -> (
        match Relation.active_domain attr base with
        | v :: _ -> v
        | [] -> Value.str "any")
  in
  Tuple.of_list (List.map value_for (Schema.attrs (Cq.schema_of cq relation)))

let check_order cq order =
  match Classify.path_order cq with
  | None ->
      Errors.schema_errorf "CQ %s is not a path join query" (Cq.name cq)
  | Some detected -> (
      match order with
      | None -> detected
      | Some forced ->
          let same l = List.sort String.compare l in
          if
            same forced <> same detected
            || (forced <> detected && forced <> List.rev detected)
          then
            Errors.schema_errorf
              "%s is not a path order of CQ %s"
              (String.concat "," forced) (Cq.name cq)
          else forced)

let local_sensitivity ?order cq db =
  let order = check_order cq order in
  let names = Array.of_list order in
  let m = Array.length names in
  let instance = Database.of_list (Cq.instance cq db) in
  let rel i = Database.find names.(i) instance in
  let schema_of i = Cq.schema_of cq names.(i) in
  if m = 1 then
    (* Single relation: LS is always 1 (paper Section 2.1). *)
    let w = witness_of instance cq names.(0) [] in
    Sens_types.result_of_per_relation
      [ (names.(0), Some (w, schema_of 0, Count.one)) ]
  else begin
    (* common.(i): the attribute linking R_i and R_{i+1} (the paper's
       A_{i+1} with 1-based numbering). *)
    let common =
      Array.init (m - 1) (fun i ->
          Schema.inter (schema_of i) (schema_of (i + 1)))
    in
    (* tops.(i) = ⊤(R_{i+1}) grouped on common.(i-1): incoming paths. *)
    let tops = Array.make m None in
    tops.(1) <- Some (Relation.project common.(0) (rel 0));
    for i = 2 to m - 1 do
      match tops.(i - 1) with
      | Some prev ->
          tops.(i) <-
            Some (Join.join_project ~group:common.(i - 1) prev (rel (i - 1)))
      | None -> assert false
    done;
    (* bots.(i) = ⊥(R_{i+1}) grouped on common.(i-1): outgoing paths. *)
    let bots = Array.make m None in
    bots.(m - 1) <- Some (Relation.project common.(m - 2) (rel (m - 1)));
    for i = m - 2 downto 1 do
      match bots.(i + 1) with
      | Some next ->
          bots.(i) <-
            Some (Join.join_project ~group:common.(i - 1) next (rel i))
      | None -> assert false
    done;
    let heaviest = function
      | None -> Some (Count.one, []) (* endpoints contribute factor 1 *)
      | Some table -> (
          match Relation.max_row table with
          | None -> None (* empty side: every tuple is insensitive *)
          | Some (row, cnt) ->
              let attrs = Schema.attrs (Relation.schema table) in
              Some (cnt, List.combine attrs (Array.to_list row)))
    in
    let bests_in_path_order =
      List.init m (fun i ->
          let top = heaviest tops.(i) in
          let bot = heaviest (if i = m - 1 then None else bots.(i + 1)) in
          let best =
            match (top, bot) with
            | Some (ct, pt), Some (cb, pb) ->
                let w = witness_of instance cq names.(i) (pt @ pb) in
                Some (w, schema_of i, Count.mul ct cb)
            | None, _ | _, None -> None
          in
          (names.(i), best))
    in
    (* Report in atom order, like the other algorithms. *)
    let bests =
      List.map
        (fun r -> (r, List.assoc r bests_in_path_order))
        (Cq.relation_names cq)
    in
    Sens_types.result_of_per_relation bests
  end
