(** The naive polynomial-data-complexity algorithm (Theorem 3.1).

    Local sensitivity by exhaustive re-evaluation: every deletion of an
    existing tuple and every insertion of a tuple from the representative
    domain (Definition 3.1) is tried, re-counting |Q(D')| each time with
    {!Yannakakis.count}. O(m·n^k) — the correctness oracle for the tests
    and the "repeat query evaluation" baseline of Section 7.2; only run
    it on small instances. *)

open Tsens_relational
open Tsens_query

val representative_domain : Cq.t -> Database.t -> string -> Tuple.t list
(** Σ^Ai_repr: the cross product over the relation's attributes of, for a
    shared attribute, the intersection of its active domains in the other
    relations containing it; for a lonely attribute, one arbitrary value
    (first active value of the relation, or a fresh constant). Sorted. *)

val local_sensitivity :
  ?selection:(string -> Schema.t -> Tuple.t -> bool) ->
  ?max_candidates:int ->
  Cq.t ->
  Database.t ->
  Sens_types.result
(** Raises {!Errors.Data_error} when the number of insertion candidates
    of some relation exceeds [max_candidates] (default 100_000) — the
    guard against accidentally exploding a test.

    With [selection] (the Section 5.4 extension, mirroring
    {!Tsens.analyze}): the query runs on the filtered instance, deletions
    range over its tuples, and insertion candidates failing the predicate
    are skipped (their sensitivity is 0 by definition). *)

val tuple_sensitivity : Cq.t -> Database.t -> string -> Tuple.t -> Count.t
(** δ(t, Q, D) of a single tuple by direct re-evaluation:
    max(|Q(D ∪ t)| − |Q(D)|, |Q(D)| − |Q(D ∖ t)|). *)
