(** Shared vocabulary of the sensitivity algorithms.

    Tuple sensitivity δ(t, Q, D) is the maximum change in the bag-counted
    join output when one copy of tuple [t] is added to or removed from its
    relation (paper Definition 2.1); local sensitivity LS(Q, D) is the
    maximum tuple sensitivity over the whole domain (Definition 2.2). All
    algorithms in this library return a {!result}: the local sensitivity,
    a witness tuple attaining it, and the per-relation maxima. *)

open Tsens_relational

type witness = {
  relation : string;  (** the relation the tuple belongs to *)
  schema : Schema.t;  (** that relation's schema *)
  tuple : Tuple.t;  (** a most sensitive tuple, over [schema] *)
  sensitivity : Count.t;
}

type result = {
  local_sensitivity : Count.t;
  witness : witness option;
      (** [None] only when every tuple of the domain has sensitivity 0 and
          no representative tuple exists (e.g. all relations empty). *)
  per_relation : (string * Count.t) list;
      (** maximum tuple sensitivity within each relation's domain, in atom
          order — the paper's Figure 6b view. *)
}

val result_of_per_relation :
  (string * (Tuple.t * Schema.t * Count.t) option) list -> result
(** Assembles a {!result} from per-relation best tuples ([None] when a
    relation's domain is entirely insensitive). Ties across relations are
    broken in list order. *)

val pp_witness : Format.formatter -> witness -> unit
val pp_result : Format.formatter -> result -> unit
