(** Top-k frequency approximation of TSens (paper Section 5.4,
    "Efficient approximations").

    Instead of carrying full topjoin/botjoin tables, only the k heaviest
    entries are kept exactly; every other value of the link domain is
    bounded by the (k+1)-th largest frequency. The result is a sound
    *upper bound* on every tuple sensitivity — a truncation-threshold
    oracle can use it where the exact tables would grow too large (the
    paper's q3 grows nearly quadratically with the input). With [k]
    larger than every intermediate table the bound is exact and equals
    {!Tsens}.

    Compressed tables are re-expanded against the next bag's join keys
    before each join (a missing key costs its default), so bounds stay
    tight where the data is skewed — exactly the regime the paper
    targets. *)

open Tsens_relational
open Tsens_query

val local_sensitivity :
  k:int -> ?plans:Ghd.t list -> Cq.t -> Database.t -> Sens_types.result
(** Upper bounds on the per-relation maximum tuple sensitivities and the
    local sensitivity; the witness is the heaviest *explicitly tracked*
    row (its true sensitivity can be below the bound when the bound comes
    from the compressed tail). Raises [Invalid_argument] if [k < 1]. *)

val intermediate_sizes :
  k:int -> ?plans:Ghd.t list -> Cq.t -> Database.t -> int * int
(** [(exact, compressed)]: total distinct rows across all topjoins and
    botjoins without and with compression — the space saving the
    approximation buys. *)
