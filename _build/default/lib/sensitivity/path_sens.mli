(** Algorithm 1 — local sensitivity of path join queries in O(n log n).

    For Q(A0..Am) :- R1(A0,A1), ..., Rm(Am-1,Am), the sensitivity of a
    tuple (a, b) added to or removed from Ri is (number of partial join
    paths ending at a) × (number of partial join paths starting at b).
    Two linear passes compute the topjoins ⊤(Ri) (multiplicities of
    incoming paths, grouped on Ai-1) and botjoins ⊥(Ri) (outgoing paths);
    the most sensitive tuple of Ri pairs the heaviest entry of ⊤(Ri) with
    the heaviest entry of ⊥(Ri+1) — their join is a cross product, which
    also covers insertions from the representative domain.

    A specialization of {!Tsens} kept separate for the paper's complexity
    claim (Theorem 4.1) and as a differential-testing oracle. *)

open Tsens_query

val local_sensitivity :
  ?order:string list -> Cq.t -> Tsens_relational.Database.t -> Sens_types.result
(** Raises {!Tsens_relational.Errors.Schema_error} if the query is not a
    path join query ({!Classify.path_order}). [order] overrides the
    detected relation order (must be a valid path order over the same
    atoms — useful to fix the direction). *)
