lib/sensitivity/tsens.mli: Count Cq Database Format Ghd Relation Schema Sens_types Tsens_query Tsens_relational Tuple
