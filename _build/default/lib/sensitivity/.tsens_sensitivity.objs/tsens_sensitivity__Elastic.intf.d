lib/sensitivity/elastic.mli: Count Cq Database Ghd Schema Sens_types Tsens_query Tsens_relational
