lib/sensitivity/approx.ml: Array Count Cq Database Ghd Hashtbl Join Join_tree List Option Relation Schema Sens_types Tsens Tsens_query Tsens_relational Tuple Value Yannakakis
