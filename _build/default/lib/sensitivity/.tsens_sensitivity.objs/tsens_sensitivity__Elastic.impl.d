lib/sensitivity/elastic.ml: Count Cq Database Errors Ghd Hashtbl Join_tree List Relation Schema Sens_types String Tsens_query Tsens_relational Yannakakis
