lib/sensitivity/sens_types.ml: Count Format List Schema Tsens_relational Tuple
