lib/sensitivity/yannakakis.ml: Count Cq Database Ghd Hashtbl Join Join_tree List Relation Schema String Tsens_query Tsens_relational
