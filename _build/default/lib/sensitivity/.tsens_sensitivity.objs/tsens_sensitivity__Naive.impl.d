lib/sensitivity/naive.ml: Count Cq Database Errors List Relation Schema Sens_types String Tsens_query Tsens_relational Tuple Value Yannakakis
