lib/sensitivity/naive.mli: Count Cq Database Schema Sens_types Tsens_query Tsens_relational Tuple
