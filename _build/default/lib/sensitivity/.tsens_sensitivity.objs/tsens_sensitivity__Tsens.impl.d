lib/sensitivity/tsens.ml: Array Count Cq Database Errors Format Ghd Hashtbl Heap Join Join_tree List Option Relation Schema Sens_types Seq String Tsens_query Tsens_relational Tuple Value Yannakakis
