lib/sensitivity/path_sens.ml: Array Classify Count Cq Database Errors Join List Relation Schema Sens_types String Tsens_query Tsens_relational Tuple Value
