lib/sensitivity/yannakakis.mli: Count Cq Database Ghd Relation Tsens_query Tsens_relational
