lib/sensitivity/sens_types.mli: Count Format Schema Tsens_relational Tuple
