lib/sensitivity/approx.mli: Cq Database Ghd Sens_types Tsens_query Tsens_relational
