lib/sensitivity/path_sens.mli: Cq Sens_types Tsens_query Tsens_relational
