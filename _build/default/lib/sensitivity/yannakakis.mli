(** Yannakakis-style query evaluation for counting.

    Computes the bag cardinality |Q(D)| of a full CQ in one bottom-up pass
    over a join tree (or GHD bag tree), multiplying and summing
    multiplicities — the "query evaluation" baseline of the paper's
    Figure 7 and the building block of the naive sensitivity algorithm.
    Exact under bag semantics. *)

open Tsens_relational
open Tsens_query

val count_ghd : Ghd.t -> Database.t -> Count.t
(** Bag output size of a connected query via its decomposition. *)

val count : ?plans:Ghd.t list -> Cq.t -> Database.t -> Count.t
(** Output size of an arbitrary full CQ: splits into connected
    components, counts each (using the matching plan from [plans] when
    given, else the GYO join tree, else {!Ghd.auto}), and multiplies.
    Raises {!Errors.Schema_error} if a supplied plan does not match a
    component. *)

val default_plans : Cq.t -> Ghd.t list
(** One decomposition per connected component: the width-1 GHD of the GYO
    join tree when the component is acyclic, {!Ghd.auto} otherwise. *)

val find_plan : Ghd.t list -> Cq.t -> Ghd.t option
(** The plan whose atom set matches the component, if any. *)

val output : Cq.t -> Database.t -> Relation.t
(** The materialized join (atoms folded in order). Exponential output —
    tests and examples only. *)
