(** Elastic sensitivity — the Flex baseline (Johnson, Near, Song 2017).

    An upper bound on local sensitivity from static analysis of a binary
    join plan plus per-relation maximum-frequency statistics ("we first
    let Elastic pre-process the database to obtain the max frequency").
    Following the paper's experimental setup, the plan is the post-order
    traversal of the same join tree / GHD that TSens uses, extended to
    cross products by taking a table's cardinality as the max frequency
    of an empty attribute set.

    For a join q1 ⋈ q2 with the sensitive relation inside q1, elastic
    sensitivity multiplies S(q1) by the max frequency of the join
    attributes in q2; max frequencies of composite plans are themselves
    bounded recursively. The bound can exceed TSens by orders of
    magnitude (the paper's headline 2,200,000×) and produces no witness
    tuple. *)

open Tsens_relational
open Tsens_query

type plan = Leaf of string | Join of plan * plan

val plan_of_ghd : Ghd.t -> plan
(** Left-deep plan folding the bags in post-order of the bag tree, and
    each bag's members in declaration order. *)

val plan_of_cq : ?plans:Ghd.t list -> Cq.t -> plan
(** Plans each connected component (via the matching decomposition in
    [plans], else the default one) and chains the components with cross
    products. *)

val plan_atoms : plan -> string list

val max_frequency : Cq.t -> Database.t -> plan -> Schema.t -> Count.t
(** [max_frequency cq db plan attrs]: static upper bound on the number of
    tuples of the plan's output agreeing on any fixed values of [attrs]
    (with [attrs] empty: a bound on the plan's output size). *)

val relation_sensitivity : Cq.t -> Database.t -> plan -> string -> Count.t
(** Elastic sensitivity of the query treating the given relation as the
    only sensitive one — the paper's Figure 6b comparison column. *)

val local_sensitivity :
  ?plans:Ghd.t list -> Cq.t -> Database.t -> Sens_types.result
(** Maximum of {!relation_sensitivity} over all relations. The witness is
    always [None]: elastic sensitivity cannot identify sensitive
    tuples. *)
