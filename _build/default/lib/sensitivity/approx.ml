open Tsens_relational
open Tsens_query

(* A compressed table: the heaviest rows exactly, everything else in the
   key domain bounded by [default]. Invariant: every explicit count is
   >= default. *)
type approx = { rel : Relation.t; default : Count.t }

let unit_relation =
  Relation.create ~schema:Schema.empty [ (Tuple.of_list [], Count.one) ]

let compress k r =
  if Relation.distinct_count r <= k then { rel = r; default = Count.zero }
  else begin
    let rows = Array.copy (Relation.rows r) in
    Array.sort
      (fun (t1, c1) (t2, c2) ->
        match Count.compare c2 c1 with 0 -> Tuple.compare t1 t2 | c -> c)
      rows;
    let kept = Array.to_list (Array.sub rows 0 k) in
    (* Every dropped row's count is at most the heaviest dropped one. *)
    let default = snd rows.(k) in
    { rel = Relation.create ~schema:(Relation.schema r) kept; default }
  end

(* Re-expand a compressed table against the join keys an anchor relation
   can actually probe: misses cost the default. Rows of [p] outside the
   anchor's key space are irrelevant downstream (the join starts from the
   anchor). *)
let complete anchor p =
  if Count.equal p.default Count.zero then p.rel
  else begin
    let key_schema = Relation.schema p.rel in
    let keys = Relation.project key_schema anchor in
    let rows =
      Relation.fold
        (fun key _ acc ->
          let c = Relation.count_of key p.rel in
          let c = if Count.equal c Count.zero then p.default else c in
          (key, c) :: acc)
        keys []
    in
    Relation.create ~schema:key_schema rows
  end

let cap p = Count.max p.default (match Relation.max_row p.rel with
  | Some (_, c) -> c
  | None -> Count.zero)

(* Upper bound on any product combination that touches at least one
   defaulted (non-explicit) entry. *)
let default_bound parts =
  let caps = List.map cap parts in
  List.fold_left
    (fun (acc, index) part ->
      if Count.equal part.default Count.zero then (acc, index + 1)
      else
        let product =
          List.fold_left Count.mul part.default
            (List.filteri (fun j c -> ignore c; j <> index) caps)
        in
        (Count.max acc product, index + 1))
    (Count.zero, 0) parts
  |> fst

let shared_schema = Tsens.shared_schema

type component_tables = {
  bounds : (string * (Tuple.t option * Count.t)) list;
      (* per relation: heaviest explicit row (if any) and the bound *)
  intermediate_rows : int;
}

let run_component ~k ghd db =
  if Ghd.width ghd > 1 then
    invalid_arg
      "Approx: top-k approximation is implemented for width-1 plans \
       (acyclic queries) only";
  let cq = Ghd.cq ghd in
  let tree = Ghd.bag_tree ghd in
  let base v = Database.find (List.hd (Ghd.members ghd v)) db in
  let intermediates = ref 0 in
  let record a =
    intermediates := !intermediates + Relation.distinct_count a.rel;
    a
  in
  let botjoins = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let anchor = base v in
      let completed =
        List.map
          (fun c -> complete anchor (Hashtbl.find botjoins c))
          (Join_tree.children tree v)
      in
      let exact =
        Join.join_project_all
          ~group:(Join_tree.link_schema tree v)
          (anchor :: completed)
      in
      Hashtbl.replace botjoins v (record (compress k exact)))
    (Join_tree.post_order tree);
  let topjoins = Hashtbl.create 16 in
  List.iter
    (fun v ->
      match Join_tree.parent tree v with
      | None ->
          Hashtbl.replace topjoins v
            { rel = unit_relation; default = Count.zero }
      | Some p ->
          let anchor = base p in
          let completed =
            complete anchor (Hashtbl.find topjoins p)
            :: List.map
                 (fun s -> complete anchor (Hashtbl.find botjoins s))
                 (Join_tree.siblings tree v)
          in
          let exact =
            Join.join_project_all
              ~group:(Join_tree.link_schema tree v)
              (anchor :: completed)
          in
          Hashtbl.replace topjoins v (record (compress k exact)))
    (Join_tree.pre_order tree);
  let bounds =
    List.map
      (fun relation ->
        (* Width 1: every part schema is inside shared(relation), so the
           grouped join never sums two combinations into one entry and
           the product bound below is sound. *)
        let v = relation in
        let parts =
          Hashtbl.find topjoins v
          :: List.map (Hashtbl.find botjoins) (Join_tree.children tree v)
        in
        let explicit =
          Join.join_project_all
            ~group:(shared_schema cq relation)
            (unit_relation :: List.map (fun p -> p.rel) parts)
        in
        let explicit_best = Relation.max_row explicit in
        let bound =
          Count.max
            (match explicit_best with Some (_, c) -> c | None -> Count.zero)
            (default_bound parts)
        in
        (relation, (Option.map fst explicit_best, bound)))
      (Cq.relation_names cq)
  in
  { bounds; intermediate_rows = !intermediates }

let plan_for plans component =
  match Yannakakis.find_plan plans component with
  | Some g -> g
  | None -> (
      match Join_tree.of_cq component with
      | Some jt -> Ghd.of_join_tree jt
      | None -> Ghd.auto component)

let analyze ~k ?(plans = []) cq db =
  if k < 1 then invalid_arg "Approx: k must be at least 1";
  let db = Database.of_list (Cq.instance cq db) in
  let components = Cq.components cq in
  let runs =
    List.map
      (fun component ->
        (component, run_component ~k (plan_for plans component) db))
      components
  in
  (* Cross-component scaling uses exact component sizes: the scaling is a
     property of the data, not of the compressed tables. *)
  let exact_sizes =
    List.map
      (fun component -> Yannakakis.count ~plans component db)
      components
  in
  let bounds =
    List.concat
      (List.map2
         (fun (component, run) own_size ->
           ignore own_size;
           let others =
             List.fold_left2
               (fun acc c size ->
                 if Cq.equal c component then acc else Count.mul acc size)
               Count.one components exact_sizes
           in
           List.map
             (fun (r, (row, bound)) -> (r, (row, Count.mul bound others)))
             run.bounds)
         runs exact_sizes)
  in
  let per_relation =
    List.map (fun r -> (r, snd (List.assoc r bounds))) (Cq.relation_names cq)
  in
  let witness =
    List.fold_left
      (fun acc (relation, (row, bound)) ->
        match row with
        | None -> acc
        | Some row -> (
            match acc with
            | Some w when w.Sens_types.sensitivity >= bound -> acc
            | _ ->
                (* Extend the explicit row over the atom schema. *)
                let schema = Cq.schema_of cq relation in
                let table_schema = shared_schema cq relation in
                let value_for attr =
                  match Schema.index_opt attr table_schema with
                  | Some i -> Tuple.get row i
                  | None -> (
                      match
                        Relation.active_domain attr (Database.find relation db)
                      with
                      | v :: _ -> v
                      | [] -> Value.str "any")
                in
                Some
                  {
                    Sens_types.relation;
                    schema;
                    tuple =
                      Tuple.of_list
                        (List.map value_for (Schema.attrs schema));
                    sensitivity = bound;
                  }))
      None bounds
  in
  let local_sensitivity =
    List.fold_left (fun acc (_, c) -> Count.max acc c) Count.zero per_relation
  in
  let total_intermediates =
    List.fold_left (fun acc (_, run) -> acc + run.intermediate_rows) 0 runs
  in
  ({ Sens_types.local_sensitivity; witness; per_relation }, total_intermediates)

let local_sensitivity ~k ?plans cq db = fst (analyze ~k ?plans cq db)

let intermediate_sizes ~k ?plans cq db =
  let _, compressed = analyze ~k ?plans cq db in
  let _, exact = analyze ~k:max_int ?plans cq db in
  (exact, compressed)
