open Tsens_relational

type witness = {
  relation : string;
  schema : Schema.t;
  tuple : Tuple.t;
  sensitivity : Count.t;
}

type result = {
  local_sensitivity : Count.t;
  witness : witness option;
  per_relation : (string * Count.t) list;
}

let result_of_per_relation bests =
  let per_relation =
    List.map
      (fun (relation, best) ->
        match best with
        | None -> (relation, Count.zero)
        | Some (_, _, c) -> (relation, c))
      bests
  in
  let witness =
    List.fold_left
      (fun acc (relation, best) ->
        match best with
        | None -> acc
        | Some (tuple, schema, sensitivity) -> (
            match acc with
            | Some w when w.sensitivity >= sensitivity -> acc
            | _ -> Some { relation; schema; tuple; sensitivity }))
      None bests
  in
  let local_sensitivity =
    match witness with None -> Count.zero | Some w -> w.sensitivity
  in
  { local_sensitivity; witness; per_relation }

let pp_witness ppf w =
  Format.fprintf ppf "%s%a with sensitivity %a" w.relation Tuple.pp w.tuple
    Count.pp w.sensitivity

let pp_result ppf r =
  Format.fprintf ppf "@[<v>LS = %a@," Count.pp r.local_sensitivity;
  (match r.witness with
  | Some w -> Format.fprintf ppf "witness: %a@," pp_witness w
  | None -> Format.fprintf ppf "witness: none@,");
  List.iter
    (fun (rel, c) -> Format.fprintf ppf "  max over %s: %a@," rel Count.pp c)
    r.per_relation;
  Format.fprintf ppf "@]"
